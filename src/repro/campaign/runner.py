"""Campaign dispatch: every configuration through the supervised runtime.

The runner turns a :class:`~repro.campaign.spec.CampaignSpec` expansion
into recorded rows of a :class:`~repro.campaign.store.CampaignStore`:

- **chunked waves** — configs dispatch through a
  :class:`~repro.runtime.supervisor.SupervisedExecutor` in fixed-size
  chunks, each chunk's results committed to SQLite before the next
  starts, so a SIGKILL loses at most one in-flight chunk and ``resume``
  (a fingerprint set-difference) continues exactly where the DB stops;
- **supervision reuse** — worker crashes retry per the
  :class:`~repro.runtime.supervisor.RetryPolicy`, exhausted configs are
  quarantined into the DB's ``failures`` log (retried on resume) while
  the campaign finishes;
- **tracing** — every config attempt records spans into a private
  worker tracer that travel home with the result and are ingested under
  the wave span (the scheduler's :class:`~repro.sta.scheduler.TracedResult`
  pattern), so ``--trace`` shows the whole campaign;
- **daemon dispatch** — with a :class:`DaemonTarget`, each config runs
  as an overlay session against a warm
  :class:`~repro.serve.server.TimingDaemon`: recipe edits go up as one
  ECO batch, timing (and, for PST factors, the ``ssta`` op) comes back
  from the daemon's warm timers, power/area are rolled up locally on
  the edited copy;
- **learned triage** — :meth:`CampaignRunner.run_triaged` runs a spread
  training wave, fits the :mod:`~repro.campaign.surrogate`, and spends
  the remaining signoff budget on the configs predicted closest to the
  Pareto front, recording predictions for everything it skips.

What one configuration *means* (the factor vocabulary) is defined here:
see ``DEFAULT_LEVELS`` and ``_run_config_job``. A config is scored under
two MCMM views — nominal ``tt_typ`` and an aged/derated ``ss_aged``
(aging corner + flat late derate, the paper's Fig 9 axes) — with
margin-adjusted WNS/TNS, a power/area rollup at the swept period, and
optionally a canonical-SSTA yield after PST tuning with range tau.
"""

from __future__ import annotations

import copy
import math
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.campaign.blocks import block_names, build_block, probe_features
from repro.campaign.pareto import Axis, DEFAULT_AXES
from repro.campaign.spec import (
    CampaignConfig,
    CampaignSpec,
    Factor,
    spread_indices,
)
from repro.campaign.store import CampaignStore
from repro.campaign.surrogate import MODELS, Surrogate, triage_order
from repro.errors import CampaignError, NetlistError
from repro.liberty import LibraryCondition, make_library
from repro.obs import metrics as obs_metrics
from repro.obs import tracing as obs_tracing
from repro.runtime.supervisor import (
    RetryPolicy,
    SupervisedExecutor,
    SupervisedTask,
    TaskStatus,
)

#: Every level a configuration can carry, with its default. Factors
#: outside this vocabulary are rejected up front (a typo'd factor name
#: must not silently sweep nothing).
DEFAULT_LEVELS: Dict[str, Any] = {
    "block": "soc_ctrl",      # synthetic SoC block (repro.campaign.blocks)
    "period": 500.0,          # clock period, ps
    "aging_mv": 0.0,          # BTI Vt shift on the aged corner, mV
    "derate_late": 1.0,       # flat data-late derate on the aged corner
    "margin_ps": 0.0,         # signoff margin subtracted from setup slack
    "recipe": "none",         # ECO/closure recipe applied before signoff
    "recipe_budget": 8,       # max edits the recipe may spend
    "tune_tau": 0.0,          # PST tuning range, ps (0 = no SSTA pass)
    "engine": "reference",    # timing engine for the signoff scenarios
    "input_delay": 40.0,      # input arrival after clock, ps
    "activity": 0.15,         # switching activity for dynamic power
    "ssta_samples": 384,      # samples for the yield estimate
    "yield_target": 0.99,     # PST tuning target
}

RECIPES = ("none", "lvt_crit", "upsize_crit", "downsize_cold")

#: Levels a daemon-dispatched campaign may not sweep: they change the
#: daemon-side design/scenario definitions, which are fixed at daemon
#: startup. ``margin_ps`` needs endpoint slacks the wire rows do not
#: carry, so it must stay 0.
_DAEMON_FIXED = ("block", "aging_mv", "derate_late", "engine", "margin_ps")


def validate_spec(spec: CampaignSpec) -> None:
    """Reject unknown factor names and unrunnable levels up front."""
    names = [f.name for f in spec.factors] + list(spec.base)
    for name in names:
        if name not in DEFAULT_LEVELS:
            raise CampaignError(
                f"unknown factor {name!r}",
                known=",".join(sorted(DEFAULT_LEVELS)),
            )
    for factor in spec.factors:
        if factor.name == "recipe":
            for level in factor.levels:
                if level not in RECIPES:
                    raise CampaignError(
                        f"unknown recipe {level!r}",
                        recipes=",".join(RECIPES),
                    )
        if factor.name == "block":
            for level in factor.levels:
                if level not in block_names():
                    raise CampaignError(
                        f"unknown block {level!r}",
                        blocks=",".join(block_names()),
                    )
        if factor.name == "engine":
            for level in factor.levels:
                if level not in ("reference", "vector"):
                    raise CampaignError(f"unknown engine {level!r}")


def resolve_levels(levels: Dict[str, Any]) -> Dict[str, Any]:
    resolved = dict(DEFAULT_LEVELS)
    resolved.update(levels)
    return resolved


def demo_spec(name: str = "fig9_sweep", fraction: float = 1.0,
              seed: int = 20150608) -> CampaignSpec:
    """The built-in Fig-9-style sweep (also the benchmark campaign).

    288 configurations: 3 blocks x 3 periods x 4 closure recipes x
    {no PST, tau=30ps} x 2 signoff margins x 2 late derates — the
    margin/aging/recipe tradeoff space of the paper's Section 4, sized
    so a laptop-class full sweep finishes in minutes and a fractional
    or triaged run in well under one.
    """
    from repro.campaign.blocks import block_names

    return CampaignSpec(
        name=name,
        factors=[
            Factor("block", tuple(block_names())),
            Factor("period", (420.0, 460.0, 500.0)),
            Factor("recipe", RECIPES),
            Factor("tune_tau", (0.0, 30.0)),
            Factor("margin_ps", (0.0, 15.0)),
            Factor("derate_late", (1.0, 1.08)),
        ],
        base={"ssta_samples": 128},
        fraction=fraction,
        seed=seed,
    )


# ---------------------------------------------------------------------- #
# worker-side machinery (module level: process pools must pickle it)

#: Library factory results per PVT+aging condition. Pool workers are
#: reused across tasks, so each worker process pays for each distinct
#: condition once, not once per config.
_LIB_CACHE: Dict[Tuple, Any] = {}


def _library(process: str, vdd: float, temp_c: float, aging_mv: float):
    key = (process, round(vdd, 6), round(temp_c, 3), round(aging_mv, 6))
    library = _LIB_CACHE.get(key)
    if library is None:
        library = make_library(LibraryCondition(
            process=process, vdd=vdd, temp_c=temp_c,
            vt_shift_aging=aging_mv / 1000.0,
        ))
        _LIB_CACHE[key] = library
    return library


def _constraints_for(design, period: float, input_delay: float):
    from repro.sta import Constraints

    constraints = Constraints.single_clock(period)
    constraints.input_delays = {
        p: input_delay for p in design.input_ports() if p != "clk"
    }
    return constraints


def _apply_recipe(design, library, constraints, recipe: str,
                  budget: int) -> List[Dict[str, Any]]:
    """Apply one closure recipe in place; returns the wire-format edits.

    Recipes are deterministic: one scalar STA probe ranks endpoints,
    worst paths mark the "hot" instances, then footprint-preserving
    swaps spend the budget. ``lvt_crit`` trades leakage for speed on the
    critical cone, ``upsize_crit`` trades area/cap, ``downsize_cold``
    recovers power/area on the cold remainder at a timing cost — the
    exact tradeoff triangle Fig 9 sweeps.
    """
    from repro.netlist.transforms import downsize, swap_vt, upsize
    from repro.sta.analysis import STA

    if recipe == "none" or budget <= 0:
        return []
    sta = STA(design, library, constraints)
    report = sta.run()
    endpoints = report.endpoints("setup")
    hot: List[str] = []
    seen: Set[str] = set()
    for ep in endpoints[:8]:
        path = sta.worst_path(ep)
        for point in path.points:
            name = point.ref.instance
            if not name or name in seen:
                continue
            seen.add(name)
            if not library.cell(design.instance(name).cell_name) \
                    .is_sequential:
                hot.append(name)

    if recipe == "lvt_crit":
        candidates = hot

        def transform(inst):
            return swap_vt(design, library, inst, "lvt")
    elif recipe == "upsize_crit":
        candidates = hot

        def transform(inst):
            return upsize(design, library, inst)
    elif recipe == "downsize_cold":
        hot_set = set(hot)
        candidates = [
            name for name, inst in design.instances.items()
            if name not in hot_set
            and not library.cell(inst.cell_name).is_sequential
        ]

        def transform(inst):
            return downsize(design, library, inst)
    else:
        raise CampaignError(f"unknown recipe {recipe!r}")

    edits: List[Dict[str, Any]] = []
    for name in candidates:
        if len(edits) >= budget:
            break
        try:
            edit = transform(name)
        except NetlistError:
            continue  # dont_touch or incompatible variant: skip, no spend
        if edit is not None:
            edits.append({"kind": "set_cell", "target": edit.target,
                          "value": edit.after})
    return edits


def _scenarios_for(levels: Dict[str, Any], constraints):
    from repro.sta.mcmm import Scenario
    from repro.sta.propagation import Derates

    lib_tt = _library("tt", 0.80, 25.0, 0.0)
    lib_aged = _library("ssg", 0.72, 125.0, levels["aging_mv"])
    return [
        Scenario("tt_typ", lib_tt, constraints, "typ", 25.0),
        Scenario("ss_aged", lib_aged, constraints, "cw", 125.0,
                 derates=Derates(data_late=levels["derate_late"])),
    ], lib_tt


def _adjusted_tns(report, margin: float) -> float:
    return float(sum(
        min(0.0, e.slack - margin) for e in report.endpoints("setup")
    ))


def _signoff_metrics(reports: Dict[str, Any],
                     margin: float) -> Dict[str, float]:
    return {
        "wns": min(r.wns("setup") for r in reports.values()) - margin,
        "tns": min(_adjusted_tns(r, margin) for r in reports.values()),
        "hold_wns": min(r.wns("hold") for r in reports.values()),
    }


def _scenario_row(name: str, report) -> Dict[str, Any]:
    return {
        "scenario": name,
        "wns_setup": float(report.wns("setup")),
        "tns_setup": float(report.tns("setup")),
        "violations_setup": int(report.violation_count("setup")),
        "wns_hold": float(report.wns("hold")),
        "tns_hold": float(report.tns("hold")),
        "violations_hold": int(report.violation_count("hold")),
    }


def _power_metrics(design, library, levels: Dict[str, Any]) -> Dict[str, Any]:
    from repro.power import power_area_summary

    summary = power_area_summary(
        design, library, period=levels["period"],
        activity=levels["activity"],
    )
    return {
        "power_mw": summary.total_power,
        "leakage_mw": summary.power.leakage,
        "dynamic_mw": summary.power.dynamic,
        "area_um2": summary.area,
        "cells": summary.cells,
    }


def _yield_metrics(design, library, constraints, levels: Dict[str, Any],
                   seed: int) -> Dict[str, Any]:
    from repro.sta.algebra import VariationModel
    from repro.sta.ssta import run_ssta, tune_to_yield

    tau = float(levels["tune_tau"])
    if tau <= 0.0:
        return {"tyield": None, "pst_buffers": None}
    run = run_ssta(
        design, library, constraints,
        model=VariationModel(seed=seed),
        n_samples=int(levels["ssta_samples"]),
    )
    tuned = tune_to_yield(run, target_yield=float(levels["yield_target"]),
                          tune_range=tau)
    return {
        "tyield": float(tuned.tuned_yield),
        "pst_buffers": len(tuned.selected),
    }


def _config_payload_result(config: CampaignConfig,
                           attempt: int) -> Dict[str, Any]:
    """One full local signoff of one config (runs inside a worker)."""
    from repro.sta.scheduler import SignoffScheduler

    levels = resolve_levels(config.assignment)
    t0 = time.perf_counter()
    design = build_block(levels["block"])
    constraints = _constraints_for(design, levels["period"],
                                  levels["input_delay"])
    scenarios, lib_tt = _scenarios_for(levels, constraints)

    with obs_tracing.span("campaign_recipe", recipe=levels["recipe"]):
        edits = _apply_recipe(design, lib_tt, constraints,
                              levels["recipe"],
                              int(levels["recipe_budget"]))

    # The two scenarios run serially *inside* this worker (the campaign
    # fans out across configs, not within one) through the signoff
    # scheduler, which is what honors the engine factor.
    scheduler = SignoffScheduler(
        scenarios, jobs=1, executor="serial", cache=None,
        policy=RetryPolicy(retries=0), engine=levels["engine"],
    )
    with obs_tracing.span("campaign_signoff", config=config.index):
        outcome = scheduler.signoff(design)

    metrics: Dict[str, Any] = {}
    metrics.update(_signoff_metrics(outcome.reports, levels["margin_ps"]))
    with obs_tracing.span("campaign_power"):
        metrics.update(_power_metrics(design, lib_tt, levels))
    with obs_tracing.span("campaign_yield", tau=levels["tune_tau"]):
        metrics.update(_yield_metrics(design, lib_tt, constraints,
                                      levels, config.seed))
    metrics["eco_edits"] = len(edits)
    metrics["wall_s"] = time.perf_counter() - t0
    return {
        "metrics": metrics,
        "scenario_rows": [
            _scenario_row(name, report)
            for name, report in sorted(outcome.reports.items())
        ],
        "source": "signoff",
    }


def _run_config_job(payload, attempt: int = 1):
    """Module-level supervised worker: one config, spans carried home."""
    from repro.sta.scheduler import TracedResult

    config, trace = payload
    if not trace:
        return _config_payload_result(config, attempt)
    local = obs_tracing.Tracer()
    with obs_tracing.use(local):
        with local.span("campaign_config", index=config.index,
                        fingerprint=config.fingerprint[:12],
                        attempt=attempt):
            result = _config_payload_result(config, attempt)
    return TracedResult(value=result, spans=local.spans())


# ---------------------------------------------------------------------- #
# daemon dispatch

@dataclass
class DaemonTarget:
    """Where and how ``--via-daemon`` campaigns run.

    The daemon owns the design and scenario set; the campaign sweeps
    what an overlay session can express (recipes as ECO batches, PST
    tuning through the ``ssta`` op). ``design``/``library``/
    ``constraints`` are the client-side mirrors of the daemon's base —
    used to compute recipe edits and the local power/area rollup.
    """

    host: str
    port: int
    design: Any
    library: Any
    constraints: Any
    timeout_s: float = 30.0


def validate_daemon_spec(spec: CampaignSpec) -> None:
    """Daemon dispatch cannot re-shape the daemon; reject such factors."""
    fixed = dict(DEFAULT_LEVELS)
    for name in _DAEMON_FIXED:
        for factor in spec.factors:
            if factor.name == name and len(factor.levels) > 1:
                raise CampaignError(
                    f"factor {name!r} cannot be swept via a daemon "
                    f"(the daemon's design/scenarios are fixed)"
                )
        level = spec.base.get(name, fixed[name])
        for factor in spec.factors:
            if factor.name == name:
                level = factor.levels[0]
        if level != fixed[name]:
            raise CampaignError(
                f"level {name}={level!r} cannot run via a daemon; "
                f"it must stay {fixed[name]!r}"
            )


def _run_config_daemon_job(payload, attempt: int = 1):
    """One config as an overlay session against a warm daemon.

    Thread-pool only (the payload carries live objects); each attempt
    opens a fresh connection and session so a retry never reuses a
    half-dead socket or a session with half-applied state.
    """
    from repro.serve.client import TimingClient

    config, target, trace = payload
    del trace  # daemon-side spans live in the daemon's tracer
    levels = resolve_levels(config.assignment)
    t0 = time.perf_counter()

    # Recipe edits computed locally on a private copy of the base (the
    # base design is shared across worker threads; STA binds mutate).
    design = copy.deepcopy(target.design)
    edits = _apply_recipe(design, target.library, target.constraints,
                          levels["recipe"], int(levels["recipe_budget"]))

    client = TimingClient(target.host, target.port,
                          timeout_s=target.timeout_s)
    with client:
        sid = client.call("open_session", {})["session"]
        try:
            if edits:
                client.call("apply_eco", {"edits": edits}, session=sid)
            timing = client.call("timing", {}, session=sid)
            ssta_result = None
            tau = float(levels["tune_tau"])
            if tau > 0.0:
                ssta_result = client.call("ssta", {
                    "samples": int(levels["ssta_samples"]),
                    "target_yield": float(levels["yield_target"]),
                    "tune_range": tau,
                }, session=sid)
        finally:
            try:
                client.call("close_session", {}, session=sid)
            except Exception:  # noqa: BLE001 - best-effort cleanup
                pass

    rows = timing["scenarios"]
    metrics: Dict[str, Any] = {
        "wns": min(r["wns_setup"] for r in rows.values()),
        "tns": min(r["tns_setup"] for r in rows.values()),
        "hold_wns": min(r["wns_hold"] for r in rows.values()),
    }
    metrics.update(_power_metrics(design, target.library, levels))
    if ssta_result is not None:
        tuning = ssta_result.get("tuning") or {}
        metrics["tyield"] = tuning.get("tuned_yield",
                                       ssta_result.get("yield"))
        metrics["pst_buffers"] = tuning.get("buffers")
    else:
        metrics["tyield"] = None
        metrics["pst_buffers"] = None
    metrics["eco_edits"] = len(edits)
    metrics["wall_s"] = time.perf_counter() - t0
    return {
        "metrics": metrics,
        "scenario_rows": [
            {"scenario": name, **{
                k: row.get(k) for k in
                ("wns_setup", "tns_setup", "violations_setup",
                 "wns_hold", "tns_hold", "violations_hold")
            }}
            for name, row in sorted(rows.items())
        ],
        "source": "daemon",
    }


# ---------------------------------------------------------------------- #
# outcomes

@dataclass
class CampaignOutcome:
    """Bookkeeping of one :meth:`CampaignRunner.run` pass."""

    campaign: str
    total: int              # configs in the requested set
    computed: List[str] = field(default_factory=list)
    resumed: List[str] = field(default_factory=list)  # already in the DB
    degraded: List[Tuple[str, str]] = field(default_factory=list)
    waves: int = 0
    wall_s: float = 0.0
    events: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.degraded

    def render(self) -> str:
        lines = [
            f"campaign {self.campaign}: {self.total} config(s) — "
            f"{len(self.computed)} computed, {len(self.resumed)} resumed "
            f"from the DB, {len(self.degraded)} degraded "
            f"in {self.waves} wave(s), {self.wall_s:.2f} s",
        ]
        for fingerprint, error in self.degraded:
            lines.append(f"  DEGRADED {fingerprint[:12]}: {error}")
        return "\n".join(lines)


@dataclass
class TriageOutcome:
    """Bookkeeping of one :meth:`CampaignRunner.run_triaged` pass."""

    campaign: str
    total: int
    budget: int             # full-signoff slots the triage may spend
    trained_on: List[str] = field(default_factory=list)
    prioritized: List[str] = field(default_factory=list)
    predicted: int = 0      # configs left to the surrogate only
    wall_s: float = 0.0
    events: List[str] = field(default_factory=list)

    @property
    def ran(self) -> List[str]:
        return self.trained_on + self.prioritized

    def render(self) -> str:
        return (
            f"triage {self.campaign}: {len(self.ran)}/{self.total} "
            f"config(s) fully signed off (budget {self.budget}; "
            f"{len(self.trained_on)} training, "
            f"{len(self.prioritized)} prioritized), "
            f"{self.predicted} left to the surrogate, "
            f"{self.wall_s:.2f} s"
        )


# ---------------------------------------------------------------------- #
# the runner

class CampaignRunner:
    """Dispatch a campaign spec into a results store (module docstring).

    Args:
        spec: the design space.
        store: the results DB; reopened stores resume by fingerprint.
        jobs: worker count per wave.
        executor: "thread" (default), "process", or "serial"; daemon
            dispatch forces threads (live client objects).
        policy: per-config retry/timeout policy.
        chunk: configs per wave — the durability granularity (results
            commit between waves).
        daemon: a :class:`DaemonTarget` for ``--via-daemon`` dispatch.
        allow_fallback: executor downgrade on pool death.
        on_event: supervision event callback (also collected on
            outcomes).
    """

    def __init__(
        self,
        spec: CampaignSpec,
        store: CampaignStore,
        jobs: int = 1,
        executor: str = "thread",
        policy: Optional[RetryPolicy] = None,
        chunk: int = 8,
        daemon: Optional[DaemonTarget] = None,
        allow_fallback: bool = True,
        on_event=None,
    ):
        if chunk < 1:
            raise CampaignError("chunk must be >= 1")
        validate_spec(spec)
        if daemon is not None:
            validate_daemon_spec(spec)
            executor = "thread"
        self.spec = spec
        self.store = store
        self.jobs = jobs
        self.executor = executor
        self.policy = policy or RetryPolicy(retries=1)
        self.chunk = chunk
        self.daemon = daemon
        self.allow_fallback = allow_fallback
        self.on_event = on_event

    def _events_into(self, sink: List[str]):
        def _event(message: str) -> None:
            sink.append(message)
            if self.on_event is not None:
                self.on_event(message)
        return _event

    def _payload(self, config: CampaignConfig, trace: bool):
        if self.daemon is not None:
            return (config, self.daemon, trace)
        return (config, trace)

    def _job_fn(self):
        return (_run_config_daemon_job if self.daemon is not None
                else _run_config_job)

    def run(
        self,
        configs: Optional[Sequence[CampaignConfig]] = None,
        resume: bool = True,
    ) -> CampaignOutcome:
        """Run ``configs`` (default: the full expansion) to completion.

        ``resume=True`` skips configs already recorded; ``False`` runs
        them anyway (their results are then discarded by the store's
        first-write-wins insert — useful only for testing determinism).
        """
        from repro.sta.scheduler import TracedResult

        t0 = time.perf_counter()
        configs = list(configs if configs is not None
                       else self.spec.expand())
        self.store.record_spec(self.spec.name, self.spec.to_json())
        outcome = CampaignOutcome(campaign=self.spec.name,
                                  total=len(configs))
        done = self.store.done_fingerprints(self.spec.name)
        todo: List[CampaignConfig] = []
        for config in configs:
            if resume and config.fingerprint in done:
                outcome.resumed.append(config.fingerprint)
            else:
                todo.append(config)

        tracer = obs_tracing.active_tracer()
        with obs_tracing.span(
            "campaign", campaign=self.spec.name, configs=len(configs),
            todo=len(todo), via_daemon=self.daemon is not None,
        ):
            for start in range(0, len(todo), self.chunk):
                wave = todo[start:start + self.chunk]
                outcome.waves += 1
                with obs_tracing.span("campaign_wave",
                                      wave=outcome.waves,
                                      configs=len(wave)) as wave_span:
                    executor = SupervisedExecutor(
                        jobs=self.jobs, executor=self.executor,
                        policy=self.policy,
                        allow_fallback=self.allow_fallback,
                        on_event=self._events_into(outcome.events),
                    )
                    tasks = [
                        SupervisedTask(
                            name=f"cfg-{config.index}",
                            fn=self._job_fn(),
                            payload=self._payload(
                                config, tracer is not None),
                        )
                        for config in wave
                    ]
                    executions = executor.run(tasks)
                # Results commit wave-by-wave: this loop is the
                # durability boundary the SIGKILL test leans on.
                for config, execution in zip(wave, executions):
                    result = execution.result
                    if isinstance(result, TracedResult):
                        if tracer is not None:
                            tracer.ingest(result.spans,
                                          parent_id=wave_span.span_id)
                        result = result.value
                    if execution.status is TaskStatus.DEGRADED:
                        error = (f"{type(execution.error).__name__}: "
                                 f"{execution.error}")
                        self.store.record_failure(
                            config, error, execution.attempts)
                        outcome.degraded.append(
                            (config.fingerprint, error))
                        obs_metrics.inc("campaign.configs.degraded")
                        continue
                    self.store.record_result(
                        config, "ok", result["metrics"],
                        result["scenario_rows"],
                        source=result["source"],
                    )
                    outcome.computed.append(config.fingerprint)
                    obs_metrics.inc("campaign.configs.completed")
        outcome.wall_s = time.perf_counter() - t0
        return outcome

    # ------------------------------------------------------------------ #
    # learned triage

    def run_triaged(
        self,
        budget: float = 0.5,
        train: float = 0.25,
        axes: Sequence[Axis] = DEFAULT_AXES,
        model: str = "ridge",
    ) -> TriageOutcome:
        """Guided search: spend ``budget`` of the full-sweep cost.

        1. run a training wave of ``train * N`` configs spread evenly
           over the design (resume-aware: rows already in the DB count);
        2. fit the surrogate (factor levels + block probe features);
        3. rank the remaining configs by the nondomination layer of
           their *predicted* metrics pooled with the observed rows;
        4. run the best-ranked until ``budget * N`` total signoffs,
           recording surrogate predictions for everything skipped.
        """
        if not 0.0 < budget <= 1.0:
            raise CampaignError(f"budget must be in (0, 1], got {budget}")
        if not 0.0 < train <= budget:
            raise CampaignError(
                f"train fraction must be in (0, budget], got {train}"
            )
        if model not in MODELS:
            raise CampaignError(f"unknown surrogate model {model!r}")
        t0 = time.perf_counter()
        configs = self.spec.expand()
        n = len(configs)
        budget_n = max(2, int(math.floor(budget * n)))
        train_n = max(2, int(round(train * n)))
        train_set = [configs[i] for i in spread_indices(n, train_n)]

        outcome = TriageOutcome(campaign=self.spec.name, total=n,
                                budget=budget_n)
        with obs_tracing.span("campaign_triage", campaign=self.spec.name,
                              budget=budget_n, train=len(train_set)):
            wave1 = self.run(configs=train_set, resume=True)
            outcome.events.extend(wave1.events)
            outcome.trained_on = wave1.computed + wave1.resumed

            rows = self.store.rows(self.spec.name, status="ok")
            completed = {row["fingerprint"] for row in rows}
            remaining = [
                c for c in configs if c.fingerprint not in completed
            ]

            default_block = DEFAULT_LEVELS["block"]
            surrogate = Surrogate(
                self.spec, model=model,
                extra=lambda levels: probe_features(
                    levels.get("block", default_block)),
            ).fit(rows)
            ordered = triage_order(surrogate, rows, remaining, axes)

            slots = max(0, budget_n - len(outcome.trained_on))
            chosen = [config for config, _, _ in ordered[:slots]]
            wave2 = self.run(configs=chosen, resume=True)
            outcome.events.extend(wave2.events)
            outcome.prioritized = wave2.computed + wave2.resumed

            for config, predicted, layer in ordered[slots:]:
                self.store.record_prediction(
                    self.spec.name, config.fingerprint, layer, predicted)
                outcome.predicted += 1
        outcome.wall_s = time.perf_counter() - t0
        return outcome
