"""Append-only SQLite results store for campaigns (``campaign.db``).

One database holds any number of campaigns. The ``configs`` table is
keyed by **content fingerprint** and writes are ``INSERT OR IGNORE``
with an immediate commit, which gives the durability contract the
runner leans on:

- *first completion wins* — a retried or duplicated run can never
  overwrite a recorded result;
- *every committed row survives SIGKILL* — sqlite's journal makes each
  commit atomic, so a killed campaign restarts from exactly the set of
  configs whose results landed;
- *resume is a set difference* — ``done_fingerprints`` minus the spec's
  expansion is the remaining work, no timestamps or ordering involved.

Failed (degraded) attempts never enter ``configs`` — they land in the
append-log ``failures`` table so a resume retries them while the audit
trail survives.
"""

from __future__ import annotations

import json
import sqlite3
from typing import Any, Dict, List, Optional, Sequence, Set

from repro.errors import CampaignError

_SCHEMA = """
CREATE TABLE IF NOT EXISTS campaigns (
    name   TEXT PRIMARY KEY,
    spec   TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS configs (
    fingerprint TEXT PRIMARY KEY,
    campaign    TEXT NOT NULL,
    idx         INTEGER NOT NULL,
    seed        INTEGER NOT NULL,
    levels      TEXT NOT NULL,
    status      TEXT NOT NULL,
    source      TEXT NOT NULL,
    wall_s      REAL,
    wns         REAL,
    tns         REAL,
    hold_wns    REAL,
    power_mw    REAL,
    leakage_mw  REAL,
    dynamic_mw  REAL,
    area_um2    REAL,
    cells       INTEGER,
    tyield      REAL,
    pst_buffers INTEGER,
    eco_edits   INTEGER
);
CREATE INDEX IF NOT EXISTS idx_configs_campaign ON configs (campaign);
CREATE TABLE IF NOT EXISTS scenarios (
    fingerprint      TEXT NOT NULL,
    scenario         TEXT NOT NULL,
    wns_setup        REAL,
    tns_setup        REAL,
    violations_setup INTEGER,
    wns_hold         REAL,
    tns_hold         REAL,
    violations_hold  INTEGER,
    PRIMARY KEY (fingerprint, scenario)
);
CREATE TABLE IF NOT EXISTS failures (
    campaign    TEXT NOT NULL,
    fingerprint TEXT NOT NULL,
    idx         INTEGER NOT NULL,
    error       TEXT,
    attempts    INTEGER
);
CREATE TABLE IF NOT EXISTS predictions (
    campaign    TEXT NOT NULL,
    fingerprint TEXT NOT NULL,
    rank        INTEGER,
    metrics     TEXT NOT NULL,
    PRIMARY KEY (campaign, fingerprint)
);
"""

#: configs-table metric columns, in schema order (shared by INSERT and
#: the runner's row assembly).
METRIC_COLUMNS = (
    "wall_s", "wns", "tns", "hold_wns", "power_mw", "leakage_mw",
    "dynamic_mw", "area_um2", "cells", "tyield", "pst_buffers",
    "eco_edits",
)


class CampaignStore:
    """One handle on a campaign results database (see module docstring).

    Safe for multi-*process* writers (sqlite locking); one handle should
    stay on one thread (the runner records from its coordinator thread).
    """

    def __init__(self, path):
        self.path = str(path)
        try:
            self._conn = sqlite3.connect(self.path, timeout=30.0)
        except sqlite3.Error as exc:
            raise CampaignError(
                f"cannot open results DB: {exc}", path=self.path
            ) from None
        self._conn.row_factory = sqlite3.Row
        with self._conn:
            self._conn.executescript(_SCHEMA)

    # ------------------------------------------------------------------ #
    # lifecycle

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # writes (each commits immediately; see module docstring)

    def record_spec(self, name: str, spec_json: str) -> None:
        with self._conn:
            self._conn.execute(
                "INSERT OR IGNORE INTO campaigns (name, spec) "
                "VALUES (?, ?)", (name, spec_json),
            )

    def record_result(
        self,
        config,
        status: str,
        metrics: Dict[str, Any],
        scenario_rows: Sequence[Dict[str, Any]] = (),
        source: str = "signoff",
    ) -> bool:
        """Record one completed config; False when it was already there."""
        values = [metrics.get(col) for col in METRIC_COLUMNS]
        with self._conn:
            cursor = self._conn.execute(
                "INSERT OR IGNORE INTO configs "
                "(fingerprint, campaign, idx, seed, levels, status, "
                f" source, {', '.join(METRIC_COLUMNS)}) "
                "VALUES (?, ?, ?, ?, ?, ?, ?"
                + ", ?" * len(METRIC_COLUMNS) + ")",
                [config.fingerprint, config.campaign, config.index,
                 config.seed, config.levels_json(), status, source]
                + values,
            )
            if cursor.rowcount == 0:
                return False
            for row in scenario_rows:
                self._conn.execute(
                    "INSERT OR IGNORE INTO scenarios "
                    "(fingerprint, scenario, wns_setup, tns_setup, "
                    " violations_setup, wns_hold, tns_hold, "
                    " violations_hold) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                    (config.fingerprint, row["scenario"],
                     row.get("wns_setup"), row.get("tns_setup"),
                     row.get("violations_setup"), row.get("wns_hold"),
                     row.get("tns_hold"), row.get("violations_hold")),
                )
        return True

    def record_failure(self, config, error: Optional[str],
                       attempts: int) -> None:
        with self._conn:
            self._conn.execute(
                "INSERT INTO failures "
                "(campaign, fingerprint, idx, error, attempts) "
                "VALUES (?, ?, ?, ?, ?)",
                (config.campaign, config.fingerprint, config.index,
                 error, attempts),
            )

    def record_prediction(self, campaign: str, fingerprint: str,
                          rank: Optional[int],
                          metrics: Dict[str, Any]) -> None:
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO predictions "
                "(campaign, fingerprint, rank, metrics) "
                "VALUES (?, ?, ?, ?)",
                (campaign, fingerprint, rank,
                 json.dumps(metrics, sort_keys=True)),
            )

    # ------------------------------------------------------------------ #
    # reads

    def done_fingerprints(self, campaign: str) -> Set[str]:
        """Fingerprints with a recorded (successful) result."""
        rows = self._conn.execute(
            "SELECT fingerprint FROM configs WHERE campaign = ?",
            (campaign,),
        )
        return {row["fingerprint"] for row in rows}

    def rows(self, campaign: str,
             status: Optional[str] = None) -> List[Dict[str, Any]]:
        """Config rows (levels JSON-decoded), ordered by design index."""
        query = "SELECT * FROM configs WHERE campaign = ?"
        params: List[Any] = [campaign]
        if status is not None:
            query += " AND status = ?"
            params.append(status)
        query += " ORDER BY idx"
        out = []
        for row in self._conn.execute(query, params):
            record = dict(row)
            record["levels"] = json.loads(record["levels"])
            out.append(record)
        return out

    def scenario_rows(self, fingerprint: str) -> List[Dict[str, Any]]:
        rows = self._conn.execute(
            "SELECT * FROM scenarios WHERE fingerprint = ? "
            "ORDER BY scenario", (fingerprint,),
        )
        return [dict(row) for row in rows]

    def failures(self, campaign: str) -> List[Dict[str, Any]]:
        rows = self._conn.execute(
            "SELECT * FROM failures WHERE campaign = ? ORDER BY rowid",
            (campaign,),
        )
        return [dict(row) for row in rows]

    def predictions(self, campaign: str) -> List[Dict[str, Any]]:
        out = []
        for row in self._conn.execute(
            "SELECT * FROM predictions WHERE campaign = ? ORDER BY rank",
            (campaign,),
        ):
            record = dict(row)
            record["metrics"] = json.loads(record["metrics"])
            out.append(record)
        return out

    def count(self, campaign: str) -> int:
        row = self._conn.execute(
            "SELECT COUNT(*) AS n FROM configs WHERE campaign = ?",
            (campaign,),
        ).fetchone()
        return int(row["n"])

    def campaigns(self) -> List[str]:
        rows = self._conn.execute(
            "SELECT DISTINCT campaign FROM configs ORDER BY campaign"
        )
        return [row["campaign"] for row in rows]

    def spec_json(self, campaign: str) -> Optional[str]:
        row = self._conn.execute(
            "SELECT spec FROM campaigns WHERE name = ?", (campaign,)
        ).fetchone()
        return None if row is None else row["spec"]
