"""Learned triage: a dependency-free surrogate over campaign configs.

GNN4REL's observation, scaled to this repo's budget: most of what a
full signoff reveals about a configuration is predictable from cheap
features — the factor levels themselves plus timing-graph probes of the
block (depth/fanout histograms, stage-delay stats, a criticality sketch
from one canonical-algebra SSTA run; :mod:`repro.campaign.blocks`).

Two estimators, both closed-form numpy (no sklearn in the container):

- :class:`RidgeSurrogate` — standardized multi-output ridge regression,
  the default: factor -> metric responses here are smooth (derates,
  aging, margin shift slack linearly; recipes shift power/area by
  near-constant offsets per block), which a linear model with one-hot
  categoricals captures well;
- :class:`KnnSurrogate` — distance-weighted k-nearest-neighbours in the
  same feature space, for when responses are non-additive.

:func:`triage_order` turns predictions into a queue: remaining configs
are scored by the nondomination layer their *predicted* metrics land in
when pooled with the observed results, so Pareto-relevant configs get
full signoff first.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.campaign.pareto import Axis, DEFAULT_AXES, nondomination_ranks
from repro.campaign.spec import CampaignConfig, CampaignSpec
from repro.errors import CampaignError

#: The metrics a surrogate learns to predict (superset of any Pareto
#: axis triple the triage pass might rank on).
TARGET_METRICS = ("power_mw", "area_um2", "tns", "wns")

FeatureFn = Callable[[Dict[str, Any]], Dict[str, float]]


class FeatureSpace:
    """Maps a level assignment to a fixed numeric feature vector.

    Numeric factors contribute their value directly; categorical
    factors one-hot over the spec's level menu (so unseen levels are
    impossible by construction). ``extra`` injects per-config features
    computed outside the spec — the block probe features.
    """

    def __init__(self, spec: CampaignSpec,
                 extra: Optional[FeatureFn] = None):
        self.extra = extra
        self.columns: List[Tuple[str, Optional[Any]]] = []
        self._numeric: Dict[str, bool] = {}
        for factor in spec.factors:
            numeric = all(
                isinstance(level, (int, float))
                and not isinstance(level, bool)
                for level in factor.levels
            )
            self._numeric[factor.name] = numeric
            if numeric:
                self.columns.append((factor.name, None))
            else:
                for level in factor.levels:
                    self.columns.append((factor.name, level))
        self._extra_names: Optional[List[str]] = None

    def encode(self, levels: Dict[str, Any]) -> np.ndarray:
        row: List[float] = []
        for name, level in self.columns:
            value = levels.get(name)
            if level is None:  # numeric column
                row.append(float(value) if value is not None else 0.0)
            else:  # one-hot column
                row.append(1.0 if value == level else 0.0)
        if self.extra is not None:
            extra = self.extra(levels)
            if self._extra_names is None:
                self._extra_names = sorted(extra)
            row.extend(float(extra.get(k, 0.0))
                       for k in self._extra_names)
        return np.asarray(row, dtype=float)

    def matrix(self, assignments: Sequence[Dict[str, Any]]) -> np.ndarray:
        return np.vstack([self.encode(a) for a in assignments])


def _standardize(X: np.ndarray):
    mean = X.mean(axis=0)
    std = X.std(axis=0)
    std[std < 1e-12] = 1.0
    return (X - mean) / std, mean, std


class RidgeSurrogate:
    """Closed-form multi-output ridge: ``W = (X'X + lam I)^-1 X'Y``."""

    def __init__(self, l2: float = 1e-2):
        self.l2 = l2
        self._w: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray, Y: np.ndarray) -> "RidgeSurrogate":
        if len(X) == 0:
            raise CampaignError("cannot fit a surrogate on zero rows")
        Xs, self._mean, self._std = _standardize(X)
        Xb = np.hstack([Xs, np.ones((len(Xs), 1))])
        gram = Xb.T @ Xb + self.l2 * np.eye(Xb.shape[1])
        gram[-1, -1] -= self.l2  # leave the bias unpenalized
        self._w = np.linalg.solve(gram, Xb.T @ Y)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._w is None:
            raise CampaignError("surrogate is not fitted")
        Xs = (X - self._mean) / self._std
        Xb = np.hstack([Xs, np.ones((len(Xs), 1))])
        return Xb @ self._w


class KnnSurrogate:
    """Distance-weighted k-NN in the standardized feature space."""

    def __init__(self, k: int = 5):
        if k < 1:
            raise CampaignError("k must be >= 1")
        self.k = k
        self._X: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray, Y: np.ndarray) -> "KnnSurrogate":
        if len(X) == 0:
            raise CampaignError("cannot fit a surrogate on zero rows")
        Xs, self._mean, self._std = _standardize(X)
        self._X = Xs
        self._Y = np.asarray(Y, dtype=float)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._X is None:
            raise CampaignError("surrogate is not fitted")
        Xs = (X - self._mean) / self._std
        out = np.empty((len(Xs), self._Y.shape[1]))
        k = min(self.k, len(self._X))
        for i, x in enumerate(Xs):
            d2 = ((self._X - x) ** 2).sum(axis=1)
            nearest = np.argsort(d2, kind="stable")[:k]
            weights = 1.0 / (np.sqrt(d2[nearest]) + 1e-9)
            weights /= weights.sum()
            out[i] = weights @ self._Y[nearest]
        return out


MODELS = ("ridge", "knn")


def make_model(name: str):
    if name == "ridge":
        return RidgeSurrogate()
    if name == "knn":
        return KnnSurrogate()
    raise CampaignError(
        f"unknown surrogate model {name!r}", models=",".join(MODELS)
    )


class Surrogate:
    """Spec-aware wrapper: rows in, predicted metric dicts out."""

    def __init__(self, spec: CampaignSpec, model: str = "ridge",
                 extra: Optional[FeatureFn] = None):
        self.spec = spec
        self.space = FeatureSpace(spec, extra=extra)
        self.model = make_model(model)
        self.metrics: List[str] = []

    def fit(self, rows: Sequence[Dict[str, Any]]) -> "Surrogate":
        """Train on completed DB rows (needs ``levels`` + metrics)."""
        usable = [
            row for row in rows
            if all(row.get(m) is not None for m in TARGET_METRICS)
        ]
        if len(usable) < 2:
            raise CampaignError(
                "surrogate needs at least 2 completed configs "
                f"with {TARGET_METRICS}, got {len(usable)}"
            )
        self.metrics = list(TARGET_METRICS)
        X = self.space.matrix([row["levels"] for row in usable])
        Y = np.asarray(
            [[float(row[m]) for m in self.metrics] for row in usable]
        )
        self.model.fit(X, Y)
        return self

    def predict(
        self, configs: Sequence[CampaignConfig],
    ) -> List[Dict[str, float]]:
        if not configs:
            return []
        X = self.space.matrix([c.assignment for c in configs])
        Y = self.model.predict(X)
        return [
            {m: float(y[j]) for j, m in enumerate(self.metrics)}
            for y in Y
        ]


def triage_order(
    surrogate: Surrogate,
    completed_rows: Sequence[Dict[str, Any]],
    remaining: Sequence[CampaignConfig],
    axes: Sequence[Axis] = DEFAULT_AXES,
) -> List[Tuple[CampaignConfig, Dict[str, float], int]]:
    """Rank ``remaining`` by predicted Pareto relevance.

    Pools predicted rows with the observed ones and peels nondomination
    layers; a config predicted onto (or near) the joint front outranks
    one predicted deep inside it. Returns ``(config, predicted_metrics,
    layer)`` sorted best-first; ties break by design index, so the order
    is deterministic.
    """
    predictions = surrogate.predict(remaining)
    pool: List[Dict[str, Any]] = [
        {"fingerprint": row["fingerprint"],
         **{a.metric: row.get(a.metric) for a in axes}}
        for row in completed_rows
    ]
    for config, predicted in zip(remaining, predictions):
        pool.append({"fingerprint": config.fingerprint, **predicted})
    ranks = nondomination_ranks(pool, axes)
    scored = [
        (config, predicted,
         ranks.get(config.fingerprint, len(pool)))
        for config, predicted in zip(remaining, predictions)
    ]
    scored.sort(key=lambda item: (item[2], item[0].index))
    return scored
