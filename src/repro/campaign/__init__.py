"""Campaign engine: factorial signoff sweeps with a results DB,
Pareto-front decision support, and learned triage.

The paper's closing argument (Sections 4-5) is that timing closure is
no longer a single signoff but a *design space*: margins, aging
corners, derates, closure recipes and PST budgets trade power and area
against slack, and the methodology question is which configurations to
sign off at all. This package makes that loop a first-class subsystem:

- :mod:`~repro.campaign.spec` — declarative factorial designs with
  content-fingerprinted, seed-stable configurations;
- :mod:`~repro.campaign.runner` — dispatch through the supervised
  runtime (or a warm timing daemon), chunked for SIGKILL-safe resume;
- :mod:`~repro.campaign.store` — the append-only SQLite results DB;
- :mod:`~repro.campaign.pareto` — Fig-9-style front extraction and
  rendering over user-chosen axes;
- :mod:`~repro.campaign.surrogate` — dependency-free learned triage
  (ridge / k-NN over factor levels + timing-graph probe features);
- :mod:`~repro.campaign.blocks` — the deterministic synthetic SoC
  blocks campaigns sweep, plus their cached probe features.
"""

from repro.campaign.blocks import (
    block_names,
    build_block,
    probe_features,
)
from repro.campaign.pareto import (
    Axis,
    DEFAULT_AXES,
    front_recall,
    nondomination_ranks,
    pareto_front,
    parse_axes,
    render_front,
)
from repro.campaign.runner import (
    CampaignOutcome,
    CampaignRunner,
    DaemonTarget,
    DEFAULT_LEVELS,
    RECIPES,
    TriageOutcome,
    demo_spec,
    resolve_levels,
    validate_spec,
)
from repro.campaign.spec import (
    CampaignConfig,
    CampaignSpec,
    Factor,
    config_fingerprint,
    derive_seed,
    spread_indices,
)
from repro.campaign.store import CampaignStore, METRIC_COLUMNS
from repro.campaign.surrogate import (
    KnnSurrogate,
    MODELS,
    RidgeSurrogate,
    Surrogate,
    TARGET_METRICS,
    triage_order,
)

__all__ = [
    "Axis",
    "CampaignConfig",
    "CampaignOutcome",
    "CampaignRunner",
    "CampaignSpec",
    "CampaignStore",
    "DEFAULT_AXES",
    "DEFAULT_LEVELS",
    "DaemonTarget",
    "Factor",
    "KnnSurrogate",
    "METRIC_COLUMNS",
    "MODELS",
    "RECIPES",
    "RidgeSurrogate",
    "Surrogate",
    "TARGET_METRICS",
    "TriageOutcome",
    "block_names",
    "build_block",
    "config_fingerprint",
    "demo_spec",
    "derive_seed",
    "front_recall",
    "nondomination_ranks",
    "pareto_front",
    "parse_axes",
    "probe_features",
    "render_front",
    "resolve_levels",
    "spread_indices",
    "triage_order",
    "validate_spec",
]
