"""Pareto-front decision support over campaign results.

The paper's Fig 9 argument: closure choices (aging corner, margin,
recipe, PST budget) trade power and area against timing slack, and the
interesting configurations are exactly the non-dominated ones. This
module extracts that front from recorded campaign rows over user-chosen
axes, peels full nondomination layers (the surrogate's training target),
and renders the front as a shared-format table.

An *axis* is ``(metric, direction)``; the default triple is the figure's
``power_mw``/``area_um2`` minimized with ``tns`` maximized (TNS is
negative-or-zero: maximizing it prefers less total violation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set

from repro.errors import CampaignError
from repro.obs.artifacts import format_table

_DIRECTIONS = ("min", "max")


@dataclass(frozen=True)
class Axis:
    """One Pareto objective: a row metric and its preferred direction."""

    metric: str
    direction: str = "min"

    def __post_init__(self):
        if self.direction not in _DIRECTIONS:
            raise CampaignError(
                f"axis {self.metric!r} direction must be min or max, "
                f"got {self.direction!r}"
            )

    def key(self, row: Dict[str, Any]) -> Optional[float]:
        """The row's value on this axis, oriented so smaller is better."""
        value = row.get(self.metric)
        if value is None:
            return None
        return -float(value) if self.direction == "max" else float(value)


DEFAULT_AXES = (
    Axis("power_mw", "min"),
    Axis("area_um2", "min"),
    Axis("tns", "max"),
)


def parse_axes(text: str) -> List[Axis]:
    """Parse ``metric[:min|max],...`` (CLI ``--axes``); ``min`` default."""
    axes = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        if ":" in chunk:
            metric, direction = chunk.split(":", 1)
            axes.append(Axis(metric.strip(), direction.strip()))
        else:
            axes.append(Axis(chunk))
    if not axes:
        raise CampaignError(f"no axes in {text!r}")
    return axes


def _vector(row: Dict[str, Any],
            axes: Sequence[Axis]) -> Optional[List[float]]:
    values = [axis.key(row) for axis in axes]
    if any(v is None for v in values):
        return None  # rows missing an axis metric never enter the front
    return values  # type: ignore[return-value]


def _dominates(a: List[float], b: List[float]) -> bool:
    """True when ``a`` is no worse everywhere and better somewhere."""
    return all(x <= y for x, y in zip(a, b)) \
        and any(x < y for x, y in zip(a, b))


def pareto_front(rows: Sequence[Dict[str, Any]],
                 axes: Sequence[Axis] = DEFAULT_AXES) -> List[Dict[str, Any]]:
    """The non-dominated subset of ``rows``, in input order.

    Duplicate objective vectors are all kept (they tie); rows missing
    any axis metric are excluded.
    """
    scored = [(row, _vector(row, axes)) for row in rows]
    scored = [(row, vec) for row, vec in scored if vec is not None]
    front = []
    for row, vec in scored:
        if not any(_dominates(other, vec) for _, other in scored):
            front.append(row)
    return front


def nondomination_ranks(
    rows: Sequence[Dict[str, Any]],
    axes: Sequence[Axis] = DEFAULT_AXES,
) -> Dict[str, int]:
    """fingerprint -> 0-based nondomination layer (0 = on the front).

    Peels fronts NSGA-style: remove layer 0, re-extract, and so on.
    Rows missing an axis metric get no rank. O(layers * n^2) — fine for
    the campaign sizes this repo runs (hundreds to low thousands).
    """
    remaining = [
        (row, _vector(row, axes)) for row in rows
    ]
    remaining = [(r, v) for r, v in remaining if v is not None]
    ranks: Dict[str, int] = {}
    layer = 0
    while remaining:
        # _dominates is irreflexive (strict somewhere), so a layer can
        # never come out empty and ties all land in the same layer.
        front_idx = [
            i for i, (_, vec) in enumerate(remaining)
            if not any(_dominates(other, vec) for _, other in remaining)
        ]
        for i in front_idx:
            ranks[remaining[i][0]["fingerprint"]] = layer
        keep = set(range(len(remaining))) - set(front_idx)
        remaining = [remaining[i] for i in sorted(keep)]
        layer += 1
    return ranks


def front_recall(truth_front: Iterable[Dict[str, Any]],
                 recovered_fingerprints: Set[str]) -> float:
    """Fraction of the ground-truth front present in a recovered set."""
    fps = [row["fingerprint"] for row in truth_front]
    if not fps:
        return 1.0
    hit = sum(1 for fp in fps if fp in recovered_fingerprints)
    return hit / len(fps)


def render_front(
    rows: Sequence[Dict[str, Any]],
    axes: Sequence[Axis] = DEFAULT_AXES,
    factors: Sequence[str] = (),
    title: Optional[str] = None,
    notes: Sequence[str] = (),
    limit: Optional[int] = None,
) -> str:
    """The Fig-9-style decision table: factor levels + axis metrics.

    ``factors`` picks which level columns to show (default: every key
    seen in the first row's levels). Rows are sorted by the first axis.
    """
    front = pareto_front(rows, axes)
    front.sort(key=lambda r: (_vector(r, axes) or [], r["fingerprint"]))
    if limit is not None:
        front = front[:limit]
    if not front:
        return (title + "\n" if title else "") + "(empty front)"
    if not factors:
        factors = sorted(front[0].get("levels", {}))
    headers = ["#"] + list(factors) + [axis.metric for axis in axes]
    table_rows = []
    for i, row in enumerate(front):
        levels = row.get("levels", {})
        table_rows.append(
            [i] + [levels.get(f) for f in factors]
            + [row.get(axis.metric) for axis in axes]
        )
    dirs = ", ".join(f"{a.metric}:{a.direction}" for a in axes)
    return format_table(
        headers, table_rows, title=title,
        notes=list(notes) + [f"axes: {dirs}; {len(front)} "
                             f"non-dominated of {len(rows)} rows"],
    )
