"""The campaign's synthetic SoC blocks and their cheap probe features.

Blocks are deterministic: a block name always generates the identical
netlist (fixed generator seed), so every configuration sweeping that
block shares one design and the results DB's content fingerprints line
up across runs and machines.

:func:`probe_features` is the GNN4REL-flavored feature source for the
learned surrogate: **one** scalar STA plus **one** small canonical-
algebra SSTA probe per block — depth/fanout histograms, stage-delay
stats and a criticality sketch — cached per process, so triage pays a
handful of probes instead of a full sweep.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List

from repro.errors import CampaignError
from repro.liberty import LibraryCondition, make_library
from repro.netlist.design import Design
from repro.netlist.generators import random_logic

#: Reference probe period per block, ps — tight enough that the probe
#: sees real criticality structure, independent of the swept periods.
_PROBE_PERIODS: Dict[str, float] = {}

_BLOCK_BUILDERS: Dict[str, Callable[[], Design]] = {}


def _register(name: str, period: float, builder: Callable[[], Design]):
    _BLOCK_BUILDERS[name] = builder
    _PROBE_PERIODS[name] = period


_register("soc_ctrl", 420.0, lambda: random_logic(
    name="soc_ctrl", n_inputs=12, n_outputs=12, n_gates=48,
    n_levels=6, seed=11))
_register("soc_dsp", 560.0, lambda: random_logic(
    name="soc_dsp", n_inputs=16, n_outputs=12, n_gates=72,
    n_levels=9, seed=23))
_register("soc_bus", 380.0, lambda: random_logic(
    name="soc_bus", n_inputs=14, n_outputs=14, n_gates=56,
    n_levels=5, seed=37))


def block_names() -> List[str]:
    return sorted(_BLOCK_BUILDERS)


def build_block(name: str) -> Design:
    """Generate one named block (always the identical netlist)."""
    builder = _BLOCK_BUILDERS.get(name)
    if builder is None:
        raise CampaignError(
            f"unknown block {name!r}", blocks=",".join(block_names())
        )
    return builder()


def probe_period(name: str) -> float:
    if name not in _PROBE_PERIODS:
        raise CampaignError(f"unknown block {name!r}")
    return _PROBE_PERIODS[name]


# ---------------------------------------------------------------------- #
# probe features

_FEATURE_CACHE: Dict[str, Dict[str, float]] = {}

#: Stable feature order (the surrogate's design-feature columns).
FEATURE_NAMES = (
    "cells", "nets", "endpoints", "fanout_mean", "fanout_p90",
    "fanout_max", "depth_stages", "gate_fraction", "probe_wns",
    "probe_tns", "stage_delay_mean", "sigma_mean", "sigma_p90",
    "crit_entropy", "probe_yield",
)


def _percentile(values: List[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    idx = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
    return ordered[idx]


def probe_features(block: str) -> Dict[str, float]:
    """Cheap timing-graph features for one block (cached per process).

    Cost: one reference STA and one 256-sample canonical SSTA at the
    block's probe period on the nominal library — orders of magnitude
    cheaper than the multi-scenario signoff a real configuration pays.
    """
    cached = _FEATURE_CACHE.get(block)
    if cached is not None:
        return dict(cached)

    from repro.sta import Constraints
    from repro.sta.algebra import VariationModel
    from repro.sta.analysis import STA
    from repro.sta.ssta import run_ssta

    design = build_block(block)
    library = make_library(LibraryCondition())
    period = probe_period(block)
    constraints = Constraints.single_clock(period)
    constraints.input_delays = {
        p: 40.0 for p in design.input_ports() if p != "clk"
    }

    # Graph shape: fanout histogram over driven nets.
    fanouts = [
        float(len(net.loads)) for net in design.nets.values() if net.loads
    ]
    if not fanouts:
        fanouts = [0.0]

    # One scalar STA probe: worst-path depth and stage-delay stats.
    sta = STA(design, library, constraints)
    report = sta.run()
    endpoints = report.endpoints("setup")
    worst = endpoints[0] if endpoints else None
    depth = 0.0
    gate_fraction = 0.0
    stage_delay_mean = 0.0
    if worst is not None:
        path = sta.worst_path(worst)
        depth = float(path.stage_count)
        gate_fraction = float(path.gate_delay_fraction())
        if path.stage_count:
            # required ~ period, so period - slack ~ worst arrival.
            stage_delay_mean = float(
                (period - worst.slack) / max(1.0, depth))

    # One canonical-algebra SSTA probe: sigma and criticality sketch.
    run = run_ssta(design, library, constraints,
                   model=VariationModel(), n_samples=256)
    sigmas = [ep.sigma for ep in run.endpoints]
    crits = [ep.criticality for ep in run.endpoints if ep.criticality > 0]
    total = sum(crits)
    entropy = 0.0
    if total > 0:
        for c in crits:
            p = c / total
            entropy -= p * math.log(p)

    features = {
        "cells": float(len(design.instances)),
        "nets": float(len(design.nets)),
        "endpoints": float(len(endpoints)),
        "fanout_mean": sum(fanouts) / len(fanouts),
        "fanout_p90": _percentile(fanouts, 0.9),
        "fanout_max": max(fanouts),
        "depth_stages": depth,
        "gate_fraction": gate_fraction,
        "probe_wns": float(report.wns("setup")),
        "probe_tns": float(report.tns("setup")),
        "stage_delay_mean": stage_delay_mean,
        "sigma_mean": sum(sigmas) / len(sigmas) if sigmas else 0.0,
        "sigma_p90": _percentile(list(sigmas), 0.9),
        "crit_entropy": entropy,
        "probe_yield": float(run.timing_yield()),
    }
    _FEATURE_CACHE[block] = dict(features)
    return features
