"""Declarative campaign design spaces: factors x levels -> configs.

A :class:`CampaignSpec` names the experiment (DAVOS-style): a list of
:class:`Factor`\\ s, each a named axis with a finite level menu, plus a
``base`` of fixed parameters shared by every run. :meth:`CampaignSpec.expand`
takes the cartesian product (full factorial) or a deterministic fraction
of it and yields :class:`CampaignConfig`\\ s, each carrying

- the resolved level assignment,
- a **content fingerprint** — a stable hash of the assignment only, so
  the same configuration has the same identity across processes, runs
  and machines (the results DB resumes by it), and
- a **derived seed** — mixed from the spec seed and the fingerprint, so
  every config gets an independent, reproducible RNG stream.

Fractional designs subsample by fingerprint hash order (not list order),
so the kept subset is spread across the lattice and is stable under
factor reordering.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

from repro.errors import CampaignError
from repro.sta.scheduler import _digest

_PLAIN = (str, int, float, bool, type(None))


def _check_plain(name: str, value: Any) -> None:
    if not isinstance(value, _PLAIN):
        raise CampaignError(
            f"factor {name!r} has a non-JSON-plain level "
            f"{value!r} ({type(value).__name__})"
        )


@dataclass(frozen=True)
class Factor:
    """One swept axis: a name and its finite level menu."""

    name: str
    levels: Tuple[Any, ...]

    def __post_init__(self):
        if not self.name:
            raise CampaignError("factor needs a name")
        if not self.levels:
            raise CampaignError(f"factor {self.name!r} has no levels")
        object.__setattr__(self, "levels", tuple(self.levels))
        for level in self.levels:
            _check_plain(self.name, level)
        if len(set(map(repr, self.levels))) != len(self.levels):
            raise CampaignError(f"factor {self.name!r} repeats a level")


@dataclass(frozen=True)
class CampaignConfig:
    """One fully-resolved configuration of a campaign."""

    campaign: str
    index: int  # position in the *full* factorial design
    levels: Tuple[Tuple[str, Any], ...]  # sorted (name, value) pairs
    seed: int
    fingerprint: str

    @property
    def assignment(self) -> Dict[str, Any]:
        return dict(self.levels)

    def level(self, name: str, default: Any = None) -> Any:
        return self.assignment.get(name, default)

    def levels_json(self) -> str:
        return json.dumps(self.assignment, sort_keys=True)


def config_fingerprint(levels: Dict[str, Any]) -> str:
    """Content identity of one assignment — independent of campaign
    name, factor order, index, or seed, so re-specs of the same point
    in the design space reuse each other's results."""
    return _digest("campaign-config", {k: levels[k] for k in sorted(levels)})


def derive_seed(spec_seed: int, fingerprint: str) -> int:
    """Deterministic per-config seed: spec seed mixed with content."""
    return int(_digest("campaign-seed", spec_seed, fingerprint)[:12], 16) \
        % (2 ** 31 - 1)


@dataclass
class CampaignSpec:
    """A named factorial design space (see module docstring).

    Args:
        name: campaign identity; one results DB can hold many.
        factors: the swept axes (unique names, finite level menus).
        base: fixed parameters merged into every assignment; a base key
            shadowed by a factor is an error.
        fraction: keep this fraction of the full factorial design
            (deterministic by fingerprint hash; 1.0 = full).
        seed: root seed; every config derives its own stream from it.
    """

    name: str
    factors: List[Factor]
    base: Dict[str, Any] = field(default_factory=dict)
    fraction: float = 1.0
    seed: int = 0

    def __post_init__(self):
        if not self.name:
            raise CampaignError("campaign needs a name")
        if not self.factors:
            raise CampaignError("campaign needs at least one factor")
        names = [f.name for f in self.factors]
        if len(set(names)) != len(names):
            raise CampaignError("factor names must be unique")
        for key, value in self.base.items():
            _check_plain(key, value)
            if key in names:
                raise CampaignError(
                    f"base parameter {key!r} is shadowed by a factor"
                )
        if not 0.0 < self.fraction <= 1.0:
            raise CampaignError(
                f"fraction must be in (0, 1], got {self.fraction}"
            )

    @property
    def size(self) -> int:
        """Full factorial size (before any fractional subsampling)."""
        n = 1
        for factor in self.factors:
            n *= len(factor.levels)
        return n

    def expand(self) -> List[CampaignConfig]:
        """The design, as deterministic ready-to-run configs."""
        configs: List[CampaignConfig] = []
        menus = [factor.levels for factor in self.factors]
        names = [factor.name for factor in self.factors]
        for index, combo in enumerate(itertools.product(*menus)):
            levels = dict(self.base)
            levels.update(zip(names, combo))
            fp = config_fingerprint(levels)
            configs.append(CampaignConfig(
                campaign=self.name,
                index=index,
                levels=tuple(sorted(levels.items())),
                seed=derive_seed(self.seed, fp),
                fingerprint=fp,
            ))
        if self.fraction < 1.0:
            keep = max(1, round(self.fraction * len(configs)))
            configs.sort(key=lambda c: _digest(
                "campaign-fraction", self.seed, c.fingerprint))
            configs = sorted(configs[:keep], key=lambda c: c.index)
        return configs

    # ------------------------------------------------------------------ #
    # JSON round-trip (CLI --spec-file)

    def to_json(self) -> str:
        return json.dumps({
            "name": self.name,
            "factors": [
                {"name": f.name, "levels": list(f.levels)}
                for f in self.factors
            ],
            "base": self.base,
            "fraction": self.fraction,
            "seed": self.seed,
        }, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        try:
            raw = json.loads(text)
        except ValueError as exc:
            raise CampaignError(f"spec is not valid JSON: {exc}") from None
        if not isinstance(raw, dict):
            raise CampaignError("spec must be a JSON object")
        factors_raw = raw.get("factors")
        if not isinstance(factors_raw, list):
            raise CampaignError("spec needs a factors list")
        factors = []
        for item in factors_raw:
            if not isinstance(item, dict) or "name" not in item:
                raise CampaignError(f"malformed factor entry: {item!r}")
            factors.append(Factor(item["name"],
                                  tuple(item.get("levels", ()))))
        return cls(
            name=raw.get("name", ""),
            factors=factors,
            base=raw.get("base", {}) or {},
            fraction=float(raw.get("fraction", 1.0)),
            seed=int(raw.get("seed", 0)),
        )


def spread_indices(n: int, count: int) -> List[int]:
    """``count`` indices spread evenly over ``range(n)`` (training-wave
    selection: cover the lattice, not its first corner)."""
    if count >= n:
        return list(range(n))
    if count <= 0:
        return []
    step = n / count
    picked = sorted({min(n - 1, int(i * step)) for i in range(count)})
    # Rounding can collapse neighbours; top up from unused indices.
    extra = (i for i in range(n) if i not in set(picked))
    while len(picked) < count:
        picked.append(next(extra))
    return sorted(picked)
