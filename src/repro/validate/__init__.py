"""Pre-run validation: lint netlist, library and constraints before STA.

See :mod:`repro.validate.checks` for the check catalogue. The CLI
exposes this as ``python -m repro validate``; the signoff and closure
commands run it automatically before spending compute.
"""

from repro.validate.checks import (
    Severity,
    ValidationIssue,
    ValidationReport,
    ensure_valid,
    validate_constraints,
    validate_design,
    validate_library,
    validate_setup,
)

__all__ = [
    "Severity",
    "ValidationIssue",
    "ValidationReport",
    "ensure_valid",
    "validate_constraints",
    "validate_design",
    "validate_library",
    "validate_setup",
]
