"""Pre-run lint checks for netlists, libraries and constraints.

A signoff batch that dies twenty minutes in on a malformed input is the
most expensive way to discover a NaN. These checks run in milliseconds
before any STA and report *every* problem at once as structured
:class:`ValidationIssue` objects — severity, domain, a stable machine
code, and the offending subject — instead of the first traceback.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ValidationError
from repro.liberty.cell import PinDirection


class Severity(enum.Enum):
    ERROR = "error"      # analysis would crash or produce garbage
    WARNING = "warning"  # suspicious but analyzable

    def __lt__(self, other):
        order = {"error": 0, "warning": 1}
        return order[self.value] < order[other.value]


@dataclass(frozen=True)
class ValidationIssue:
    """One lint finding."""

    severity: Severity
    domain: str   # "netlist" | "library" | "constraints"
    code: str     # stable machine-readable identifier
    subject: str  # offending object (instance, cell, net, port...)
    message: str

    def render(self) -> str:
        return (f"{self.severity.value.upper():<7} [{self.domain}/"
                f"{self.code}] {self.subject}: {self.message}")


@dataclass
class ValidationReport:
    """All findings of one validation pass."""

    issues: List[ValidationIssue] = field(default_factory=list)

    def __post_init__(self):
        self.issues.sort(key=lambda i: (i.severity, i.domain, i.code,
                                        i.subject))

    @property
    def ok(self) -> bool:
        return not self.errors

    @property
    def errors(self) -> List[ValidationIssue]:
        return [i for i in self.issues if i.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[ValidationIssue]:
        return [i for i in self.issues if i.severity is Severity.WARNING]

    def render(self) -> str:
        if not self.issues:
            return "validation clean: no issues"
        lines = [i.render() for i in self.issues]
        lines.append(
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s)"
        )
        return "\n".join(lines)


def _issue(issues, severity, domain, code, subject, message):
    issues.append(ValidationIssue(severity, domain, code, subject, message))


# ---------------------------------------------------------------------- #
# netlist


def validate_design(design, library=None) -> List[ValidationIssue]:
    """Structural netlist lint; library-aware checks need ``library``."""
    issues: List[ValidationIssue] = []
    if not design.instances and not design.ports:
        _issue(issues, Severity.ERROR, "netlist", "empty-design",
               design.name, "design has no instances and no ports")
        return issues

    # driver census per net, resolved from library pin directions (works
    # on unbound designs: bind() itself needs a healthy netlist).
    drivers: Dict[str, List[str]] = {}
    loads: Dict[str, List[str]] = {}
    for port, direction in design.ports.items():
        target = drivers if direction.value == "input" else loads
        target.setdefault(port, []).append(f"port {port}")

    for inst in design.instances.values():
        cell = None
        if library is not None:
            cell = library.cells.get(inst.cell_name)
            if cell is None:
                _issue(issues, Severity.ERROR, "netlist", "unknown-cell",
                       inst.name,
                       f"references cell {inst.cell_name!r} absent from "
                       f"library {library.name}")
        for pin_name, net_name in inst.connections.items():
            ref = f"{inst.name}/{pin_name}"
            if cell is not None:
                pin = cell.pins.get(pin_name)
                if pin is None:
                    _issue(issues, Severity.ERROR, "netlist", "unknown-pin",
                           ref,
                           f"cell {cell.name} has no pin {pin_name!r}")
                    continue
                target = (drivers if pin.direction is PinDirection.OUTPUT
                          else loads)
                target.setdefault(net_name, []).append(ref)
        if cell is not None:
            for pin_name in cell.pins:
                if pin_name not in inst.connections:
                    _issue(issues, Severity.ERROR, "netlist",
                           "unconnected-pin", f"{inst.name}/{pin_name}",
                           f"pin of cell {cell.name} is unconnected")

    if library is not None:
        for net_name, who in sorted(drivers.items()):
            if len(who) > 1:
                _issue(issues, Severity.ERROR, "netlist", "multi-driver",
                       net_name, f"driven by {', '.join(sorted(who))}")
        for net_name, who in sorted(loads.items()):
            if net_name not in drivers:
                _issue(issues, Severity.ERROR, "netlist", "undriven-net",
                       net_name,
                       f"has {len(who)} load(s) but no driver")
        for net_name in sorted(drivers):
            if net_name not in loads:
                _issue(issues, Severity.WARNING, "netlist", "dangling-net",
                       net_name, "driven but drives nothing")
    return issues


# ---------------------------------------------------------------------- #
# library


def _table_issues(issues, cell_name, label, table) -> None:
    values = np.asarray(table.values, dtype=float)
    if not np.all(np.isfinite(values)):
        _issue(issues, Severity.ERROR, "library", "non-finite-table",
               cell_name, f"{label} contains NaN/inf values")
    elif float(values.min()) < 0.0:
        _issue(issues, Severity.ERROR, "library", "negative-delay",
               cell_name,
               f"{label} has negative entries (min {values.min():.3f})")


def validate_library(library) -> List[ValidationIssue]:
    """Lint one characterized library."""
    issues: List[ValidationIssue] = []
    if not library.cells:
        _issue(issues, Severity.ERROR, "library", "empty-library",
               library.name, "library has no cells")
        return issues
    for name in sorted(library.cells):
        cell = library.cells[name]
        for pin in cell.pins.values():
            if not math.isfinite(pin.capacitance) or pin.capacitance < 0:
                _issue(issues, Severity.ERROR, "library", "bad-capacitance",
                       f"{name}/{pin.name}",
                       f"pin capacitance {pin.capacitance!r} is invalid")
        for arc in cell.arcs:
            for endpoint in (arc.related_pin, arc.pin):
                if endpoint not in cell.pins:
                    _issue(issues, Severity.ERROR, "library",
                           "arc-pin-missing", name,
                           f"arc {arc.related_pin}->{arc.pin} references "
                           f"missing pin {endpoint!r}")
            for direction, timing in sorted(arc.timing.items()):
                label = f"arc {arc.related_pin}->{arc.pin} {direction}"
                _table_issues(issues, name, f"{label} delay", timing.delay)
                _table_issues(issues, name, f"{label} slew", timing.slew)
            for direction, table in sorted(arc.constraint.items()):
                values = np.asarray(table.values, dtype=float)
                if not np.all(np.isfinite(values)):
                    _issue(issues, Severity.ERROR, "library",
                           "non-finite-table", name,
                           f"constraint {arc.related_pin}->{arc.pin} "
                           f"{direction} contains NaN/inf values")
        if not cell.arcs and not cell.is_sequential:
            _issue(issues, Severity.WARNING, "library", "arcless-cell",
                   name, "combinational cell has no timing arcs")
    return issues


# ---------------------------------------------------------------------- #
# constraints


def validate_constraints(constraints, design=None) -> List[ValidationIssue]:
    """Lint one SDC-lite constraint set, optionally against a design."""
    issues: List[ValidationIssue] = []
    if not constraints.clocks:
        _issue(issues, Severity.ERROR, "constraints", "no-clock",
               "(constraints)", "no clock is defined")
    min_period = min(
        (c.period for c in constraints.clocks.values()), default=math.inf
    )
    ports = set(design.ports) if design is not None else None
    inputs = set(design.input_ports()) if design is not None else None
    for clock in constraints.clocks.values():
        if inputs is not None and clock.port not in inputs:
            _issue(issues, Severity.ERROR, "constraints",
                   "clock-port-missing", clock.name,
                   f"clock enters at {clock.port!r}, not an input port "
                   f"of {design.name}")
        if clock.uncertainty_setup >= clock.period:
            _issue(issues, Severity.ERROR, "constraints",
                   "uncertainty-exceeds-period", clock.name,
                   f"setup uncertainty {clock.uncertainty_setup} ps >= "
                   f"period {clock.period} ps")
    for label, delays in (("input-delay", constraints.input_delays),
                          ("output-delay", constraints.output_delays)):
        for port, delay in sorted(delays.items()):
            if ports is not None and port not in ports:
                _issue(issues, Severity.ERROR, "constraints",
                       f"{label}-unknown-port", port,
                       f"{label} on a port the design does not have")
            if delay < 0:
                _issue(issues, Severity.ERROR, "constraints",
                       f"{label}-negative", port,
                       f"{label} {delay} ps is negative")
            elif delay >= min_period:
                _issue(issues, Severity.WARNING, "constraints",
                       f"{label}-exceeds-period", port,
                       f"{label} {delay} ps >= clock period "
                       f"{min_period} ps")
    if constraints.max_transition is not None \
            and constraints.max_transition <= 0:
        _issue(issues, Severity.ERROR, "constraints", "bad-max-transition",
               "(constraints)",
               f"max_transition {constraints.max_transition} must be "
               "positive")
    return issues


# ---------------------------------------------------------------------- #
# entry points


def validate_setup(design, library, constraints) -> ValidationReport:
    """Full pre-run lint of one (netlist, library, constraints) triple."""
    issues = (
        validate_library(library)
        + validate_design(design, library)
        + validate_constraints(constraints, design)
    )
    return ValidationReport(issues=issues)


def ensure_valid(design, library, constraints,
                 report: Optional[ValidationReport] = None) -> ValidationReport:
    """Validate and raise :class:`ValidationError` on any ERROR finding."""
    if report is None:
        report = validate_setup(design, library, constraints)
    if not report.ok:
        first = report.errors[0]
        raise ValidationError(
            f"pre-run validation failed with {len(report.errors)} "
            f"error(s); first: [{first.domain}/{first.code}] "
            f"{first.subject}: {first.message}",
            issues=report.issues,
            design=design.name,
            library=library.name,
        )
    return report
