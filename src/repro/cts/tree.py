"""Clustered buffered clock-tree synthesis.

Generators wire one ideal ``clk`` net to every flop. This module replaces
that with a two-level buffered tree: flops are grouped into spatial
clusters (grid binning on their placement), each cluster gets a leaf
buffer at its centroid, and a root buffer drives the leaf buffers. The
result is a *real* clock network through which STA propagates insertion
delay and skew — and through which CPPR finds common segments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import NetlistError
from repro.liberty.library import Library
from repro.netlist.design import Design, PinRef


@dataclass
class CtsReport:
    """What clock-tree synthesis built."""

    clock_net: str
    root_buffer: str
    leaf_buffers: List[str]
    clusters: Dict[str, List[str]]  # leaf buffer -> flop instances

    @property
    def n_clusters(self) -> int:
        return len(self.leaf_buffers)


def synthesize_clock_tree(
    design: Design,
    library: Library,
    clock_net: str = "clk",
    target_cluster_size: int = 8,
    leaf_buffer: str = "BUF_X4_SVT",
    root_buffer: str = "BUF_X8_SVT",
) -> CtsReport:
    """Build a two-level buffered tree on ``clock_net``.

    The flops currently loaded by the clock net are clustered by location;
    each cluster's CK pins move to a new leaf net driven by a leaf buffer,
    and the leaf buffers' inputs move to a root net driven by the root
    buffer, which remains the only load on the original clock source.
    """
    design.bind(library)
    net = design.get_net(clock_net)
    flop_loads = [ref for ref in net.loads if not ref.is_port]
    if not flop_loads:
        raise NetlistError(f"clock net {clock_net!r} has no instance loads")

    clusters = _cluster_by_location(design, flop_loads, target_cluster_size)

    root_inst = design.unique_name("cts_root")
    root_net = design.unique_name("cts_rootnet")
    design.add_instance(
        root_inst,
        root_buffer,
        {"A": clock_net, "Z": root_net},
        location=_centroid(design, flop_loads),
    )

    leaf_names: List[str] = []
    cluster_map: Dict[str, List[str]] = {}
    for idx, cluster in enumerate(clusters):
        leaf_inst = design.unique_name(f"cts_leaf{idx}")
        leaf_net = design.unique_name(f"cts_leafnet{idx}")
        design.add_instance(
            leaf_inst,
            leaf_buffer,
            {"A": root_net, "Z": leaf_net},
            location=_centroid(design, cluster),
        )
        for ref in cluster:
            design.instance(ref.instance).connections[ref.pin] = leaf_net
        leaf_names.append(leaf_inst)
        cluster_map[leaf_inst] = [ref.instance for ref in cluster]

    # The original clock net now feeds only the root buffer.
    design.bind(library)
    design.validate(library)
    return CtsReport(
        clock_net=clock_net,
        root_buffer=root_inst,
        leaf_buffers=leaf_names,
        clusters=cluster_map,
    )


def _cluster_by_location(
    design: Design, refs: List[PinRef], target_size: int
) -> List[List[PinRef]]:
    """Deterministic grid clustering of pins by instance location."""
    n_clusters = max(1, math.ceil(len(refs) / target_size))
    grid = max(1, int(math.sqrt(n_clusters)))

    located = []
    for ref in refs:
        loc = design.instance(ref.instance).location or (0.0, 0.0)
        located.append((loc, ref))
    xs = [l[0][0] for l in located]
    ys = [l[0][1] for l in located]
    x_lo, x_hi = min(xs), max(xs) + 1e-6
    y_lo, y_hi = min(ys), max(ys) + 1e-6

    bins: Dict[Tuple[int, int], List[PinRef]] = {}
    for (x, y), ref in located:
        bx = min(int((x - x_lo) / (x_hi - x_lo) * grid), grid - 1)
        by = min(int((y - y_lo) / (y_hi - y_lo) * grid), grid - 1)
        bins.setdefault((bx, by), []).append(ref)
    # Split oversized bins so leaf buffers stay within drive limits.
    out: List[List[PinRef]] = []
    for key in sorted(bins):
        group = sorted(bins[key], key=str)
        for i in range(0, len(group), target_size * 2):
            out.append(group[i:i + target_size * 2])
    return out


def _centroid(design: Design, refs: List[PinRef]) -> Optional[Tuple[float, float]]:
    xs, ys = [], []
    for ref in refs:
        loc = design.instance(ref.instance).location
        if loc is not None:
            xs.append(loc[0])
            ys.append(loc[1])
    if not xs:
        return None
    return (sum(xs) / len(xs), sum(ys) / len(ys))
