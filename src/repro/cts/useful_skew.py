"""Useful-skew scheduling.

Deliberately skewing capture clocks steals slack from fast stages and
gives it to slow ones — the last resort in the MacDonald fix ordering of
the paper's Fig 1. We solve the classic formulation as an LP: choose a
latency offset per flop within [0, max_adjust], maximizing the worst
setup slack while keeping every hold slack non-negative.

Offsets are realized through ``Constraints.clock_latency`` (the STA
applies them to both the launch and capture roles of each flop).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.errors import TimingError


@dataclass(frozen=True)
class SkewStage:
    """One launch->capture stage with its current slacks (ps)."""

    launch: str
    capture: str
    setup_slack: float
    hold_slack: float


@dataclass
class UsefulSkewResult:
    """The schedule and its predicted effect."""

    offsets: Dict[str, float]
    baseline_wns: float
    predicted_wns: float

    @property
    def improvement(self) -> float:
        return self.predicted_wns - self.baseline_wns


def schedule_useful_skew(
    stages: Sequence[SkewStage],
    max_adjust: float = 50.0,
    hold_guard: float = 0.0,
) -> UsefulSkewResult:
    """Solve the useful-skew LP.

    Variables: offset d_f per flop, worst slack t. For stage (i -> j)::

        setup: t <= setup_slack_ij + d_j - d_i
        hold:       hold_slack_ij + d_i - d_j >= hold_guard

    Offsets bounded to [0, max_adjust].
    """
    if not stages:
        raise TimingError("need at least one stage to schedule")
    flops = sorted({s.launch for s in stages} | {s.capture for s in stages})
    index = {f: i for i, f in enumerate(flops)}
    n = len(flops)

    c = np.zeros(n + 1)
    c[-1] = -1.0  # maximize t
    a_ub: List[np.ndarray] = []
    b_ub: List[float] = []
    for st in stages:
        i, j = index[st.launch], index[st.capture]
        # t - d_j + d_i <= setup_slack
        row = np.zeros(n + 1)
        row[-1] = 1.0
        row[j] -= 1.0
        row[i] += 1.0
        a_ub.append(row)
        b_ub.append(st.setup_slack)
        # d_j - d_i <= hold_slack - guard
        row = np.zeros(n + 1)
        row[j] += 1.0
        row[i] -= 1.0
        a_ub.append(row)
        b_ub.append(st.hold_slack - hold_guard)
    bounds = [(0.0, max_adjust)] * n + [(None, None)]
    res = linprog(c, A_ub=np.array(a_ub), b_ub=np.array(b_ub),
                  bounds=bounds, method="highs")
    baseline = min(s.setup_slack for s in stages)
    if not res.success:
        return UsefulSkewResult(
            offsets={f: 0.0 for f in flops},
            baseline_wns=baseline,
            predicted_wns=baseline,
        )
    offsets = {f: float(res.x[index[f]]) for f in flops}
    predicted = min(
        st.setup_slack + offsets[st.capture] - offsets[st.launch]
        for st in stages
    )
    return UsefulSkewResult(
        offsets=offsets,
        baseline_wns=baseline,
        predicted_wns=predicted,
    )


def stages_from_report(sta, report, limit: int = 100) -> List[SkewStage]:
    """Extract skew-schedulable stages from STA setup+hold endpoints.

    Pairs each setup endpoint's worst path with the matching hold slack at
    the same endpoint (conservatively using the endpoint's own hold slack).
    """
    hold_by_endpoint = {e.endpoint: e.slack for e in report.endpoints("hold")}
    stages: List[SkewStage] = []
    for endpoint in report.endpoints("setup")[:limit]:
        if endpoint.kind != "setup" or endpoint.check is None:
            continue
        path = sta.worst_path(endpoint)
        launch = None
        for point in path.points:
            if not point.ref.is_port and point.ref.pin == "Q":
                launch = point.ref.instance
                break
        if launch is None or launch == endpoint.check.instance:
            continue
        stages.append(
            SkewStage(
                launch=launch,
                capture=endpoint.check.instance,
                setup_slack=endpoint.slack,
                hold_slack=hold_by_endpoint.get(endpoint.endpoint, 1e9),
            )
        )
    return stages
