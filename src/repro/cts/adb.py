"""Adjustable delay buffers (ADBs) for multi-voltage-mode clock skew.

The paper's MCMM-CTS discussion: "each of hundreds of scenarios has
different clock insertion delay and timing constraints" — a fixed buffer
tree balanced at one voltage mode is skewed at another because gate and
wire delays scale differently. [Su et al., TCAD'10] equalizes skew across
modes with *adjustable* delay buffers whose settings switch with the
mode.

Two assignment policies are provided for comparison:

- :func:`assign_per_mode` — one setting per (sink, mode): skew per mode
  collapses to the ADB step size (the Su et al. capability);
- :func:`assign_static` — one setting per sink for all modes (what a
  fixed-delay fix could do): the residual cross-mode skew shows why
  adjustability is worth the area.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import TimingError
from repro.netlist.design import PinRef
from repro.cts.skew import SkewReport


@dataclass(frozen=True)
class AdbMenu:
    """The discrete delay settings an ADB offers, ps."""

    step: float = 4.0
    n_steps: int = 8

    def settings(self) -> List[float]:
        return [i * self.step for i in range(self.n_steps + 1)]

    @property
    def max_delay(self) -> float:
        return self.step * self.n_steps

    def quantize_down(self, value: float) -> float:
        """Largest setting not exceeding ``value`` (clamped to range)."""
        clamped = min(max(value, 0.0), self.max_delay)
        return math.floor(clamped / self.step) * self.step


@dataclass
class AdbAssignment:
    """Chosen settings and the resulting skews."""

    settings: Dict[Tuple[str, PinRef], float]  # (mode, sink) -> delay
    skew_before: Dict[str, float]
    skew_after: Dict[str, float]

    @property
    def worst_skew_before(self) -> float:
        return max(self.skew_before.values())

    @property
    def worst_skew_after(self) -> float:
        return max(self.skew_after.values())


def assign_per_mode(reports: Dict[str, SkewReport],
                    menu: AdbMenu = AdbMenu()) -> AdbAssignment:
    """Per-(mode, sink) settings: pad every early sink up toward the
    latest arrival of its mode. Residual skew <= one ADB step (unless the
    mode's skew exceeds the ADB range)."""
    if not reports:
        raise TimingError("need at least one mode's skew report")
    settings: Dict[Tuple[str, PinRef], float] = {}
    before: Dict[str, float] = {}
    after: Dict[str, float] = {}
    for mode, report in reports.items():
        before[mode] = report.global_skew
        target = max(report.arrivals.values())
        adjusted = {}
        for sink, arrival in report.arrivals.items():
            delay = menu.quantize_down(target - arrival)
            settings[(mode, sink)] = delay
            adjusted[sink] = arrival + delay
        after[mode] = max(adjusted.values()) - min(adjusted.values())
    return AdbAssignment(settings=settings, skew_before=before,
                         skew_after=after)


def assign_static(reports: Dict[str, SkewReport],
                  menu: AdbMenu = AdbMenu()) -> AdbAssignment:
    """One setting per sink shared by all modes.

    The setting is chosen against the *average* lateness across modes —
    the best a non-adjustable delay fix can do — leaving residual skew
    wherever modes disagree about which sinks are early.
    """
    if not reports:
        raise TimingError("need at least one mode's skew report")
    sinks = set.intersection(*(set(r.arrivals) for r in reports.values()))
    if not sinks:
        raise TimingError("modes share no common clock sinks")

    mean_lateness: Dict[PinRef, float] = {}
    for sink in sinks:
        gaps = [
            max(r.arrivals.values()) - r.arrivals[sink]
            for r in reports.values()
        ]
        mean_lateness[sink] = sum(gaps) / len(gaps)

    shared = {sink: menu.quantize_down(mean_lateness[sink])
              for sink in sinks}

    settings: Dict[Tuple[str, PinRef], float] = {}
    before: Dict[str, float] = {}
    after: Dict[str, float] = {}
    for mode, report in reports.items():
        before[mode] = report.global_skew
        adjusted = {
            sink: report.arrivals[sink] + shared[sink] for sink in sinks
        }
        after[mode] = max(adjusted.values()) - min(adjusted.values())
        for sink in sinks:
            settings[(mode, sink)] = shared[sink]
    return AdbAssignment(settings=settings, skew_before=before,
                         skew_after=after)
