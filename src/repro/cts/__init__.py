"""Clock tree synthesis substrate and useful-skew scheduling.

- :mod:`repro.cts.tree` — a clustered buffered clock tree builder
  (replaces the generators' ideal clock net);
- :mod:`repro.cts.skew` — insertion delay / skew analysis, including the
  multi-corner skew-variation metric of the paper's MCMM-CTS discussion;
- :mod:`repro.cts.useful_skew` — LP-based useful-skew scheduling (one of
  the Fig 1 closure fixes), applied through per-flop clock latencies.
"""

from repro.cts.tree import CtsReport, synthesize_clock_tree
from repro.cts.skew import (
    DutyCycleReport,
    SkewReport,
    clock_skew_report,
    duty_cycle_report,
    multi_corner_skew,
)
from repro.cts.useful_skew import UsefulSkewResult, schedule_useful_skew
from repro.cts.adb import AdbMenu, assign_per_mode, assign_static

__all__ = [
    "CtsReport",
    "synthesize_clock_tree",
    "SkewReport",
    "DutyCycleReport",
    "clock_skew_report",
    "duty_cycle_report",
    "multi_corner_skew",
    "UsefulSkewResult",
    "schedule_useful_skew",
    "AdbMenu",
    "assign_per_mode",
    "assign_static",
]
