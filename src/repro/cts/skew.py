"""Clock skew and insertion-delay analysis.

Reports global skew (max - min clock arrival over all CK pins), insertion
delay, and the multi-corner skew variation that the paper's MCMM-CTS
discussion ("each of hundreds of scenarios has different clock insertion
delay") makes a first-class closure concern.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import TimingError
from repro.netlist.design import PinRef


@dataclass
class SkewReport:
    """Clock arrival statistics over all flop CK pins."""

    arrivals: Dict[PinRef, float]

    @property
    def insertion_delay(self) -> float:
        """Mean clock arrival (source latency excluded by caller)."""
        return sum(self.arrivals.values()) / len(self.arrivals)

    @property
    def global_skew(self) -> float:
        return max(self.arrivals.values()) - min(self.arrivals.values())

    @property
    def earliest(self) -> PinRef:
        return min(self.arrivals, key=self.arrivals.get)

    @property
    def latest(self) -> PinRef:
        return max(self.arrivals, key=self.arrivals.get)


def clock_skew_report(sta) -> SkewReport:
    """Skew report from a completed STA run (late rising arrivals)."""
    if sta.prop is None:
        raise TimingError("run() must be called before skew analysis")
    arrivals: Dict[PinRef, float] = {}
    for check in sta.graph.setup_checks():
        ck = check.clock_pin
        arr = sta.prop.at(ck, "rise")
        if arr.valid:
            arrivals[ck] = arr.late
    if not arrivals:
        raise TimingError("no clocked flops found")
    return SkewReport(arrivals=arrivals)


@dataclass
class DutyCycleReport:
    """Per-CK-pin duty-cycle distortion through the clock network.

    Distortion is the accumulated rise-vs-fall delay asymmetry of the
    clock path: positive means the high phase *shrinks* (rising edges
    arrive later than falling ones). The cross-corners (FSG/SFG) are
    exactly where this blows up — the reason the paper says they are
    "increasingly required... for signoff of clock distribution".
    """

    distortion: Dict[PinRef, float]

    @property
    def worst(self) -> float:
        return max(self.distortion.values(), key=abs)

    @property
    def mean(self) -> float:
        return sum(self.distortion.values()) / len(self.distortion)


def duty_cycle_report(sta) -> DutyCycleReport:
    """Rise-vs-fall clock arrival asymmetry at every flop CK pin.

    Both edges are seeded simultaneously at the clock root, so the
    arrival difference at a CK pin is purely the clock network's
    rise/fall imbalance (inverter pairs, buffer stage asymmetry, and —
    at cross-corners — the skewed NMOS/PMOS strengths).
    """
    if sta.prop is None:
        raise TimingError("run() must be called before duty-cycle analysis")
    out: Dict[PinRef, float] = {}
    for check in sta.graph.setup_checks():
        ck = check.clock_pin
        rise = sta.prop.at(ck, "rise")
        fall = sta.prop.at(ck, "fall")
        if rise.valid and fall.valid:
            out[ck] = rise.late - fall.late
    if not out:
        raise TimingError("no clocked flops with both edges propagated")
    return DutyCycleReport(distortion=out)


def multi_corner_skew(reports: Dict[str, SkewReport]) -> Dict[str, float]:
    """MCMM skew metrics over per-scenario skew reports.

    Returns global skew per scenario plus ``cross_corner_variation``: the
    worst over CK pins of (max - min arrival across scenarios) — the
    quantity multi-corner CTS ([Han et al. DAC'15]) minimizes.
    """
    if not reports:
        raise TimingError("no skew reports to merge")
    out = {name: rep.global_skew for name, rep in reports.items()}
    common = set.intersection(
        *(set(rep.arrivals) for rep in reports.values())
    )
    if common:
        out["cross_corner_variation"] = max(
            max(rep.arrivals[pin] for rep in reports.values())
            - min(rep.arrivals[pin] for rep in reports.values())
            for pin in common
        )
    return out
