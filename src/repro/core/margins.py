"""Flat-margin stackup and margin recovery.

The paper's footnote 5: flat margins "model what cannot be modeled" —
PLL jitter, CTS jitter, foundry-dictated jitter margin and dynamic IR
drop are "all swept under a single jitter margin rug", with clear
opportunities to detangle them. This module makes the stackup explicit:
named components, RSS-vs-linear accumulation (linear = today's practice,
RSS = the detangled opportunity), and recovery transforms (AVS removes
the DC aging component; cycle-to-cycle jitter accounting shrinks the
jitter term).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Tuple

from repro.errors import SignoffError

#: Which components correlate enough that linear addition is honest.
DEFAULT_COMPONENTS: Dict[str, float] = {
    "pll_jitter": 8.0,
    "cts_jitter": 5.0,
    "foundry_jitter_margin": 6.0,
    "ir_drop": 12.0,
    "aging_dc": 15.0,
    "model_error": 8.0,
    "si_residual": 4.0,
}


@dataclass
class MarginStackup:
    """A named flat-margin budget (all ps)."""

    components: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_COMPONENTS)
    )

    def __post_init__(self):
        for name, value in self.components.items():
            if value < 0.0:
                raise SignoffError(f"margin component {name} is negative")

    def linear_total(self) -> float:
        """Today's practice: one flat number, linearly accumulated."""
        return sum(self.components.values())

    def rss_total(self) -> float:
        """The detangled alternative: independent components add in RSS."""
        return math.sqrt(sum(v * v for v in self.components.values()))

    def pessimism(self) -> float:
        """Margin recoverable by detangling (linear minus RSS)."""
        return self.linear_total() - self.rss_total()

    # ------------------------------------------------------------------ #
    # recovery transforms

    def with_avs(self) -> "MarginStackup":
        """AVS removes the DC aging component (Section 1.3: 'AVS removes
        a DC component of timing margin')."""
        out = dict(self.components)
        out["aging_dc"] = 0.0
        return MarginStackup(out)

    def with_cycle_jitter_accounting(self, factor: float = 0.5) -> "MarginStackup":
        """Cycle-to-cycle jitter analysis scales the jitter components
        (consecutive short clock pulses are unlikely — Section 3.4)."""
        if not 0.0 <= factor <= 1.0:
            raise SignoffError("jitter factor must be in [0, 1]")
        out = dict(self.components)
        for key in ("pll_jitter", "cts_jitter", "foundry_jitter_margin"):
            if key in out:
                out[key] *= factor
        return MarginStackup(out)

    def with_dynamic_ir_analysis(self, residual: float = 3.0) -> "MarginStackup":
        """'-dynamic' IR analysis replaces the flat IR margin with a
        small residual."""
        out = dict(self.components)
        out["ir_drop"] = min(out.get("ir_drop", 0.0), residual)
        return MarginStackup(out)

    def table(self) -> str:
        lines = [f"{'component':<24} {'ps':>7}"]
        for name, value in sorted(self.components.items()):
            lines.append(f"{name:<24} {value:7.1f}")
        lines.append(f"{'linear total':<24} {self.linear_total():7.1f}")
        lines.append(f"{'RSS total':<24} {self.rss_total():7.1f}")
        return "\n".join(lines)


def recovery_ladder(base: MarginStackup) -> List[Tuple[str, float]]:
    """The margin left after each successive recovery step — the
    'relentless pursuit of margin recovery' as a sequence."""
    steps = [("baseline (linear)", base.linear_total())]
    current = base
    current = current.with_avs()
    steps.append(("+ AVS (drop DC aging)", current.linear_total()))
    current = current.with_dynamic_ir_analysis()
    steps.append(("+ dynamic IR analysis", current.linear_total()))
    current = current.with_cycle_jitter_accounting()
    steps.append(("+ cycle-to-cycle jitter", current.linear_total()))
    steps.append(("+ detangled RSS", current.rss_total()))
    return steps
