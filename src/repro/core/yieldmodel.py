"""Parametric timing yield: the "old goal post" vs the new game.

Footnote 7 (Lutkemeyer): "while the game is indeed new (slacks now
reported at a confidence tail of the slack distribution, affording an
approximate statistical analysis), the goalposts are actually 'old' in
that STA tools and timing closure still center on absolute slack
violations (as opposed to yield losses). Unfortunately, sigmas are
unstable..."

This module computes what the new goal post *would* be: parametric
timing yield from SSTA slack distributions (independent local sigmas,
with the fully-correlated global component integrated out by Gauss-
Hermite-style quadrature), plus the sensitivity of that yield to sigma
error — the instability that keeps the old goal post alive.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import SignoffError
from repro.netlist.design import PinRef
from repro.variation.ssta import SstaResult

#: Quadrature grid for the global (die-to-die) component.
_GLOBAL_GRID = np.linspace(-4.0, 4.0, 81)


def endpoint_pass_probability(ssta: SstaResult, endpoint: PinRef,
                              sigma_scale: float = 1.0) -> float:
    """P(slack >= 0) for one endpoint, global component integrated out."""
    dist = ssta.endpoint_slacks[endpoint]
    return float(
        _conditional_pass(dist, _GLOBAL_GRID, sigma_scale).mean()
    )


def design_yield(ssta: SstaResult, sigma_scale: float = 1.0) -> float:
    """Parametric timing yield of the whole design.

    Endpoint failures are independent given the global excursion
    (their local sigmas are independent), so the yield is the
    expectation over the global component of the product of conditional
    pass probabilities. ``sigma_scale`` scales every sigma — the knob
    for the "sigmas are unstable" sensitivity study.
    """
    if not ssta.endpoint_slacks:
        raise SignoffError("SSTA result has no endpoints")
    z = _GLOBAL_GRID
    weights = np.exp(-0.5 * z * z)
    weights /= weights.sum()
    log_pass = np.zeros_like(z)
    for dist in ssta.endpoint_slacks.values():
        conditional = _conditional_pass(dist, z, sigma_scale)
        log_pass += np.log(np.clip(conditional, 1e-300, 1.0))
    return float((weights * np.exp(log_pass)).sum())


def _conditional_pass(dist, z: np.ndarray, sigma_scale: float) -> np.ndarray:
    """P(slack >= 0 | global = z), vectorized over the grid."""
    mean = dist.mean - z * dist.sigma_global * sigma_scale
    local = max(dist.sigma_local * sigma_scale, 1e-12)
    x = mean / (local * math.sqrt(2.0))
    return 0.5 * (1.0 + np.array([math.erf(v) for v in x]))


@dataclass
class GoalpostComparison:
    """Old goal post (corner slack) vs new goal post (yield) at one
    operating point."""

    period: float
    corner_wns: float  # derated deterministic WNS
    yield_estimate: float
    yield_low_sigma: float  # yield if sigmas are 20% larger than believed
    yield_high_sigma: float  # ... 20% smaller

    @property
    def corner_passes(self) -> bool:
        return self.corner_wns >= 0.0

    @property
    def yield_passes(self) -> bool:
        return self.yield_estimate >= 0.99


def goalpost_sweep(
    design,
    library,
    make_constraints,
    periods: List[float],
    derate_percent: float = 0.08,
    global_sigma_frac: float = 0.3,
) -> List[GoalpostComparison]:
    """Compare the two goal posts across a clock-period sweep.

    ``make_constraints(period)`` must return a constraint set. The old
    goal post runs deterministic STA with a flat OCV derate; the new one
    runs SSTA and reads the design yield, bracketing it with +/-20%
    sigma error (the instability that keeps the old post standing).
    """
    from repro.sta.analysis import STA
    from repro.variation.derate import flat_ocv_derates
    from repro.variation.ssta import run_ssta

    out: List[GoalpostComparison] = []
    for period in periods:
        constraints = make_constraints(period)
        corner_sta = STA(design, library, constraints,
                         derates=flat_ocv_derates(derate_percent))
        corner_wns = corner_sta.run().wns("setup")

        stat_sta = STA(design, library, constraints)
        stat_sta.report = stat_sta.run()
        ssta = run_ssta(stat_sta, global_sigma_frac=global_sigma_frac)
        out.append(
            GoalpostComparison(
                period=period,
                corner_wns=corner_wns,
                yield_estimate=design_yield(ssta),
                yield_low_sigma=design_yield(ssta, sigma_scale=1.2),
                yield_high_sigma=design_yield(ssta, sigma_scale=0.8),
            )
        )
    return out


def minimum_passing_period(comparisons: List[GoalpostComparison],
                           goalpost: str) -> Optional[float]:
    """Smallest period each methodology signs off."""
    passing = [
        c.period for c in comparisons
        if (c.corner_passes if goalpost == "corner" else c.yield_passes)
    ]
    return min(passing) if passing else None
