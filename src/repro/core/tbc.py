"""Tightened BEOL corners: the Fig 8 alpha pessimism metric.

Conventional BEOL corners (CBCs) push *every* layer to its worst case
simultaneously; real per-layer variations are not fully correlated, so
the statistical 3-sigma path-delay increment is smaller than the corner's
fully-correlated excursion. [Chan-Dobre-Kahng ICCD'14] quantifies the
pessimism per path as

    alpha_j = 3 sigma_j / (d_j(corner) - d_j(typ))

(small alpha = much pessimism) and signs off paths whose delta-delay at
both Cw and RCw stays below thresholds (A_cw, A_rcw) at *tightened*
corners instead.

Here sigma_j comes from per-layer-uncorrelated RC variation: each wire
stage's delay sigma is its wire delay times the layer's relative sigma
(multi-patterned layers higher), accumulated in RSS along the path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import math

from repro.beol.corners import BeolCorner, conventional_corners, tightened_corner
from repro.beol.stack import BeolStack, default_stack
from repro.errors import SignoffError
from repro.netlist.design import Design, PinRef
from repro.liberty.library import Library
from repro.sta.analysis import STA
from repro.sta.constraints import Constraints

#: Relative 1-sigma of a wire stage's delay, by patterning class.
LAYER_REL_SIGMA = {"single": 0.04, "sadp": 0.08, "saqp": 0.12}


@dataclass
class PathCornerStats:
    """Per-endpoint data for the alpha analysis."""

    endpoint: PinRef
    arrival_typ: float
    delta_cw: float  # arrival(cw) - arrival(typ)
    delta_rcw: float
    sigma3: float  # 3x RSS wire-delay sigma along the typical worst path

    def alpha(self, corner: str) -> float:
        """alpha at "cw" or "rcw"; infinite when the corner moved nothing."""
        delta = self.delta_cw if corner == "cw" else self.delta_rcw
        if delta <= 1e-9:
            return math.inf
        return self.sigma3 / delta

    @property
    def dominant_corner(self) -> str:
        return "cw" if self.delta_cw >= self.delta_rcw else "rcw"


def path_wire_sigma(sta, path, stack: BeolStack) -> float:
    """RSS of per-stage wire-delay sigmas along a path, ps (1 sigma)."""
    var = 0.0
    for point in path.points:
        if point.kind != "net" or point.ref.is_port:
            continue
        inst = sta.design.instance(point.ref.instance)
        net_name = inst.net_of(point.ref.pin)
        para = sta.parasitics.extract(net_name)
        layer = stack.layer(para.layer_name)
        rel = LAYER_REL_SIGMA[layer.patterning]
        var += (point.increment * rel) ** 2
    return math.sqrt(var)


def alpha_analysis(
    design: Design,
    library: Library,
    constraints: Constraints,
    stack: Optional[BeolStack] = None,
    n_endpoints: int = 40,
) -> List[PathCornerStats]:
    """Run STA at typ/Cw/RCw and compute the Fig 8 statistics.

    Endpoints are the N worst setup endpoints at typical.
    """
    stack = stack or default_stack()
    corners = conventional_corners(stack)
    runs: Dict[str, STA] = {}
    for name in ("typ", "cw", "rcw"):
        sta = STA(design, library, constraints, stack=stack,
                  beol_corner=corners[name])
        sta.report = sta.run()
        runs[name] = sta

    typ = runs["typ"]
    arrivals: Dict[str, Dict[PinRef, float]] = {}
    for name, sta in runs.items():
        arrivals[name] = {
            e.endpoint: e.arrival for e in sta.report.endpoints("setup")
        }

    out: List[PathCornerStats] = []
    for endpoint in typ.report.endpoints("setup")[:n_endpoints]:
        ep = endpoint.endpoint
        if ep not in arrivals["cw"] or ep not in arrivals["rcw"]:
            continue
        path = typ.worst_path(endpoint)
        sigma = path_wire_sigma(typ, path, stack)
        out.append(
            PathCornerStats(
                endpoint=ep,
                arrival_typ=endpoint.arrival,
                delta_cw=arrivals["cw"][ep] - endpoint.arrival,
                delta_rcw=arrivals["rcw"][ep] - endpoint.arrival,
                sigma3=3.0 * sigma,
            )
        )
    return out


def classify_tbc_safe(
    stats: Sequence[PathCornerStats],
    a_cw: float,
    a_rcw: float,
) -> Tuple[List[PathCornerStats], List[PathCornerStats]]:
    """Split paths into (tbc_safe, must_use_cbc) by delta-delay thresholds.

    A path is TBC-safe when its *relative* delta-delay at both corners
    stays below the thresholds (the blue-shaded region of Fig 8(b)):
    small corner excursions mean the homogeneous corner was mostly
    pessimism for this path.
    """
    safe, unsafe = [], []
    for s in stats:
        rel_cw = s.delta_cw / max(s.arrival_typ, 1e-9)
        rel_rcw = s.delta_rcw / max(s.arrival_typ, 1e-9)
        if rel_cw <= a_cw and rel_rcw <= a_rcw:
            safe.append(s)
        else:
            unsafe.append(s)
    return safe, unsafe


@dataclass
class TbcSignoffResult:
    """Violation counts with conventional vs tightened corners."""

    violations_cbc: int
    violations_tbc: int
    tbc_safe_paths: int
    total_paths: int

    @property
    def violations_removed(self) -> int:
        return self.violations_cbc - self.violations_tbc


def tbc_signoff(
    design: Design,
    library: Library,
    constraints: Constraints,
    stack: Optional[BeolStack] = None,
    tighten_factor: float = 0.5,
    a_cw: float = 0.05,
    a_rcw: float = 0.05,
    corner_name: str = "cw",
    n_endpoints: int = 100,
) -> TbcSignoffResult:
    """Compare setup violations under the CBC vs the TBC methodology.

    TBC-safe endpoints (classified at thresholds ``a_cw``/``a_rcw``) are
    signed off at the tightened corner; the rest keep the conventional
    corner — mirroring the ICCD'14 flow's reduction in fix/closure effort.
    """
    stack = stack or default_stack()
    corners = conventional_corners(stack)
    cbc = corners[corner_name]
    tbc = tightened_corner(cbc, tighten_factor)

    stats = alpha_analysis(design, library, constraints, stack=stack,
                           n_endpoints=n_endpoints)
    safe, _ = classify_tbc_safe(stats, a_cw, a_rcw)
    safe_set = {s.endpoint for s in safe}

    def violations(corner: BeolCorner, endpoints=None) -> Dict[PinRef, float]:
        sta = STA(design, library, constraints, stack=stack,
                  beol_corner=corner)
        report = sta.run()
        return {
            e.endpoint: e.slack
            for e in report.endpoints("setup")
            if e.violated and (endpoints is None or e.endpoint in endpoints)
        }

    cbc_viol = violations(cbc)
    tbc_viol_safe = violations(tbc, endpoints=safe_set)
    # Unsafe endpoints keep the conventional corner.
    mixed = {ep for ep in cbc_viol if ep not in safe_set} | set(tbc_viol_safe)
    return TbcSignoffResult(
        violations_cbc=len(cbc_viol),
        violations_tbc=len(mixed),
        tbc_safe_paths=len(safe),
        total_paths=len(stats),
    )
