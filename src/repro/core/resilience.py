"""Resilient (timing-error-tolerant) design evaluation ([22]).

[Kahng-Kang-Li-Pineda de Gyvez, TODAES'15] improves *resilient design
implementation*: error-detecting flops plus replay let a design run
beyond its worst-case signoff point, converting rare timing errors into
recovery cycles instead of margin. The classic result is a throughput
curve that rises as the clock is pushed past the worst-case period —
errors are rare at first — and collapses once the replay penalty
dominates; the optimum sits beyond the conventional signoff point.

We compute the curve from SSTA slack distributions: each endpoint's
slack shifts linearly with the period, its failure probability comes
from the Gaussian slack model (global component integrated out, as in
:mod:`repro.core.yieldmodel`), and per-cycle error probability combines
endpoints weighted by their activity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import SignoffError
from repro.variation.ssta import SstaResult

_GLOBAL_GRID = np.linspace(-4.0, 4.0, 61)


@dataclass(frozen=True)
class ResilienceConfig:
    """Error-recovery cost model.

    Attributes:
        replay_cycles: cycles lost per detected timing error.
        endpoint_activity: probability an endpoint's critical path is
            actually exercised (with worst-case data) in a given cycle.
        detector_energy_overhead: relative energy cost of the
            error-detecting flops (paid every cycle).
    """

    replay_cycles: float = 5.0
    endpoint_activity: float = 0.05
    detector_energy_overhead: float = 0.10


def cycle_error_probability(
    ssta: SstaResult,
    period_shift: float,
    config: ResilienceConfig = ResilienceConfig(),
) -> float:
    """P(at least one timing error in a cycle) at T = T0 + period_shift.

    Slack distributions shift by ``period_shift`` (negative = faster
    clock); endpoint failures are independent given the global component.
    """
    if not ssta.endpoint_slacks:
        raise SignoffError("SSTA result has no endpoints")
    z = _GLOBAL_GRID
    weights = np.exp(-0.5 * z * z)
    weights /= weights.sum()
    log_ok = np.zeros_like(z)
    for dist in ssta.endpoint_slacks.values():
        mean = dist.mean + period_shift - z * dist.sigma_global
        local = max(dist.sigma_local, 1e-12)
        p_fail = 0.5 * (1.0 - np.array(
            [math.erf(m / (local * math.sqrt(2.0))) for m in mean]
        ))
        log_ok += np.log(np.clip(
            1.0 - config.endpoint_activity * p_fail, 1e-300, 1.0
        ))
    return float(min(max(1.0 - (weights * np.exp(log_ok)).sum(), 0.0), 1.0))


@dataclass
class OperatingPoint:
    """One point of the resilience curve."""

    period: float
    error_probability: float
    throughput: float  # useful operations per ns
    energy_per_op: float  # relative units

    @property
    def is_error_free(self) -> bool:
        return self.error_probability < 1e-6


def resilience_curve(
    ssta: SstaResult,
    base_period: float,
    periods: Sequence[float],
    config: ResilienceConfig = ResilienceConfig(),
) -> List[OperatingPoint]:
    """Throughput/energy across candidate periods.

    Throughput = (1/T) / (1 + P_err * replay); energy per useful op
    carries the detector overhead and the replayed cycles.
    """
    out: List[OperatingPoint] = []
    for period in periods:
        p_err = cycle_error_probability(ssta, period - base_period, config)
        replay_factor = 1.0 + p_err * config.replay_cycles
        throughput = (1e3 / period) / replay_factor
        energy = (1.0 + config.detector_energy_overhead) * replay_factor
        out.append(
            OperatingPoint(
                period=period,
                error_probability=p_err,
                throughput=throughput,
                energy_per_op=energy,
            )
        )
    return out


def best_operating_point(curve: Sequence[OperatingPoint]) -> OperatingPoint:
    """The throughput-optimal point of a resilience curve."""
    if not curve:
        raise SignoffError("empty resilience curve")
    return max(curve, key=lambda p: p.throughput)


def worst_case_period(
    ssta: SstaResult,
    base_period: float,
    n_sigma: float = 3.0,
    flat_margin: float = 0.0,
) -> float:
    """The conventional signoff period: error-free at ``n_sigma``
    confidence *plus* the flat margins a non-resilient design must carry
    for what cannot be modeled (jitter residue, IR, model error — see
    :mod:`repro.core.margins`). Resilient designs shed most of that
    flat margin: an un-modeled slow event becomes a detected error
    instead of a silent failure."""
    shift_needed = max(
        n_sigma * dist.sigma - dist.mean
        for dist in ssta.endpoint_slacks.values()
    )
    return base_period + max(shift_needed, 0.0) + flat_margin


def resilience_gain(
    ssta: SstaResult,
    base_period: float,
    config: ResilienceConfig = ResilienceConfig(),
    flat_margin: float = 30.0,
    n_candidates: int = 25,
) -> Dict[str, float]:
    """Headline comparison: throughput at the resilient optimum vs the
    conventional worst-case signoff point (which carries ``flat_margin``
    ps of unmodelled-effects margin that resilience converts to detected
    errors)."""
    t_wc = worst_case_period(ssta, base_period, flat_margin=flat_margin)
    periods = np.linspace(0.8 * t_wc, 1.02 * t_wc, n_candidates)
    curve = resilience_curve(ssta, base_period, periods, config)
    best = best_operating_point(curve)
    conventional = (1e3 / t_wc)
    return {
        "worst_case_period": t_wc,
        "resilient_period": best.period,
        "conventional_throughput": conventional,
        "resilient_throughput": best.throughput,
        "speedup": best.throughput / conventional,
        "error_probability_at_best": best.error_probability,
    }
