"""The paper's Fig 2 old-vs-new matrix and Fig 3 care-abouts timeline,
as queryable data.

These two figures are knowledge tables rather than measurements; encoding
them makes the survey itself testable ("what entered at 20nm?") and
renders the same tables the paper prints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ReproError

#: Fig 2's OLD -> NEW aspects of timing closure.
OLD_VS_NEW: List[Tuple[str, str]] = [
    ("1 mode", "MCMM (hundreds of scenarios)"),
    ("setup-hold only", "setup-hold + noise closure + aging/AVS"),
    ("SI as afterthought", "SI delta delay in the loop"),
    ("C-worst only", "exploding BEOL corners, cross-corners, corner reduction"),
    ("NLDM", "cell-POCV / LVF variation models"),
    ("static IR", "dynamic IR-aware analysis"),
    ("flat margins everywhere", "flat margin selection / margin recovery"),
    ("independent place & opt", "place-opt interference (MinIA and friends)"),
    ("single patterning", "multi-patterning-aware layout and extraction"),
]

#: Fig 3: node (nm) at which each timing-closure care-about became
#: mainstream. Ordered by node, newest last.
CARE_ABOUTS: Dict[str, int] = {
    "noise": 90,
    "mcmm": 90,
    "max_transition": 90,
    "electromigration": 90,
    "bti_aging": 65,
    "temperature_inversion": 65,
    "aocv": 45,
    "pba": 45,
    "fixed_margin_spec": 45,
    "fill_effects": 45,
    "layout_rules": 28,
    "phys_aware_timing_eco": 28,
    "dynamic_ir": 28,
    "mol_beol_resistance": 20,
    "multi_patterning": 20,
    "min_implant": 20,
    "beol_mol_variation": 16,
    "cell_pocv": 16,
    "signoff_with_avs": 16,
    "soc_complexity": 16,
    "lvf": 10,
    "mis": 10,
}

_NODE_ORDER = [90, 65, 45, 28, 20, 16, 10, 7]


def care_abouts_at(node_nm: int) -> List[str]:
    """Every care-about active at a node (introduced at or before it)."""
    if node_nm not in _NODE_ORDER:
        raise ReproError(
            f"unknown node {node_nm}nm; known: {_NODE_ORDER}"
        )
    return sorted(
        name for name, intro in CARE_ABOUTS.items() if intro >= node_nm
    )


def new_at(node_nm: int) -> List[str]:
    """Care-abouts that *entered* at exactly this node."""
    if node_nm not in _NODE_ORDER:
        raise ReproError(f"unknown node {node_nm}nm; known: {_NODE_ORDER}")
    return sorted(name for name, intro in CARE_ABOUTS.items()
                  if intro == node_nm)


def node_of(care_about: str) -> int:
    try:
        return CARE_ABOUTS[care_about]
    except KeyError:
        raise ReproError(f"unknown care-about {care_about!r}") from None


def render_old_vs_new() -> str:
    """The Fig 2 table as text."""
    width = max(len(old) for old, _ in OLD_VS_NEW)
    lines = [f"{'OLD':<{width}}   NEW"]
    for old, new in OLD_VS_NEW:
        lines.append(f"{old:<{width}}   {new}")
    return "\n".join(lines)


def render_timeline() -> str:
    """The Fig 3 map as text: one row per care-about, columns per node."""
    header = "care-about".ljust(26) + "".join(
        f"{n:>6}" for n in _NODE_ORDER
    )
    lines = [header]
    for name, intro in sorted(CARE_ABOUTS.items(), key=lambda kv: -kv[1]):
        row = name.ljust(26)
        for node in _NODE_ORDER:
            row += f"{'  x   ' if node <= intro else '      '}"
        lines.append(row.rstrip())
    return "\n".join(lines)
