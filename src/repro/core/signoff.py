"""The signoff-criteria engine.

A signoff *policy* bundles what the paper calls the central engineering
team's highest-leverage decisions: which scenario matrix to run, what
flat margins to apply, whether setup is signed off at worst-case corners
or at typical-with-AVS, and whether tightened BEOL corners are in play.
``evaluate`` renders a verdict with the full evidence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.aging.avs import AvsController
from repro.errors import SignoffError
from repro.netlist.design import Design
from repro.obs import metrics as obs_metrics
from repro.obs import tracing as obs_tracing
from repro.sta.constraints import Constraints
from repro.sta.mcmm import McmmResult, Scenario, ScenarioSet
from repro.core.margins import MarginStackup


@dataclass
class SignoffPolicy:
    """How signoff is decided."""

    scenarios: ScenarioSet
    margins: MarginStackup = field(default_factory=MarginStackup)
    #: "worst_corner": classic — setup must pass every scenario with the
    #: full flat margin. "typical_avs": the new goal post — setup signs
    #: off at typical with reduced margin, and AVS headroom covers the
    #: slow-corner gap.
    setup_style: str = "worst_corner"
    avs_v_max: float = 1.0

    def __post_init__(self):
        if self.setup_style not in ("worst_corner", "typical_avs"):
            raise SignoffError(f"unknown setup style {self.setup_style!r}")

    def setup_margin(self) -> float:
        if self.setup_style == "typical_avs":
            return self.margins.with_avs().rss_total()
        return self.margins.linear_total()


@dataclass
class SignoffVerdict:
    """The outcome of a signoff evaluation."""

    passed: bool
    setup_wns: float
    hold_wns: float
    margin_applied: float
    worst_scenario: str
    scenario_wns: Dict[str, float]
    avs_voltage: Optional[float] = None
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        lines = [
            f"signoff: {'PASS' if self.passed else 'FAIL'}",
            f"  setup WNS {self.setup_wns:9.2f} ps "
            f"(margin {self.margin_applied:.1f} ps applied)",
            f"  hold  WNS {self.hold_wns:9.2f} ps",
            f"  worst scenario: {self.worst_scenario}",
        ]
        if self.avs_voltage is not None:
            lines.append(f"  AVS guarantee voltage: {self.avs_voltage:.3f} V")
        lines += [f"  note: {n}" for n in self.notes]
        return "\n".join(lines)


def evaluate_signoff(
    design: Design,
    policy: SignoffPolicy,
) -> SignoffVerdict:
    """Run the policy's scenario matrix and render a verdict.

    ``worst_corner``: setup WNS (over all scenarios) minus the linear
    flat margin must be >= 0, hold WNS >= 0.

    ``typical_avs``: setup is judged at the scenario named closest to
    typical with the reduced (AVS, RSS) margin; the slow-corner gap must
    be coverable by AVS within the rail range — verified by actually
    running the AVS controller against the worst scenario's conditions.
    """
    with obs_tracing.span("evaluate_signoff", design=design.name,
                          style=policy.setup_style) as sp:
        verdict = _evaluate(design, policy)
        sp.set(passed=verdict.passed)
    obs_metrics.inc("signoff.verdicts")
    obs_metrics.inc("signoff.verdicts.passed" if verdict.passed
                    else "signoff.verdicts.failed")
    return verdict


def _evaluate(design: Design, policy: SignoffPolicy) -> SignoffVerdict:
    result: McmmResult = policy.scenarios.run(design)
    margin = policy.setup_margin()
    scenario_wns = {n: r.wns("setup") for n, r in result.reports.items()}
    hold_wns = result.merged_wns("hold")
    worst = result.worst_scenario("setup")
    notes: List[str] = []

    if policy.setup_style == "worst_corner":
        setup_wns = result.merged_wns("setup") - margin
        passed = setup_wns >= 0.0 and hold_wns >= 0.0
        return SignoffVerdict(
            passed=passed,
            setup_wns=setup_wns,
            hold_wns=hold_wns,
            margin_applied=margin,
            worst_scenario=worst,
            scenario_wns=scenario_wns,
        )

    # typical_avs
    typical_name = _most_typical(policy.scenarios)
    typ_wns = scenario_wns[typical_name] - margin
    worst_scenario = min(policy.scenarios.scenarios,
                         key=lambda s: scenario_wns[s.name])
    avs = AvsController(
        design=design,
        constraints=worst_scenario.constraints,
        process=worst_scenario.library.process,
        temp_c=worst_scenario.temp_c or worst_scenario.library.temp_c,
        v_max=policy.avs_v_max,
    )
    try:
        v_needed = avs.voltage_for(0.0)
        avs_ok = True
        notes.append(
            f"slow-corner ({worst_scenario.name}) closes at {v_needed:.3f} V"
        )
    except SignoffError:
        v_needed = None
        avs_ok = False
        notes.append(
            f"AVS cannot close {worst_scenario.name} within "
            f"{policy.avs_v_max} V"
        )
    passed = typ_wns >= 0.0 and hold_wns >= 0.0 and avs_ok
    return SignoffVerdict(
        passed=passed,
        setup_wns=typ_wns,
        hold_wns=hold_wns,
        margin_applied=margin,
        worst_scenario=worst,
        scenario_wns=scenario_wns,
        avs_voltage=v_needed,
        notes=notes,
    )


def _most_typical(scenarios: ScenarioSet) -> str:
    """The scenario whose library is closest to tt/nominal."""
    def badness(s: Scenario) -> float:
        lib = s.library
        return (
            (0.0 if lib.process == "tt" else 1.0)
            + abs(lib.vdd - 0.8)
            + abs((s.temp_c if s.temp_c is not None else lib.temp_c) - 25.0)
            / 1000.0
        )

    return min(scenarios.scenarios, key=badness).name
