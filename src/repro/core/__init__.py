"""The timing-closure methodology layer.

Everything below this package is substrate (simulator, libraries,
parasitics, STA, optimizations); this package is the paper's subject
matter itself:

- :mod:`repro.core.closure` — the Fig 1 iterative closure loop with the
  MacDonald fix ordering (Vt-swap, sizing, buffering, NDR, useful skew);
- :mod:`repro.core.fixes` — the individual fix engines;
- :mod:`repro.core.signoff` — the signoff-criteria engine (scenario
  matrices, flat margins, signoff-at-typical with AVS);
- :mod:`repro.core.tbc` — tightened BEOL corners and the Fig 8 alpha
  pessimism metric;
- :mod:`repro.core.margins` — the flat-margin stackup and its recovery;
- :mod:`repro.core.history` — the Fig 2 old-vs-new matrix and Fig 3
  care-abouts timeline as queryable data.
"""

from repro.core.closure import ClosureConfig, ClosureEngine, ClosureReport
from repro.core.margins import MarginStackup
from repro.core.signoff import SignoffPolicy, evaluate_signoff
from repro.core.yieldmodel import design_yield, goalpost_sweep

__all__ = [
    "ClosureConfig",
    "ClosureEngine",
    "ClosureReport",
    "MarginStackup",
    "SignoffPolicy",
    "evaluate_signoff",
    "design_yield",
    "goalpost_sweep",
]
