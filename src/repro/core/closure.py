"""The iterative timing-closure loop (the paper's Fig 1, executable).

Each iteration: run STA, break down the failures, apply the fix list in
the MacDonald ordering — simplest (least disruptive) first — then re-run
and record the trajectory. The loop stops when clean, when the iteration
budget (schedule!) runs out, or when an iteration makes no edits.

The footnote of Fig 1 maps iterations to schedule: "three weeks for the
final pass permits five three-day repair and signoff analysis
iterations" — hence the default ``max_iterations=5`` and the
``days_per_iteration`` bookkeeping in the report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.beol.corners import BeolCorner
from repro.beol.stack import BeolStack
from repro.errors import ClosureError
from repro.liberty.library import Library
from repro.netlist.design import Design
from repro.netlist.transforms import Edit
from repro.sta.analysis import STA
from repro.sta.constraints import Constraints
from repro.sta.propagation import Derates
from repro.sta.reports import TimingReport
from repro.core.fixes import FIX_ENGINES, FixContext

DEFAULT_FIX_ORDER = (
    "vt_swap",
    "sizing",
    "buffering",
    "ndr",
    "useful_skew",
    "slew",
    "hold_buffering",
)


@dataclass
class ClosureConfig:
    """Closure-loop policy knobs."""

    max_iterations: int = 5
    fix_order: Sequence[str] = DEFAULT_FIX_ORDER
    budget_per_fix: int = 12
    endpoint_limit: int = 10
    days_per_iteration: float = 3.0
    stop_when_clean: bool = True

    def __post_init__(self):
        unknown = [f for f in self.fix_order if f not in FIX_ENGINES]
        if unknown:
            raise ClosureError(
                f"unknown fix engines {unknown}; "
                f"available: {sorted(FIX_ENGINES)}"
            )


@dataclass
class IterationRecord:
    """One pass of the Fig 1 loop."""

    iteration: int
    wns_setup: float
    tns_setup: float
    wns_hold: float
    setup_violations: int
    hold_violations: int
    slew_violations: int
    edits: Dict[str, int] = field(default_factory=dict)
    #: Fig 1's "breakdown of timing failures" for this iteration.
    breakdown: Dict[str, int] = field(default_factory=dict)

    @property
    def total_edits(self) -> int:
        return sum(self.edits.values())


@dataclass
class ClosureReport:
    """The loop's trajectory and outcome."""

    iterations: List[IterationRecord]
    final: TimingReport
    converged: bool
    schedule_days: float

    @property
    def initial_wns(self) -> float:
        return self.iterations[0].wns_setup

    @property
    def final_wns(self) -> float:
        return self.final.wns("setup")

    def trajectory(self, metric: str = "wns_setup") -> List[float]:
        return [getattr(rec, metric) for rec in self.iterations]

    def render(self) -> str:
        lines = [
            f"{'iter':>4} {'WNS':>9} {'TNS':>11} {'#setup':>7} "
            f"{'#hold':>6} {'#slew':>6} {'edits':>6}"
        ]
        for rec in self.iterations:
            lines.append(
                f"{rec.iteration:>4} {rec.wns_setup:9.2f} "
                f"{rec.tns_setup:11.2f} {rec.setup_violations:>7} "
                f"{rec.hold_violations:>6} {rec.slew_violations:>6} "
                f"{rec.total_edits:>6}"
            )
        lines.append(
            f"final WNS {self.final_wns:.2f} ps after "
            f"{self.schedule_days:.0f} days "
            f"({'converged' if self.converged else 'NOT closed'})"
        )
        return "\n".join(lines)


class ClosureEngine:
    """Drives the Fig 1 loop for one design and scenario."""

    def __init__(
        self,
        design: Design,
        library: Library,
        constraints: Constraints,
        stack: Optional[BeolStack] = None,
        beol_corner: Optional[BeolCorner] = None,
        temp_c: Optional[float] = None,
        derates: Optional[Derates] = None,
        si_enabled: bool = False,
    ):
        self.design = design
        self.library = library
        self.constraints = constraints
        self.stack = stack
        self.beol_corner = beol_corner
        self.temp_c = temp_c
        self.derates = derates
        self.si_enabled = si_enabled

    def _run_sta(self) -> STA:
        sta = STA(
            self.design,
            self.library,
            self.constraints,
            stack=self.stack,
            beol_corner=self.beol_corner,
            temp_c=self.temp_c,
            derates=self.derates,
            si_enabled=self.si_enabled,
        )
        sta.report = sta.run()
        return sta

    def run(self, config: Optional[ClosureConfig] = None) -> ClosureReport:
        """Execute the closure loop."""
        config = config or ClosureConfig()
        records: List[IterationRecord] = []
        sta = self._run_sta()

        for iteration in range(1, config.max_iterations + 1):
            report = sta.report
            breakdown = dict(report.violation_breakdown("setup"))
            for key, count in report.violation_breakdown("hold").items():
                breakdown[f"hold_{key}"] = count
            record = IterationRecord(
                iteration=iteration,
                wns_setup=report.wns("setup"),
                tns_setup=report.tns("setup"),
                wns_hold=report.wns("hold"),
                setup_violations=report.violation_count("setup"),
                hold_violations=report.violation_count("hold"),
                slew_violations=len(report.slew_violations),
                breakdown=breakdown,
            )
            records.append(record)

            clean = (
                not report.violations("setup")
                and not report.violations("hold")
                and not report.slew_violations
            )
            if clean and config.stop_when_clean:
                break

            ctx = FixContext(
                design=self.design,
                library=self.library,
                sta=sta,
                report=report,
                budget=config.budget_per_fix,
                endpoint_limit=config.endpoint_limit,
            )
            for fix_name in config.fix_order:
                edits = FIX_ENGINES[fix_name](ctx)
                if edits:
                    record.edits[fix_name] = len(edits)
            if record.total_edits == 0:
                break  # nothing left to try
            sta = self._run_sta()

        final = sta.report
        converged = (
            not final.violations("setup")
            and not final.violations("hold")
            and not final.slew_violations
        )
        return ClosureReport(
            iterations=records,
            final=final,
            converged=converged,
            schedule_days=len(records) * config.days_per_iteration,
        )
