"""The iterative timing-closure loop (the paper's Fig 1, executable).

Each iteration: run STA, break down the failures, apply the fix list in
the MacDonald ordering — simplest (least disruptive) first — then re-run
and record the trajectory. The loop stops when clean, when the iteration
budget (schedule!) runs out, or when an iteration makes no edits.

The footnote of Fig 1 maps iterations to schedule: "three weeks for the
final pass permits five three-day repair and signoff analysis
iterations" — hence the default ``max_iterations=5`` and the
``days_per_iteration`` bookkeeping in the report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.beol.corners import BeolCorner
from repro.beol.stack import BeolStack
from repro.errors import ClosureError
from repro.liberty.library import Library
from repro.netlist.design import Design
from repro.netlist.transforms import Edit
from repro.runtime.journal import RunJournal
from repro.runtime.supervisor import RetryPolicy
from repro.sta.analysis import STA
from repro.sta.constraints import Constraints
from repro.sta.propagation import Derates
from repro.sta.reports import TimingReport
from repro.core.fixes import FIX_ENGINES, FixContext

DEFAULT_FIX_ORDER = (
    "vt_swap",
    "sizing",
    "buffering",
    "ndr",
    "useful_skew",
    "slew",
    "hold_buffering",
)


@dataclass
class ClosureConfig:
    """Closure-loop policy knobs."""

    max_iterations: int = 5
    fix_order: Sequence[str] = DEFAULT_FIX_ORDER
    budget_per_fix: int = 12
    endpoint_limit: int = 10
    days_per_iteration: float = 3.0
    stop_when_clean: bool = True

    def __post_init__(self):
        unknown = [f for f in self.fix_order if f not in FIX_ENGINES]
        if unknown:
            raise ClosureError(
                f"unknown fix engines {unknown}; "
                f"available: {sorted(FIX_ENGINES)}"
            )


@dataclass
class IterationRecord:
    """One pass of the Fig 1 loop."""

    iteration: int
    wns_setup: float
    tns_setup: float
    wns_hold: float
    setup_violations: int
    hold_violations: int
    slew_violations: int
    edits: Dict[str, int] = field(default_factory=dict)
    #: Fig 1's "breakdown of timing failures" for this iteration.
    breakdown: Dict[str, int] = field(default_factory=dict)

    @property
    def total_edits(self) -> int:
        return sum(self.edits.values())


@dataclass
class ClosureReport:
    """The loop's trajectory and outcome."""

    iterations: List[IterationRecord]
    final: Optional[TimingReport]
    converged: bool
    schedule_days: float
    #: Set when the loop stopped early because STA kept failing after
    #: every retry: "ErrorClass: message". The trajectory up to the last
    #: healthy iteration is still reported (and journaled).
    aborted: Optional[str] = None
    #: Iterations replayed from a checkpoint journal instead of re-run.
    resumed_iterations: int = 0

    @property
    def initial_wns(self) -> float:
        return self.iterations[0].wns_setup

    @property
    def final_wns(self) -> float:
        if self.final is None:  # aborted before any STA pass completed
            return float("nan")
        return self.final.wns("setup")

    def trajectory(self, metric: str = "wns_setup") -> List[float]:
        return [getattr(rec, metric) for rec in self.iterations]

    def render(self) -> str:
        lines = [
            f"{'iter':>4} {'WNS':>9} {'TNS':>11} {'#setup':>7} "
            f"{'#hold':>6} {'#slew':>6} {'edits':>6}"
        ]
        for rec in self.iterations:
            lines.append(
                f"{rec.iteration:>4} {rec.wns_setup:9.2f} "
                f"{rec.tns_setup:11.2f} {rec.setup_violations:>7} "
                f"{rec.hold_violations:>6} {rec.slew_violations:>6} "
                f"{rec.total_edits:>6}"
            )
        lines.append(
            f"final WNS {self.final_wns:.2f} ps after "
            f"{self.schedule_days:.0f} days "
            f"({'converged' if self.converged else 'NOT closed'})"
        )
        if self.aborted:
            lines.append(f"ABORTED: {self.aborted}")
        if self.resumed_iterations:
            lines.append(
                f"resumed from checkpoint: {self.resumed_iterations} "
                f"iteration(s) replayed without recomputation"
            )
        return "\n".join(lines)


class ClosureEngine:
    """Drives the Fig 1 loop for one design and scenario.

    The loop is supervised: an STA pass that crashes is retried per
    ``policy`` (with backoff) before the loop gives up; a loop that
    still cannot analyze returns its partial trajectory with
    :attr:`ClosureReport.aborted` set instead of losing everything.
    With a ``journal``, each completed iteration checkpoints the
    (records, design) state to disk, and ``run(..., resume=True)``
    continues a killed run from its last completed iteration — only the
    remaining iterations recompute.
    """

    def __init__(
        self,
        design: Design,
        library: Library,
        constraints: Constraints,
        stack: Optional[BeolStack] = None,
        beol_corner: Optional[BeolCorner] = None,
        temp_c: Optional[float] = None,
        derates: Optional[Derates] = None,
        si_enabled: bool = False,
        policy: Optional[RetryPolicy] = None,
        journal: Optional[RunJournal] = None,
        fault_injector=None,
    ):
        self.design = design
        self.library = library
        self.constraints = constraints
        self.stack = stack
        self.beol_corner = beol_corner
        self.temp_c = temp_c
        self.derates = derates
        self.si_enabled = si_enabled
        self.policy = policy or RetryPolicy(retries=0)
        self.journal = journal
        self.fault_injector = fault_injector
        #: Successful STA passes this engine executed (the recomputation
        #: counter checkpoint/resume tests assert against).
        self.sta_runs = 0
        #: All STA attempts including failed/retried ones.
        self.sta_attempts = 0

    def _run_fingerprint(self, config: ClosureConfig) -> str:
        """Content identity of one closure run: initial netlist, library,
        constraints and loop policy. Journal entries are keyed by it, so
        a checkpoint recorded for different inputs can never be resumed
        into this run."""
        from repro.sta.scheduler import (
            constraints_fingerprint,
            design_fingerprint,
            library_fingerprint,
        )

        import hashlib

        h = hashlib.sha256()
        for part in (
            design_fingerprint(self.design),
            library_fingerprint(self.library),
            constraints_fingerprint(self.constraints),
            repr((config.max_iterations, tuple(config.fix_order),
                  config.budget_per_fix, config.endpoint_limit,
                  config.stop_when_clean, self.si_enabled)),
        ):
            h.update(part.encode())
        return h.hexdigest()

    def _run_sta(self, label: str = "sta") -> STA:
        """One supervised STA pass: retry with backoff on crashes."""
        last_error: Optional[Exception] = None
        for attempt in range(1, self.policy.max_attempts + 1):
            self.sta_attempts += 1
            try:
                if self.fault_injector is not None:
                    self.fault_injector.fire(label, attempt)
                sta = STA(
                    self.design,
                    self.library,
                    self.constraints,
                    stack=self.stack,
                    beol_corner=self.beol_corner,
                    temp_c=self.temp_c,
                    derates=self.derates,
                    si_enabled=self.si_enabled,
                )
                sta.report = sta.run()
            except Exception as exc:  # noqa: BLE001 - quarantined below
                last_error = exc
                if attempt < self.policy.max_attempts:
                    time.sleep(self.policy.delay(attempt))
                continue
            self.sta_runs += 1
            return sta
        raise ClosureError(
            f"STA failed after {self.policy.max_attempts} attempt(s): "
            f"{type(last_error).__name__}: {last_error}",
            stage=label,
            attempts=self.policy.max_attempts,
        )

    def run(self, config: Optional[ClosureConfig] = None,
            resume: bool = False) -> ClosureReport:
        """Execute the closure loop (optionally resuming a checkpoint)."""
        config = config or ClosureConfig()
        run_key = (
            self._run_fingerprint(config) if self.journal is not None
            else ""
        )
        records: List[IterationRecord] = []
        resumed = 0
        if resume and self.journal is not None:
            for it in range(config.max_iterations, 0, -1):
                payload = self.journal.lookup("closure", (run_key, it))
                if payload is not None:
                    records = list(payload["records"])
                    self.design = payload["design"]
                    # useful_skew edits constraints (per-flop clock
                    # latency), so the checkpoint carries them too.
                    if "constraints" in payload:
                        self.constraints = payload["constraints"]
                    resumed = it
                    break
        first_iteration = resumed + 1

        try:
            sta = self._run_sta(label=f"iter{first_iteration}")
        except ClosureError as exc:
            if not records:
                raise
            return ClosureReport(
                iterations=records,
                final=None,
                converged=False,
                schedule_days=len(records) * config.days_per_iteration,
                aborted=f"{type(exc).__name__}: {exc}",
                resumed_iterations=resumed,
            )
        aborted: Optional[str] = None

        for iteration in range(first_iteration, config.max_iterations + 1):
            report = sta.report
            breakdown = dict(report.violation_breakdown("setup"))
            for key, count in report.violation_breakdown("hold").items():
                breakdown[f"hold_{key}"] = count
            record = IterationRecord(
                iteration=iteration,
                wns_setup=report.wns("setup"),
                tns_setup=report.tns("setup"),
                wns_hold=report.wns("hold"),
                setup_violations=report.violation_count("setup"),
                hold_violations=report.violation_count("hold"),
                slew_violations=len(report.slew_violations),
                breakdown=breakdown,
            )
            records.append(record)

            clean = (
                not report.violations("setup")
                and not report.violations("hold")
                and not report.slew_violations
            )
            if clean and config.stop_when_clean:
                break

            ctx = FixContext(
                design=self.design,
                library=self.library,
                sta=sta,
                report=report,
                budget=config.budget_per_fix,
                endpoint_limit=config.endpoint_limit,
            )
            for fix_name in config.fix_order:
                edits = FIX_ENGINES[fix_name](ctx)
                if edits:
                    record.edits[fix_name] = len(edits)
            if record.total_edits == 0:
                break  # nothing left to try
            try:
                sta = self._run_sta(label=f"iter{iteration + 1}")
            except ClosureError as exc:
                # Persistent STA failure mid-loop: keep the trajectory
                # up to the last healthy iteration instead of losing it.
                aborted = f"{type(exc).__name__}: {exc}"
                break
            if self.journal is not None:
                self.journal.record(
                    "closure", (run_key, iteration),
                    {"records": records, "design": self.design,
                     "constraints": self.constraints},
                )

        final = sta.report
        converged = aborted is None and (
            not final.violations("setup")
            and not final.violations("hold")
            and not final.slew_violations
        )
        return ClosureReport(
            iterations=records,
            final=final,
            converged=converged,
            schedule_days=len(records) * config.days_per_iteration,
            aborted=aborted,
            resumed_iterations=resumed,
        )
