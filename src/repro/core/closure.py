"""The iterative timing-closure loop (the paper's Fig 1, executable).

Each iteration: run STA, break down the failures, apply the fix list in
the MacDonald ordering — simplest (least disruptive) first — then re-time
and record the trajectory. The loop stops when clean, when the iteration
budget (schedule!) runs out, or when an iteration makes no edits.

The timer side is *incremental* by default (the paper's Comment 1:
physically-aware ECO tooling). The fix order is grouped into stages of
contiguous engines: a stage whose edits all preserve instance
footprints (Vt-swap, sizing) re-times only the edited cells' downstream
cones through a warm :class:`~repro.sta.incremental.IncrementalTimer`;
a stage that changes topology or constraints (buffering, NDR, useful
skew) falls back to the timer's honest full update. Because cone
updates are cheap, the loop re-times *between* stages, so each engine
sees fresh timing instead of compounding fixes on stale slack. One
registered timer per scenario lives in a :class:`~repro.sta.scheduler.
ScenarioTimerPool` and warm-starts across iterations instead of
re-binding a fresh STA each pass; ``ClosureConfig(timing="full")``
runs the same staged loop but rebuilds a fresh STA at every stage
boundary (the benchmark baseline).

The footnote of Fig 1 maps iterations to schedule: "three weeks for the
final pass permits five three-day repair and signoff analysis
iterations" — hence the default ``max_iterations=5`` and the
``days_per_iteration`` bookkeeping in the report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.beol.corners import BeolCorner
from repro.beol.stack import BeolStack
from repro.errors import ClosureError
from repro.liberty.library import Library
from repro.netlist.design import Design
from repro.netlist.transforms import Edit
from repro.obs import metrics as obs_metrics
from repro.obs import tracing as obs_tracing
from repro.obs.tracing import Tracer
from repro.runtime.journal import RunJournal
from repro.runtime.supervisor import RetryPolicy
from repro.sta.analysis import STA
from repro.sta.constraints import Constraints
from repro.sta.incremental import TIMER_STATE_VERSION
from repro.sta.kernel import ENGINES
from repro.sta.propagation import Derates
from repro.sta.reports import TimingReport
from repro.sta.scheduler import ScenarioTimerPool
from repro.core.fixes import (
    FIX_ENGINES,
    FOOTPRINT_PRESERVING_ENGINES,
    FixContext,
    classify_edits,
)

DEFAULT_FIX_ORDER = (
    "vt_swap",
    "sizing",
    "buffering",
    "ndr",
    "useful_skew",
    "slew",
    "hold_buffering",
)

#: Valid ``ClosureConfig.timing`` values.
TIMING_MODES = ("incremental", "full")

#: Histogram buckets for per-stage retime wall clocks, seconds.
WALL_BUCKETS_S = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0)


def fix_stages(fix_order: Sequence[str]) -> List[Tuple[str, ...]]:
    """Group a fix order into contiguous retime stages.

    Consecutive footprint-preserving engines share a stage (one cone
    retime absorbs all their swaps); a run of topology-changing engines
    forms its own stage (one full retime absorbs it). The loop re-times
    at every stage boundary, so the grouping controls both how often
    timing refreshes and which retimes can stay cone-limited.
    """
    stages: List[List[str]] = []
    last_fp: Optional[bool] = None
    for name in fix_order:
        fp = name in FOOTPRINT_PRESERVING_ENGINES
        if stages and fp == last_fp:
            stages[-1].append(name)
        else:
            stages.append([name])
        last_fp = fp
    return [tuple(stage) for stage in stages]


@dataclass
class ClosureConfig:
    """Closure-loop policy knobs."""

    max_iterations: int = 5
    fix_order: Sequence[str] = DEFAULT_FIX_ORDER
    budget_per_fix: int = 12
    endpoint_limit: int = 10
    days_per_iteration: float = 3.0
    stop_when_clean: bool = True
    #: "incremental" re-times cone-limited through a warm timer where the
    #: edit set allows it; "full" rebuilds a fresh STA every iteration.
    #: Both modes produce identical trajectories and final reports — the
    #: equivalence suite pins that — so the mode is deliberately *not*
    #: part of the checkpoint fingerprint: either mode may resume a
    #: checkpoint the other wrote.
    timing: str = "incremental"
    #: "reference" walks the object graph; "vector" times full passes
    #: through the compiled array kernel (:mod:`repro.sta.kernel`),
    #: falling back to reference propagation for cone-limited retimes
    #: and scenarios that will not compile. Like ``timing``, the engine
    #: produces identical reports and is excluded from the checkpoint
    #: fingerprint.
    engine: str = "reference"

    def __post_init__(self):
        unknown = [f for f in self.fix_order if f not in FIX_ENGINES]
        if unknown:
            raise ClosureError(
                f"unknown fix engines {unknown}; "
                f"available: {sorted(FIX_ENGINES)}"
            )
        if self.timing not in TIMING_MODES:
            raise ClosureError(
                f"unknown timing mode {self.timing!r}; "
                f"pick from {TIMING_MODES}"
            )
        if self.engine not in ENGINES:
            raise ClosureError(
                f"unknown engine {self.engine!r}; pick from {ENGINES}"
            )


@dataclass
class IterationRecord:
    """One pass of the Fig 1 loop."""

    iteration: int
    wns_setup: float
    tns_setup: float
    wns_hold: float
    setup_violations: int
    hold_violations: int
    slew_violations: int
    edits: Dict[str, int] = field(default_factory=dict)
    #: Fig 1's "breakdown of timing failures" for this iteration.
    breakdown: Dict[str, int] = field(default_factory=dict)
    #: How this iteration's stage edits were re-timed: "incremental"
    #: (cone updates on the warm timer only), "full" (warm timer's full
    #: update only), "mixed" (both kinds of stage), "rebuild" (fresh
    #: STA per stage, the timing="full" mode), or "" when the loop
    #: stopped here (clean / out of edits / aborted).
    retime_engine: str = ""
    #: Cone retimes / full retimes absorbed this iteration's stages.
    incremental_retimes: int = 0
    full_retimes: int = 0
    #: Pins re-propagated across this iteration's cone retimes.
    cone_size: int = 0
    #: Mean cone share of the timing-pin count over this iteration's
    #: incremental retimes (0.0 when none ran).
    cone_fraction: float = 0.0
    #: Wall-clock of the retimes absorbing this iteration's edits, s.
    retime_s: float = 0.0

    @property
    def total_edits(self) -> int:
        return sum(self.edits.values())


@dataclass
class ClosureReport:
    """The loop's trajectory and outcome."""

    iterations: List[IterationRecord]
    final: Optional[TimingReport]
    converged: bool
    schedule_days: float
    #: Set when the loop stopped early because STA kept failing after
    #: every retry: "ErrorClass: message". The trajectory up to the last
    #: healthy iteration is still reported (and journaled).
    aborted: Optional[str] = None
    #: Iterations replayed from a checkpoint journal instead of re-run.
    resumed_iterations: int = 0
    #: Retimes served cone-limited by the warm incremental timer.
    incremental_retimes: int = 0
    #: Retimes that re-ran fully (topology change, fallback, or
    #: timing="full" rebuilds).
    full_retimes: int = 0
    #: incremental_retimes / (incremental_retimes + full_retimes).
    reuse_ratio: float = 0.0
    #: Total wall-clock spent inside timing updates (not fix engines), s.
    timing_wall_s: float = 0.0
    #: Timing-graph pin count of the design under closure.
    pin_count: int = 0

    @property
    def initial_wns(self) -> float:
        return self.iterations[0].wns_setup

    @property
    def final_wns(self) -> float:
        if self.final is None:  # aborted before any STA pass completed
            return float("nan")
        return self.final.wns("setup")

    @property
    def mean_cone_fraction(self) -> float:
        """Mean cone share of the incremental retimes (0.0 when none)."""
        total = sum(rec.incremental_retimes for rec in self.iterations)
        if not total:
            return 0.0
        weighted = sum(
            rec.cone_fraction * rec.incremental_retimes
            for rec in self.iterations
        )
        return weighted / total

    def trajectory(self, metric: str = "wns_setup") -> List[float]:
        return [getattr(rec, metric) for rec in self.iterations]

    def _retime_label(self, rec: IterationRecord) -> str:
        if rec.incremental_retimes:
            cone = (f"cone {rec.cone_size}p "
                    f"({rec.cone_fraction:.0%})")
            if rec.full_retimes:
                cone += f" + {rec.full_retimes} full"
            return cone
        return rec.retime_engine or "-"

    def render(self) -> str:
        lines = [
            f"{'iter':>4} {'WNS':>9} {'TNS':>11} {'#setup':>7} "
            f"{'#hold':>6} {'#slew':>6} {'edits':>6}  retime"
        ]
        for rec in self.iterations:
            lines.append(
                f"{rec.iteration:>4} {rec.wns_setup:9.2f} "
                f"{rec.tns_setup:11.2f} {rec.setup_violations:>7} "
                f"{rec.hold_violations:>6} {rec.slew_violations:>6} "
                f"{rec.total_edits:>6}  {self._retime_label(rec)}"
            )
        lines.append(
            f"final WNS {self.final_wns:.2f} ps after "
            f"{self.schedule_days:.0f} days "
            f"({'converged' if self.converged else 'NOT closed'})"
        )
        retimes = self.incremental_retimes + self.full_retimes
        if retimes:
            lines.append(
                f"timing: {self.incremental_retimes} incremental / "
                f"{self.full_retimes} full retime(s), reuse "
                f"{self.reuse_ratio:.0%}, mean cone "
                f"{self.mean_cone_fraction:.1%} of {self.pin_count} pins, "
                f"{self.timing_wall_s:.2f} s in timing"
            )
        if self.aborted:
            lines.append(f"ABORTED: {self.aborted}")
        if self.resumed_iterations:
            lines.append(
                f"resumed from checkpoint: {self.resumed_iterations} "
                f"iteration(s) replayed without recomputation"
            )
        return "\n".join(lines)


class ClosureEngine:
    """Drives the Fig 1 loop for one design and scenario.

    The loop is supervised: an STA pass that crashes is retried per
    ``policy`` (with backoff) before the loop gives up; a loop that
    still cannot analyze returns its partial trajectory with
    :attr:`ClosureReport.aborted` set instead of losing everything.
    With a ``journal``, each completed iteration checkpoints the
    (records, design) state to disk, and ``run(..., resume=True)``
    continues a killed run from its last completed iteration — only the
    remaining iterations recompute. Checkpoints stamp the incremental
    timer's state version; since live timer state is never serialized,
    a resume always rebuilds its timer from a full STA pass.
    """

    def __init__(
        self,
        design: Design,
        library: Library,
        constraints: Constraints,
        stack: Optional[BeolStack] = None,
        beol_corner: Optional[BeolCorner] = None,
        temp_c: Optional[float] = None,
        derates: Optional[Derates] = None,
        si_enabled: bool = False,
        policy: Optional[RetryPolicy] = None,
        journal: Optional[RunJournal] = None,
        fault_injector=None,
    ):
        self.design = design
        self.library = library
        self.constraints = constraints
        self.stack = stack
        self.beol_corner = beol_corner
        self.temp_c = temp_c
        self.derates = derates
        self.si_enabled = si_enabled
        self.policy = policy or RetryPolicy(retries=0)
        self.journal = journal
        self.fault_injector = fault_injector
        #: Warm per-scenario incremental timers (timing="incremental").
        self.timer_pool = ScenarioTimerPool()
        #: Successful timing passes this engine executed — fresh STA
        #: builds *and* warm retimes (the recomputation counter
        #: checkpoint/resume tests assert against).
        self.sta_runs = 0
        #: All timing attempts including failed/retried ones.
        self.sta_attempts = 0

    def _run_fingerprint(self, config: ClosureConfig) -> str:
        """Content identity of one closure run: initial netlist, library,
        constraints and loop policy. Journal entries are keyed by it, so
        a checkpoint recorded for different inputs can never be resumed
        into this run. The timing mode is excluded on purpose —
        incremental and full retiming are equivalent by contract, so
        either may resume the other's checkpoint."""
        from repro.sta.scheduler import (
            constraints_fingerprint,
            design_fingerprint,
            library_fingerprint,
        )

        import hashlib

        h = hashlib.sha256()
        for part in (
            design_fingerprint(self.design),
            library_fingerprint(self.library),
            constraints_fingerprint(self.constraints),
            repr((config.max_iterations, tuple(config.fix_order),
                  config.budget_per_fix, config.endpoint_limit,
                  config.stop_when_clean, self.si_enabled)),
        ):
            h.update(part.encode())
        return h.hexdigest()

    def _build_sta(self) -> STA:
        """One unsupervised STA construction over the current state."""
        return STA(
            self.design,
            self.library,
            self.constraints,
            stack=self.stack,
            beol_corner=self.beol_corner,
            temp_c=self.temp_c,
            derates=self.derates,
            si_enabled=self.si_enabled,
        )

    def _run_sta(self, label: str = "sta") -> STA:
        """One supervised STA pass: retry with backoff on crashes."""
        last_error: Optional[Exception] = None
        with obs_tracing.span("sta_build", label=label) as build_span:
            for attempt in range(1, self.policy.max_attempts + 1):
                self.sta_attempts += 1
                try:
                    if self.fault_injector is not None:
                        self.fault_injector.fire(label, attempt)
                    sta = self._build_sta()
                    sta.report = self.timer_pool._full_run(sta, label)
                except Exception as exc:  # noqa: BLE001 - quarantined below
                    last_error = exc
                    if attempt < self.policy.max_attempts:
                        time.sleep(self.policy.delay(attempt))
                    continue
                self.sta_runs += 1
                build_span.set(attempts=attempt)
                return sta
        raise ClosureError(
            f"STA failed after {self.policy.max_attempts} attempt(s): "
            f"{type(last_error).__name__}: {last_error}",
            stage=label,
            attempts=self.policy.max_attempts,
        )

    def _retime(
        self,
        scenario_name: str,
        swapped: Sequence[str],
        topology_changed: bool,
        label: str,
    ) -> Tuple[TimingReport, str]:
        """One supervised warm retime through the timer pool.

        Returns ``(report, engine_used)`` where ``engine_used`` is
        "incremental" or "full". A crashed attempt discards the warm
        timer (its mid-update state is not trusted) so the retry
        rebuilds from scratch; exhaustion raises :class:`ClosureError`
        exactly like :meth:`_run_sta`.
        """
        pool = self.timer_pool
        last_error: Optional[Exception] = None
        for attempt in range(1, self.policy.max_attempts + 1):
            self.sta_attempts += 1
            try:
                if self.fault_injector is not None:
                    self.fault_injector.fire(label, attempt)
                before = pool.incremental_retimes
                report = pool.retime(
                    scenario_name,
                    edited_instances=swapped,
                    topology_changed=topology_changed,
                    build=self._build_sta,
                )
            except Exception as exc:  # noqa: BLE001 - quarantined below
                last_error = exc
                pool.discard(scenario_name)
                if attempt < self.policy.max_attempts:
                    time.sleep(self.policy.delay(attempt))
                continue
            self.sta_runs += 1
            engine = ("incremental" if pool.incremental_retimes > before
                      else "full")
            return report, engine
        raise ClosureError(
            f"STA failed after {self.policy.max_attempts} attempt(s): "
            f"{type(last_error).__name__}: {last_error}",
            stage=label,
            attempts=self.policy.max_attempts,
        )

    def run(self, config: Optional[ClosureConfig] = None,
            resume: bool = False) -> ClosureReport:
        """Execute the closure loop (optionally resuming a checkpoint).

        The loop always records into a tracer: the active one when
        observability is armed (CLI ``--trace``, or an enclosing
        :func:`repro.obs.tracing.use` block), else a private throwaway.
        The trajectory's timing fields (``retime_s``,
        ``timing_wall_s``) are backed by those spans, so the report is
        identical either way — armed tracing just also exports the tree.
        """
        tracer = obs_tracing.active_tracer()
        if tracer is None:
            tracer = Tracer()
        with obs_tracing.use(tracer):
            return self._run_traced(config or ClosureConfig(), resume)

    def _run_traced(self, config: ClosureConfig,
                    resume: bool) -> ClosureReport:
        incremental = config.timing == "incremental"
        # The engine is a per-run choice (it lives on the config, like
        # the timing mode), but the pool is per-engine state: point it
        # at this run's engine so fresh builds, warm adoptions and
        # full-mode passes all time through the same path.
        self.timer_pool.engine = config.engine
        scenario_name = self.library.name
        run_key = (
            self._run_fingerprint(config) if self.journal is not None
            else ""
        )
        with obs_tracing.span(
            "closure", design=self.design.name, scenario=scenario_name,
            timing=config.timing, max_iterations=config.max_iterations,
        ):
            records: List[IterationRecord] = []
            resumed = 0
            if resume and self.journal is not None:
                for it in range(config.max_iterations, 0, -1):
                    payload = self.journal.lookup("closure", (run_key, it))
                    if payload is not None:
                        records = list(payload["records"])
                        self.design = payload["design"]
                        # useful_skew edits constraints (per-flop clock
                        # latency), so the checkpoint carries them too.
                        if "constraints" in payload:
                            self.constraints = payload["constraints"]
                        # Live timer state is never checkpointed — only
                        # its version stamp — so whatever the stamp says,
                        # resume falls back to a full rebuild below. A
                        # future state snapshot would be trusted only on
                        # an exact match.
                        resumed = it
                        break
            first_iteration = resumed + 1

            try:
                sta = self._run_sta(label=f"iter{first_iteration}")
            except ClosureError as exc:
                if not records:
                    raise
                return ClosureReport(
                    iterations=records,
                    final=None,
                    converged=False,
                    schedule_days=len(records) * config.days_per_iteration,
                    aborted=f"{type(exc).__name__}: {exc}",
                    resumed_iterations=resumed,
                )
            if incremental:
                # One registered timer per scenario, warm across
                # iterations.
                self.timer_pool.discard(scenario_name)
                self.timer_pool.adopt(scenario_name, sta)
            aborted: Optional[str] = None
            timing_wall_s = 0.0
            incremental_retimes = 0
            full_retimes = 0

            for iteration in range(first_iteration,
                                   config.max_iterations + 1):
                with obs_tracing.span("iteration", iteration=iteration) \
                        as iteration_span:
                    sta, record, aborted, clean = self._run_iteration(
                        sta, config, records, iteration, scenario_name,
                        incremental, iteration_span,
                    )
                obs_metrics.inc("closure.iterations")
                obs_metrics.inc("closure.edits", record.total_edits)
                if clean and config.stop_when_clean:
                    break
                if record.total_edits == 0:
                    break  # nothing left to try
                timing_wall_s += record.retime_s
                incremental_retimes += record.incremental_retimes
                full_retimes += record.full_retimes
                if aborted is not None:
                    break
                if self.journal is not None:
                    self.journal.record(
                        "closure", (run_key, iteration),
                        {"records": records, "design": self.design,
                         "constraints": self.constraints,
                         "timer_state": {"version": TIMER_STATE_VERSION}},
                    )

            final = sta.report
            converged = aborted is None and (
                not final.violations("setup")
                and not final.violations("hold")
                and not final.slew_violations
            )
            retimes = incremental_retimes + full_retimes
            return ClosureReport(
                iterations=records,
                final=final,
                converged=converged,
                schedule_days=len(records) * config.days_per_iteration,
                aborted=aborted,
                resumed_iterations=resumed,
                incremental_retimes=incremental_retimes,
                full_retimes=full_retimes,
                reuse_ratio=(incremental_retimes / retimes
                             if retimes else 0.0),
                timing_wall_s=timing_wall_s,
                pin_count=len(sta.graph.topo_order),
            )

    def _run_iteration(
        self,
        sta: STA,
        config: ClosureConfig,
        records: List[IterationRecord],
        iteration: int,
        scenario_name: str,
        incremental: bool,
        iteration_span,
    ) -> Tuple[STA, IterationRecord, Optional[str], bool]:
        """One pass of the Fig 1 loop: breakdown, fix stages, retimes.

        Returns ``(sta, record, aborted, clean)``. Stage wall-clocks
        come from the ``retime`` spans (PR 3's bespoke
        ``perf_counter`` bookkeeping now reads obs spans), so
        ``record.retime_s`` equals the summed retime-span durations.
        """
        report = sta.report
        breakdown = dict(report.violation_breakdown("setup"))
        for key, count in report.violation_breakdown("hold").items():
            breakdown[f"hold_{key}"] = count
        record = IterationRecord(
            iteration=iteration,
            wns_setup=report.wns("setup"),
            tns_setup=report.tns("setup"),
            wns_hold=report.wns("hold"),
            setup_violations=report.violation_count("setup"),
            hold_violations=report.violation_count("hold"),
            slew_violations=len(report.slew_violations),
            breakdown=breakdown,
        )
        records.append(record)
        iteration_span.set(wns_setup=record.wns_setup)

        clean = (
            not report.violations("setup")
            and not report.violations("hold")
            and not report.slew_violations
        )
        if clean and config.stop_when_clean:
            return sta, record, None, True

        aborted: Optional[str] = None
        cone_fractions: List[float] = []
        for stage in fix_stages(config.fix_order):
            with obs_tracing.span("stage", engines="+".join(stage)):
                # Each stage gets a fresh view: the previous stage's
                # retime already refreshed sta.report, so engines never
                # compound fixes on stale slack.
                ctx = FixContext(
                    design=self.design,
                    library=self.library,
                    sta=sta,
                    report=sta.report,
                    budget=config.budget_per_fix,
                    endpoint_limit=config.endpoint_limit,
                )
                stage_edits: List[Edit] = []
                for fix_name in stage:
                    with obs_tracing.span("fix", engine=fix_name) \
                            as fix_span:
                        edits = FIX_ENGINES[fix_name](ctx)
                        fix_span.set(edits=len(edits))
                    if edits:
                        record.edits[fix_name] = len(edits)
                        stage_edits.extend(edits)
                if not stage_edits:
                    continue
                swapped, topology_changed = classify_edits(stage_edits)
                with obs_tracing.span(
                    "retime", edits=len(stage_edits),
                    topology_changed=topology_changed,
                ) as retime_span:
                    try:
                        if incremental:
                            _, engine_used = self._retime(
                                scenario_name, swapped, topology_changed,
                                label=f"iter{iteration + 1}",
                            )
                            sta = self.timer_pool.get(scenario_name).sta
                        else:
                            sta = self._run_sta(
                                label=f"iter{iteration + 1}"
                            )
                            engine_used = "rebuild"
                    except ClosureError as exc:
                        # Persistent STA failure mid-loop: keep the
                        # trajectory up to the last healthy iteration
                        # instead of losing everything.
                        aborted = f"{type(exc).__name__}: {exc}"
                if aborted is not None:
                    break
                retime_span.set(engine=engine_used)
                record.retime_s += retime_span.duration_s
                obs_metrics.observe("closure.retime_wall_s",
                                    retime_span.duration_s,
                                    WALL_BUCKETS_S)
                pin_count = len(sta.graph.topo_order)
                if engine_used == "incremental":
                    record.incremental_retimes += 1
                    timer = self.timer_pool.get(scenario_name)
                    record.cone_size += timer.last_cone_size
                    cone_fractions.append(
                        timer.last_cone_size / pin_count
                        if pin_count else 0.0
                    )
                else:
                    record.full_retimes += 1
        if cone_fractions:
            record.cone_fraction = (
                sum(cone_fractions) / len(cone_fractions)
            )
        if record.incremental_retimes and record.full_retimes:
            record.retime_engine = "mixed"
        elif record.incremental_retimes:
            record.retime_engine = "incremental"
        elif record.full_retimes:
            record.retime_engine = "full" if incremental else "rebuild"
        return sta, record, aborted, False
