"""Useful skew: the last fix in the Fig 1 ordering.

Runs the LP scheduler of :mod:`repro.cts.useful_skew` over the report's
flop-to-flop stages and merges the chosen offsets into the constraint
set's per-flop clock latencies. Unlike the netlist fixes this one edits
*constraints*, so its edits are reported with a dedicated kind.
"""

from __future__ import annotations

from typing import List

from repro.cts.useful_skew import schedule_useful_skew, stages_from_report
from repro.netlist.transforms import Edit
from repro.core.fixes.context import FixContext


def useful_skew_fix(ctx: FixContext, max_adjust: float = 15.0) -> List[Edit]:
    """Schedule and apply useful skew when setup violations remain.

    Conservative by design: small per-iteration adjustments, *all*
    endpoints considered (every flop pair visible to the report is
    constrained in the LP), and a standing hold guard — a stage pair not
    among any endpoint's worst path is still protected by the guard
    because offsets are bounded by ``max_adjust``.
    """
    if not ctx.report.violations("setup"):
        return []
    if ctx.report.violations("hold"):
        return []  # never trade hold risk for setup while hold is dirty
    stages = stages_from_report(ctx.sta, ctx.report, limit=10000)
    if not stages:
        return []
    result = schedule_useful_skew(stages, max_adjust=max_adjust,
                                  hold_guard=max_adjust)
    if result.improvement <= 0.5:  # not worth the clock-tree disturbance
        return []
    edits: List[Edit] = []
    latency = ctx.sta.constraints.clock_latency
    for flop, offset in result.offsets.items():
        if offset <= 0.0:
            continue
        before = latency.get(flop, 0.0)
        latency[flop] = before + offset
        edits.append(
            Edit("useful_skew", flop, f"{before:.1f}", f"{latency[flop]:.1f}")
        )
    return edits
