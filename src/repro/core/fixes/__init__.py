"""Fix engines for the closure loop.

Each engine implements one entry of the Fig 1 fix list and shares the
:class:`FixContext` interface: examine the current STA results, mutate
the design (or constraints), and report what it did. The closure loop
applies them cheapest-first, exactly as [MacDonald 2010] recommends:
Vt-swap, then gate sizing, then buffer insertion, then non-default
routing, then useful skew.
"""

from repro.core.fixes.context import FixContext
from repro.core.fixes.vt_swap import vt_swap_fix
from repro.core.fixes.sizing import area_recovery_fix, sizing_fix
from repro.core.fixes.buffering import (
    buffering_fix,
    hold_buffering_fix,
    slew_fix,
)
from repro.core.fixes.ndr import ndr_fix
from repro.core.fixes.skew import useful_skew_fix

FIX_ENGINES = {
    "vt_swap": vt_swap_fix,
    "sizing": sizing_fix,
    "buffering": buffering_fix,
    "ndr": ndr_fix,
    "useful_skew": useful_skew_fix,
    "hold_buffering": hold_buffering_fix,
    "slew": slew_fix,
    "area_recovery": area_recovery_fix,
}

#: Engines whose every edit preserves the instance footprint (cell swaps
#: only — same pins, same connectivity). After a pass made of these, the
#: incremental timer can re-time just the edited cells' downstream cones.
FOOTPRINT_PRESERVING_ENGINES = frozenset(
    {"vt_swap", "sizing", "area_recovery"}
)

#: Edit kinds that replace a cell in place (``target`` is the instance).
SWAP_EDIT_KINDS = frozenset({"swap", "slew_upsize"})


def classify_edits(edits):
    """Split an iteration's edits for the incremental timer.

    Returns ``(swapped_instances, topology_changed)``: the instance
    names whose cells were swapped in place, and whether any edit
    changed netlist topology, parasitics or constraints (buffering, NDR,
    useful skew) — in which case only a full re-time is honest.
    """
    swapped = []
    topology_changed = False
    for edit in edits:
        if edit.kind in SWAP_EDIT_KINDS:
            swapped.append(edit.target)
        else:
            topology_changed = True
    return swapped, topology_changed


__all__ = [
    "FixContext",
    "FIX_ENGINES",
    "FOOTPRINT_PRESERVING_ENGINES",
    "SWAP_EDIT_KINDS",
    "classify_edits",
    "vt_swap_fix",
    "sizing_fix",
    "area_recovery_fix",
    "buffering_fix",
    "hold_buffering_fix",
    "slew_fix",
    "ndr_fix",
    "useful_skew_fix",
]
