"""Fix engines for the closure loop.

Each engine implements one entry of the Fig 1 fix list and shares the
:class:`FixContext` interface: examine the current STA results, mutate
the design (or constraints), and report what it did. The closure loop
applies them cheapest-first, exactly as [MacDonald 2010] recommends:
Vt-swap, then gate sizing, then buffer insertion, then non-default
routing, then useful skew.
"""

from repro.core.fixes.context import FixContext
from repro.core.fixes.vt_swap import vt_swap_fix
from repro.core.fixes.sizing import area_recovery_fix, sizing_fix
from repro.core.fixes.buffering import (
    buffering_fix,
    hold_buffering_fix,
    slew_fix,
)
from repro.core.fixes.ndr import ndr_fix
from repro.core.fixes.skew import useful_skew_fix

FIX_ENGINES = {
    "vt_swap": vt_swap_fix,
    "sizing": sizing_fix,
    "buffering": buffering_fix,
    "ndr": ndr_fix,
    "useful_skew": useful_skew_fix,
    "hold_buffering": hold_buffering_fix,
    "slew": slew_fix,
    "area_recovery": area_recovery_fix,
}

__all__ = [
    "FixContext",
    "FIX_ENGINES",
    "vt_swap_fix",
    "sizing_fix",
    "area_recovery_fix",
    "buffering_fix",
    "hold_buffering_fix",
    "slew_fix",
    "ndr_fix",
    "useful_skew_fix",
]
