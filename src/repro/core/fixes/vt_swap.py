"""Vt-swap: the cheapest fix — no placement or routing disturbance.

Swaps cells on violating setup paths to the next faster threshold flavor
(svt -> lvt -> ulvt where available). Leakage cost is accepted; MinIA
interference (Section 2.4) is checked afterward by the closure loop when
a placement is attached.
"""

from __future__ import annotations

from typing import List

from repro.netlist.transforms import Edit, swap_vt
from repro.core.fixes.context import FixContext

_FASTER = {"uhvt": "hvt", "hvt": "svt", "svt": "lvt", "lvt": "ulvt"}


def vt_swap_fix(ctx: FixContext) -> List[Edit]:
    """Swap-down cells on violating setup paths, biggest increments first."""
    edits: List[Edit] = []
    for path in ctx.worst_setup_paths():
        if len(edits) >= ctx.budget:
            break
        for point in ctx.cell_points(path):
            if len(edits) >= ctx.budget:
                break
            inst_name = point.ref.instance
            if not ctx.may_touch(inst_name):
                continue
            cell = ctx.library.cell(ctx.design.instance(inst_name).cell_name)
            faster = _FASTER.get(cell.vt_flavor)
            if faster is None:
                continue
            edit = swap_vt(ctx.design, ctx.library, inst_name, faster)
            if edit is not None:
                edits.append(edit)
                ctx.mark(inst_name)
    return edits
