"""Gate sizing: upsize under-driven cells on violating paths.

Targets the stage with the largest delay increment whose driver is
small relative to its load — the classic drive-strength repair. Also
downsizes grossly over-sized cells on paths with huge positive slack
when invoked in recovery mode (area/power recovery is part of "relentless
margin recovery", Section 1.3).
"""

from __future__ import annotations

from typing import List

from repro.netlist.transforms import Edit, downsize, upsize
from repro.core.fixes.context import FixContext


def sizing_fix(ctx: FixContext) -> List[Edit]:
    """Upsize the heaviest stages of violating setup paths."""
    edits: List[Edit] = []
    for path in ctx.worst_setup_paths():
        if len(edits) >= ctx.budget:
            break
        for point in ctx.cell_points(path):
            if len(edits) >= ctx.budget:
                break
            inst_name = point.ref.instance
            if not ctx.may_touch(inst_name):
                continue
            edit = upsize(ctx.design, ctx.library, inst_name)
            if edit is not None:
                edits.append(edit)
                ctx.mark(inst_name)
    return edits


def area_recovery_fix(ctx: FixContext, slack_guard: float = 80.0) -> List[Edit]:
    """Downsize cells whose every endpoint has generous slack.

    A light-weight recovery pass: walks endpoints with slack above
    ``slack_guard`` and downsizes cells on those paths that were not
    touched by repair engines.
    """
    edits: List[Edit] = []
    relaxed = [
        e for e in ctx.report.endpoints("setup") if e.slack > slack_guard
    ]
    for endpoint in relaxed[: ctx.endpoint_limit]:
        if len(edits) >= ctx.budget:
            break
        path = ctx.sta.worst_path(endpoint)
        for point in ctx.cell_points(path, largest_first=False):
            if len(edits) >= ctx.budget:
                break
            inst_name = point.ref.instance
            if not ctx.may_touch(inst_name):
                continue
            edit = downsize(ctx.design, ctx.library, inst_name)
            if edit is not None:
                edits.append(edit)
                ctx.mark(inst_name)
    return edits
