"""Non-default routing: promote wire-delay-dominated nets on violating
paths to wider, higher-layer routes."""

from __future__ import annotations

from typing import List

from repro.netlist.transforms import Edit, set_ndr
from repro.core.fixes.context import FixContext

#: A net stage must contribute at least this much delay (ps) to earn NDR.
WIRE_DELAY_THRESHOLD = 3.0


def ndr_fix(ctx: FixContext) -> List[Edit]:
    """Apply NDR to the slowest wire stages of violating setup paths."""
    edits: List[Edit] = []
    for path in ctx.worst_setup_paths():
        if len(edits) >= ctx.budget:
            break
        net_points = [
            p for p in path.points
            if p.kind == "net" and not p.ref.is_port
            and p.ref not in ctx.sta.graph.clock_pins
            and p.increment >= WIRE_DELAY_THRESHOLD
        ]
        net_points.sort(key=lambda p: -p.increment)
        for point in net_points:
            if len(edits) >= ctx.budget:
                break
            inst = ctx.design.instance(point.ref.instance)
            net_name = inst.net_of(point.ref.pin)
            net = ctx.design.get_net(net_name)
            if net.ndr or net_name in ctx.touched:
                continue
            edits.append(set_ndr(ctx.design, net_name))
            ctx.touched.add(net_name)
    return edits
