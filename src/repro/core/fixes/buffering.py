"""Buffer insertion: for setup, isolate critical sinks from heavy nets;
for hold, add intentional delay on too-fast paths."""

from __future__ import annotations

from typing import List

from repro.netlist.design import PinRef
from repro.netlist.transforms import Edit, insert_buffer
from repro.core.fixes.context import FixContext

#: Nets whose fanout exceeds this are candidates for load splitting.
FANOUT_THRESHOLD = 6


#: Never move more loads behind one buffer than this.
MAX_MOVED_LOADS = 8


def pick_buffer(ctx: FixContext, moved_loads) -> str:
    """Smallest library buffer whose drive limit covers the moved load."""
    moved_cap = 0.0
    for ref in moved_loads:
        if ref.is_port:
            moved_cap += 2.0
        else:
            cell = ctx.library.cell(
                ctx.design.instance(ref.instance).cell_name
            )
            moved_cap += cell.pin(ref.pin).capacitance
    for buf in ctx.library.buffers():
        limit = buf.output_pins()[0].max_capacitance or 1e9
        if limit >= 2.0 * moved_cap:
            return buf.name
    return ctx.library.buffers()[-1].name


def buffering_fix(ctx: FixContext) -> List[Edit]:
    """Split non-critical loads off high-fanout nets on violating paths.

    The critical sink (the one on the worst path) stays on the original
    net, which loses most of its load; up to :data:`MAX_MOVED_LOADS` of
    the other sinks move behind a buffer sized for the moved load.
    """
    edits: List[Edit] = []
    for path in ctx.worst_setup_paths():
        if len(edits) >= ctx.budget:
            break
        for point in path.points:
            if len(edits) >= ctx.budget:
                break
            if point.kind != "net" or point.ref.is_port:
                continue
            if point.ref in ctx.sta.graph.clock_pins:
                continue  # clock-network nets belong to CTS, not ECO fixes
            inst = ctx.design.instance(point.ref.instance)
            net_name = inst.net_of(point.ref.pin)
            net = ctx.design.get_net(net_name)
            if net.fanout < FANOUT_THRESHOLD:
                continue
            if net_name in ctx.touched:
                continue
            critical_sink = point.ref
            others = [l for l in net.loads if l != critical_sink]
            others = others[:MAX_MOVED_LOADS]
            if not others:
                continue
            buf = pick_buffer(ctx, others)
            edit = insert_buffer(ctx.design, ctx.library, net_name, buf,
                                 load_subset=others)
            edits.append(edit)
            ctx.touched.add(net_name)
    return edits


def slew_fix(ctx: FixContext) -> List[Edit]:
    """Repair max-transition violations: upsize the violating net's
    driver; when the driver is maxed out, split half the loads behind an
    appropriately sized buffer."""
    from repro.netlist.transforms import upsize

    edits: List[Edit] = []
    for violation in ctx.report.slew_violations:
        if len(edits) >= ctx.budget:
            break
        ref = violation.ref
        if ref.is_port or ref in ctx.sta.graph.clock_pins:
            continue
        inst = ctx.design.instance(ref.instance)
        cell = ctx.library.cell(inst.cell_name)
        # Find the net whose sink (or driver) pin violates.
        pin = cell.pin(ref.pin)
        net_name = inst.net_of(ref.pin)
        from repro.liberty.cell import PinDirection

        if pin.direction is PinDirection.INPUT:
            net = ctx.design.get_net(net_name)
            if net.driver is None or net.driver.is_port:
                continue
            driver_inst = net.driver.instance
        else:
            driver_inst = ref.instance
        if driver_inst in ctx.touched:
            continue
        driver_net = ctx.design.instance(driver_inst).net_of(
            _output_pin_name(ctx, driver_inst)
        )
        if upsize(ctx.design, ctx.library, driver_inst) is not None:
            ctx.mark(driver_inst)
            edits.append(Edit("slew_upsize", driver_inst, "", ""))
            continue
        net = ctx.design.get_net(driver_net)
        if net.fanout >= 2 and driver_net not in ctx.touched:
            half = net.loads[: max(net.fanout // 2, 1)][:MAX_MOVED_LOADS]
            buf = pick_buffer(ctx, half)
            edits.append(
                insert_buffer(ctx.design, ctx.library, driver_net, buf,
                              load_subset=half)
            )
            ctx.touched.add(driver_net)
    return edits


def _output_pin_name(ctx: FixContext, instance: str) -> str:
    cell = ctx.library.cell(ctx.design.instance(instance).cell_name)
    return cell.output_pins()[0].name


def hold_buffering_fix(ctx: FixContext, setup_guard: float = 40.0) -> List[Edit]:
    """Pad hold-violating endpoints with a small buffer on the D input.

    Refuses endpoints whose setup slack would not survive the added
    delay (``setup_guard`` approximates one small-buffer delay plus
    margin) — hold fixing must never create a setup violation.
    """
    edits: List[Edit] = []
    small_buf = ctx.library.buffers()[0].name
    setup_slack = {e.endpoint: e.slack for e in ctx.report.endpoints("setup")}
    for endpoint in ctx.report.violations("hold")[: ctx.endpoint_limit]:
        if len(edits) >= ctx.budget:
            break
        if setup_slack.get(endpoint.endpoint, 0.0) < setup_guard:
            continue
        ref = endpoint.endpoint
        if ref.is_port:
            continue
        inst = ctx.design.instance(ref.instance)
        net_name = inst.net_of(ref.pin)
        if net_name in ctx.touched:
            continue
        edit = insert_buffer(ctx.design, ctx.library, net_name, small_buf,
                             load_subset=[ref])
        edits.append(edit)
        ctx.touched.add(net_name)
    return edits
