"""Shared context passed to every fix engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set

from repro.liberty.library import Library
from repro.netlist.design import Design, PinRef
from repro.sta.analysis import STA
from repro.sta.reports import TimingPath, TimingReport


@dataclass
class FixContext:
    """What a fix engine gets to work with.

    ``sta`` has been run: ``report`` and path reconstruction are valid
    against the design state at the start of the iteration. Engines
    mutate ``design`` (or ``sta.constraints``) and must record instance
    names they touched in ``touched`` so later engines in the same
    iteration avoid compounding edits on stale timing.
    """

    design: Design
    library: Library
    sta: STA
    report: TimingReport
    budget: int  # maximum edits this engine may make
    endpoint_limit: int = 10  # how many worst endpoints to examine
    touched: Set[str] = field(default_factory=set)

    def worst_setup_paths(self) -> List[TimingPath]:
        """Worst paths of the violating setup endpoints (worst first)."""
        out = []
        for endpoint in self.report.violations("setup")[: self.endpoint_limit]:
            out.append(self.sta.worst_path(endpoint))
        return out

    def worst_hold_paths(self) -> List[TimingPath]:
        out = []
        for endpoint in self.report.violations("hold")[: self.endpoint_limit]:
            out.append(self.sta.worst_path(endpoint))
        return out

    def cell_points(self, path: TimingPath, largest_first: bool = True):
        """The cell-stage points of a path, optionally by delay impact."""
        points = [p for p in path.points if p.kind == "cell" and not p.ref.is_port]
        if largest_first:
            points.sort(key=lambda p: -p.increment)
        return points

    def may_touch(self, instance: str) -> bool:
        return (
            instance not in self.touched
            and not self.design.instance(instance).dont_touch
        )

    def mark(self, instance: str) -> None:
        self.touched.add(instance)
