"""3DIC timing-closure analysis (the paper's last "future").

Section 4: "New 3DIC-specific timing closure challenges will include (i)
(partitioning, clocking interface design methodology to avoid)
variation-aware analysis across multiple die; (ii) closure of power
integrity and thermal loops with timing analysis; and (iii)
variability-mitigating optimizations."

This module provides (i) concretely: partition a flat design onto two
stacked dies, annotate the cross-die nets with TSV parasitics, apply
independent per-die process excursions as per-instance derates, and
compare the cross-die corner matrix (die A fast / die B slow, etc.)
against single-die analysis — the "variation-aware analysis across
multiple die" the paper calls out. Partition-aware mitigation
(:func:`repartition_to_avoid_cross_die_criticality`) demonstrates (iii).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import TimingError
from repro.liberty.library import Library
from repro.netlist.design import Design
from repro.sta.analysis import STA
from repro.sta.constraints import Constraints
from repro.sta.propagation import Derates
from repro.sta.reports import TimingReport


@dataclass(frozen=True)
class TsvSpec:
    """Through-silicon via electrical model."""

    resistance: float = 0.05  # kohm
    capacitance: float = 25.0  # fF

    @property
    def extra_delay_hint(self) -> float:
        """Order-of-magnitude RC of the TSV itself, ps."""
        return self.resistance * self.capacitance


def partition_by_y(design: Design, n_dies: int = 2) -> Dict[str, int]:
    """Assign instances to dies by median y (a folding partition)."""
    if n_dies != 2:
        raise TimingError("only two-die stacks are modeled")
    ys = sorted(
        inst.location[1]
        for inst in design.instances.values()
        if inst.location is not None
    )
    if not ys:
        raise TimingError("cannot partition an unplaced design")
    median = ys[len(ys) // 2]
    return {
        name: (0 if (inst.location or (0.0, 0.0))[1] < median else 1)
        for name, inst in design.instances.items()
    }


def cross_die_nets(design: Design, assignment: Dict[str, int]) -> List[str]:
    """Nets whose pins span both dies (each needs a TSV)."""
    out = []
    for net_name, net in design.nets.items():
        dies = set()
        for ref in net.pins():
            if ref.is_port:
                continue
            dies.add(assignment.get(ref.instance, 0))
        if len(dies) > 1:
            out.append(net_name)
    return out


def apply_tsv_parasitics(design: Design, assignment: Dict[str, int],
                         tsv: TsvSpec = TsvSpec()) -> int:
    """Add TSV capacitance to every cross-die net. Returns the count."""
    crossings = cross_die_nets(design, assignment)
    for net_name in crossings:
        design.get_net(net_name).extra_cap += tsv.capacitance
    return len(crossings)


def die_derates(assignment: Dict[str, int],
                die_speed: Dict[int, float]) -> Derates:
    """Per-instance derates from per-die speed factors.

    ``die_speed[die] = 1.05`` means that die's silicon is 5% slow; the
    early factor mirrors it so a fast die is also fast in hold analysis.
    """
    late = {
        inst: die_speed.get(die, 1.0) for inst, die in assignment.items()
    }
    early = dict(late)
    return Derates(instance_late=late, instance_early=early)


@dataclass
class CrossDieCornerResult:
    """One cell of the cross-die corner matrix.

    ``internal_wns_hold`` restricts hold to flop-launched endpoints —
    the paths whose launch and capture flops can sit on different dies,
    where the 3DIC-specific mismatch shows up. (Port-fed hold endpoints
    are insensitive to die speed and would mask it.)
    """

    die0_speed: float
    die1_speed: float
    wns_setup: float
    wns_hold: float
    internal_wns_hold: float = float("inf")

    @property
    def label(self) -> str:
        def tag(x: float) -> str:
            if x > 1.01:
                return "slow"
            if x < 0.99:
                return "fast"
            return "typ"

        return f"d0:{tag(self.die0_speed)}/d1:{tag(self.die1_speed)}"


def cross_die_corner_matrix(
    design: Design,
    library: Library,
    constraints: Constraints,
    assignment: Dict[str, int],
    speeds: Tuple[float, ...] = (0.95, 1.0, 1.05),
) -> List[CrossDieCornerResult]:
    """STA across every (die0 speed, die1 speed) combination.

    The diagonal is ordinary single-die corner analysis; the off-diagonal
    cells are what 3DIC adds — a fast launch die against a slow capture
    die (and vice versa) that single-die signoff never sees.
    """
    results = []
    for s0, s1 in itertools.product(speeds, repeat=2):
        derates = die_derates(assignment, {0: s0, 1: s1})
        sta = STA(design, library, constraints, derates=derates)
        report = sta.run()
        internal_hold = float("inf")
        for endpoint in report.endpoints("hold"):
            path = sta.worst_path(endpoint)
            if path.stage_count >= 1:  # launched through a flop's CK->Q
                internal_hold = min(internal_hold, endpoint.slack)
        results.append(
            CrossDieCornerResult(
                die0_speed=s0,
                die1_speed=s1,
                wns_setup=report.wns("setup"),
                wns_hold=report.wns("hold"),
                internal_wns_hold=internal_hold,
            )
        )
    return results


def worst_off_diagonal_penalty(
    results: List[CrossDieCornerResult], mode: str = "hold"
) -> float:
    """How much worse the off-diagonal (cross-die) corners are than the
    matched-die corners — the quantitative case for (i)'s 'clocking
    interface design methodology to avoid' cross-die analysis."""
    diagonal = [r for r in results if r.die0_speed == r.die1_speed]
    off = [r for r in results if r.die0_speed != r.die1_speed]
    if not off:
        return 0.0
    attr = "internal_wns_hold" if mode == "hold" else "wns_setup"
    return min(getattr(r, attr) for r in diagonal) - \
        min(getattr(r, attr) for r in off)


def repartition_to_avoid_cross_die_criticality(
    design: Design,
    library: Library,
    constraints: Constraints,
    assignment: Dict[str, int],
    max_moves: int = 20,
) -> Tuple[Dict[str, int], int]:
    """Variability-mitigating optimization: pull the cells of critical
    cross-die paths onto one die so the worst paths stop straddling the
    TSV boundary. Returns (new assignment, moves made)."""
    sta = STA(design, library, constraints)
    report = sta.run()
    new_assignment = dict(assignment)
    moves = 0
    for endpoint in report.endpoints("setup"):
        if endpoint.kind != "setup" or moves >= max_moves:
            continue
        path = sta.worst_path(endpoint)
        dies = {
            new_assignment.get(p.ref.instance)
            for p in path.points
            if not p.ref.is_port
        }
        if len(dies) <= 1:
            continue
        # Move everything on the path to the capture flop's die.
        target = new_assignment.get(endpoint.check.instance, 0)
        for point in path.points:
            if point.ref.is_port:
                continue
            inst = point.ref.instance
            if new_assignment.get(inst) != target:
                new_assignment[inst] = target
                moves += 1
                if moves >= max_moves:
                    break
    return new_assignment, moves
