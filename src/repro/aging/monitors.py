"""Performance-monitor circuits: generic and design-dependent ring
oscillators (DDROs).

Section 4 lists "design and deployment of (critical path-mimicking)
process/aging monitor circuits" among the disciplines timing closure now
spans; [Chan-Gupta-Kahng-Lai TVLSI'13] synthesizes *design-dependent*
ring oscillators whose cell-type and loading mix mirrors the critical
paths, so the monitor's frequency tracks the paths' delay across
voltage, temperature, process and aging far better than a plain
inverter RO — which is what makes monitor-driven AVS (and the paper's
"signoff at typical" goal post) safe.

A monitor here is a composition of library arcs: its period is twice the
sum of stage delays evaluated against any library condition, so the same
monitor object can be "measured" at every PVT/aging point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import SignoffError
from repro.liberty import LibraryCondition, make_library
from repro.liberty.library import Library
from repro.sta.analysis import STA
from repro.sta.reports import TimingReport

_EVAL_SLEW = 20.0  # ps, fixed characterization slew for monitor stages


@dataclass(frozen=True)
class MonitorStage:
    """One stage of a ring oscillator: a cell arc plus its load."""

    cell_name: str
    load_ff: float


@dataclass
class RingOscillator:
    """A ring oscillator composed of library cells.

    ``period(library)`` evaluates the oscillation period (ps) against a
    library: twice the sum of average rise/fall stage delays, which is
    exact for an odd-inverting ring to first order.
    """

    name: str
    stages: List[MonitorStage]

    def period(self, library: Library) -> float:
        total = 0.0
        for stage in self.stages:
            cell = library.cell(stage.cell_name)
            arc = cell.delay_arcs()[0]
            delays = [
                arc.delay_and_slew(direction, _EVAL_SLEW, stage.load_ff)[0]
                for direction in arc.timing
            ]
            total += sum(delays) / len(delays)
        return 2.0 * total

    def frequency(self, library: Library) -> float:
        """Oscillation frequency in GHz (1e3 / period_ps)."""
        return 1e3 / self.period(library)


def generic_ro(n_stages: int = 15, flavor: str = "svt",
               load_ff: float = 3.0) -> RingOscillator:
    """The classic process monitor: an inverter ring, one flavor."""
    return RingOscillator(
        name=f"generic_inv{n_stages}_{flavor}",
        stages=[
            MonitorStage(f"INV_X1_{flavor.upper()}", load_ff)
            for _ in range(n_stages)
        ],
    )


def design_dependent_ro(sta: STA, report: TimingReport,
                        n_paths: int = 5,
                        max_stages: int = 40) -> RingOscillator:
    """Synthesize a DDRO mirroring the design's critical-path cell mix.

    Walks the worst setup paths and copies each cell stage (cell name
    plus the actual load its output drives) into the ring, so the
    monitor inherits the paths' Vt-flavor mix, stack depths and loading —
    the [3] recipe.
    """
    stages: List[MonitorStage] = []
    for endpoint in report.endpoints("setup")[:n_paths]:
        if endpoint.kind != "setup":
            continue
        path = sta.worst_path(endpoint)
        for point in path.points:
            if point.kind != "cell" or point.ref.is_port:
                continue
            cell = sta.graph.cell_of(point.ref)
            if cell.is_sequential:
                continue
            load = sta.prop.loads.get(point.ref, 4.0)
            stages.append(MonitorStage(cell.name, load))
            if len(stages) >= max_stages:
                return RingOscillator(name="ddro", stages=stages)
    if not stages:
        raise SignoffError("no combinational stages found for the DDRO")
    return RingOscillator(name="ddro", stages=stages)


# ---------------------------------------------------------------------- #
# tracking evaluation


@dataclass
class TrackingResult:
    """How well a monitor tracks true critical-path slowdown."""

    monitor_name: str
    conditions: List[str]
    path_ratios: List[float]  # true path-delay ratio vs nominal
    monitor_ratios: List[float]  # monitor-period ratio vs nominal

    @property
    def max_tracking_error(self) -> float:
        return max(
            abs(m - p) for m, p in zip(self.monitor_ratios, self.path_ratios)
        )

    @property
    def mean_tracking_error(self) -> float:
        errors = [
            abs(m - p) for m, p in zip(self.monitor_ratios, self.path_ratios)
        ]
        return sum(errors) / len(errors)


def evaluate_tracking(
    monitor: RingOscillator,
    design,
    constraints,
    conditions: Sequence[LibraryCondition],
    nominal: Optional[LibraryCondition] = None,
    flavors: tuple = ("lvt", "svt", "hvt"),
) -> TrackingResult:
    """Measure monitor-vs-path tracking across library conditions.

    The "true" signal is the worst setup arrival's scaling (STA at each
    condition); the monitor signal is its period scaling.
    """
    nominal = nominal or LibraryCondition()
    nom_lib = make_library(nominal, flavors=flavors)
    nom_report = STA(design, nom_lib, constraints).run()
    nom_arrival = max(
        e.arrival for e in nom_report.endpoints("setup") if e.kind == "setup"
    )
    nom_period = monitor.period(nom_lib)

    labels, path_ratios, monitor_ratios = [], [], []
    for cond in conditions:
        lib = make_library(cond, flavors=flavors)
        report = STA(design, lib, constraints).run()
        arrival = max(
            e.arrival for e in report.endpoints("setup") if e.kind == "setup"
        )
        labels.append(cond.label())
        path_ratios.append(arrival / nom_arrival)
        monitor_ratios.append(monitor.period(lib) / nom_period)
    return TrackingResult(
        monitor_name=monitor.name,
        conditions=labels,
        path_ratios=path_ratios,
        monitor_ratios=monitor_ratios,
    )


def monitor_guided_voltage(
    monitor: RingOscillator,
    target_ratio: float,
    delta_vt: float = 0.0,
    v_min: float = 0.55,
    v_max: float = 1.05,
    resolution: float = 0.005,
    temp_c: float = 105.0,
    process: str = "tt",
    flavors: tuple = ("lvt", "svt", "hvt"),
) -> float:
    """The voltage an AVS loop driven by this monitor would settle at.

    Finds the lowest rail at which the monitor's period is no more than
    ``target_ratio`` times its nominal-condition period. This is the
    PVS-like adaptivity of [2]/[5]: the monitor, not a full STA, closes
    the loop in silicon.
    """
    nominal = make_library(LibraryCondition(), flavors=flavors)
    nom_period = monitor.period(nominal)

    def ok(vdd: float) -> bool:
        lib = make_library(
            LibraryCondition(vdd=vdd, temp_c=temp_c, process=process,
                             vt_shift_aging=delta_vt),
            flavors=flavors,
        )
        return monitor.period(lib) <= target_ratio * nom_period

    if not ok(v_max):
        raise SignoffError(
            f"monitor target unreachable even at {v_max} V"
        )
    if ok(v_min):
        return v_min
    lo, hi = v_min, v_max
    while hi - lo > resolution:
        mid = 0.5 * (lo + hi)
        if ok(mid):
            hi = mid
        else:
            lo = mid
    return hi
