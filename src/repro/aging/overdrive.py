"""Overdrive-signoff optimization ([Chan-Kahng-Li-Nath-Park, TVLSI'14]).

A part that mostly runs at nominal voltage/frequency must also support an
*overdrive* mode: higher frequency at an elevated rail. Choosing the
overdrive signoff voltage is a real optimization:

- sign off overdrive at a *low* V_od and the implementation needs heavy
  upsizing to make the overdrive frequency (area cost, possibly
  infeasible);
- sign off at a *high* V_od and the elevated-stress residency
  accelerates BTI aging and burns power (lifetime energy cost).

``optimize_overdrive_signoff`` sweeps candidate rails, closes a fresh
copy of the design against each overdrive corner (aged by the shift that
rail itself would cause over life — the chicken-egg again), verifies the
nominal mode still closes, and scores area + lifetime power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.aging.bti import BtiModel
from repro.aging.signoff import greedy_upsize_closure
from repro.errors import SignoffError
from repro.liberty import LibraryCondition, make_library
from repro.netlist.design import Design
from repro.parasitics.synthesis import ParasiticExtractor
from repro.power.models import design_power
from repro.sta import STA, Constraints


@dataclass
class OverdriveOutcome:
    """One candidate overdrive rail's implementation result."""

    v_od: float
    closed_overdrive: bool
    closed_nominal: bool
    area: float
    lifetime_power: float  # residency-weighted, mW
    eol_shift_mv: float

    @property
    def feasible(self) -> bool:
        return self.closed_overdrive and self.closed_nominal

    def cost(self, area_ref: float, power_ref: float,
             area_weight: float = 0.5) -> float:
        """Normalized scalar cost (lower is better)."""
        return (
            area_weight * self.area / area_ref
            + (1.0 - area_weight) * self.lifetime_power / power_ref
        )


def evaluate_overdrive_rail(
    design: Design,
    v_od: float,
    nominal_constraints: Constraints,
    overdrive_constraints: Constraints,
    v_nominal: float = 0.8,
    od_residency: float = 0.2,
    years: float = 10.0,
    temp_c: float = 105.0,
    bti: BtiModel = BtiModel(),
    activity: float = 0.15,
    flavors: tuple = ("lvt", "svt", "hvt"),
) -> OverdriveOutcome:
    """Implement and score one overdrive-rail choice (mutates ``design``)."""
    # End-of-life shift under the residency-weighted stress profile.
    eol_shift = bti.accumulate(
        [
            (years * od_residency, v_od),
            (years * (1.0 - od_residency), v_nominal),
        ],
        temp_c=temp_c,
    )
    od_lib = make_library(
        LibraryCondition(vdd=v_od, temp_c=temp_c, vt_shift_aging=eol_shift),
        flavors=flavors,
    )
    closed_od = greedy_upsize_closure(design, od_lib, overdrive_constraints)

    nom_lib = make_library(
        LibraryCondition(vdd=v_nominal, temp_c=temp_c,
                         vt_shift_aging=eol_shift),
        flavors=flavors,
    )
    nom_sta = STA(design, nom_lib, nominal_constraints)
    closed_nom = nom_sta.run().wns("setup") >= 0.0

    def mode_power(lib, constraints) -> float:
        sta = STA(design, lib, constraints)
        extractor = ParasiticExtractor(design, lib, sta.stack,
                                       sta.beol_corner, temp_c=temp_c)
        return design_power(
            design, lib, extractor, constraints.the_clock().period,
            activity=activity,
        ).total

    power = (
        od_residency * mode_power(od_lib, overdrive_constraints)
        + (1.0 - od_residency) * mode_power(nom_lib, nominal_constraints)
    )
    return OverdriveOutcome(
        v_od=v_od,
        closed_overdrive=closed_od,
        closed_nominal=closed_nom,
        area=design.total_area(od_lib),
        lifetime_power=power,
        eol_shift_mv=eol_shift * 1000.0,
    )


def optimize_overdrive_signoff(
    design_factory: Callable[[], Design],
    nominal_period: float,
    overdrive_period: float,
    v_candidates: Sequence[float] = (0.84, 0.88, 0.92, 0.96, 1.00),
    area_weight: float = 0.5,
    **kwargs,
) -> List[OverdriveOutcome]:
    """Sweep overdrive rails; the caller picks with :func:`best_outcome`.

    Each candidate implements a *fresh* copy of the design. The overdrive
    mode reuses the nominal constraint structure with the faster clock.
    """
    nominal_constraints = Constraints.single_clock(nominal_period)
    overdrive_constraints = Constraints.single_clock(overdrive_period)
    outcomes: List[OverdriveOutcome] = []
    for v_od in v_candidates:
        design = design_factory()
        outcomes.append(
            evaluate_overdrive_rail(
                design, v_od, nominal_constraints, overdrive_constraints,
                **kwargs,
            )
        )
    return outcomes


def best_outcome(outcomes: Sequence[OverdriveOutcome],
                 area_weight: float = 0.5) -> OverdriveOutcome:
    """Lowest-cost feasible rail; raises when none closes both modes."""
    feasible = [o for o in outcomes if o.feasible]
    if not feasible:
        raise SignoffError("no overdrive rail closes both modes")
    area_ref = min(o.area for o in feasible)
    power_ref = min(o.lifetime_power for o in feasible)
    return min(feasible,
               key=lambda o: o.cost(area_ref, power_ref, area_weight))
