"""Aging-aware signoff: the chicken-egg loop and the Fig 9 corner sweep.

Signoff must *assume* some end-of-life threshold shift. Assume too little
and AVS spends the product's lifetime at elevated voltage (energy
penalty, further accelerated aging); assume too much and the design is
over-sized at tapeout (area penalty). [Chan-Chan-Kahng TCAS'14] — the
paper's Fig 9 — quantifies the tradeoff by implementing the same circuit
at a sweep of assumed aging corners and simulating each implementation's
AVS-managed lifetime. :func:`sweep_aging_corners` reproduces exactly that
experiment on our synthetic circuits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.aging.avs import AvsController
from repro.aging.bti import BtiModel
from repro.errors import SignoffError
from repro.liberty import LibraryCondition, make_library
from repro.netlist.design import Design
from repro.netlist.transforms import upsize
from repro.parasitics.synthesis import ParasiticExtractor
from repro.power.models import design_power
from repro.sta import STA, Constraints


@dataclass
class LifetimeResult:
    """Trajectory of one AVS-managed lifetime."""

    times: List[float]  # years
    voltages: List[float]  # V at each time
    delta_vts: List[float]  # accumulated shift, V
    powers: List[float]  # total power at each time, mW

    @property
    def average_power(self) -> float:
        """Time-weighted mean power over the lifetime, mW."""
        if len(self.times) < 2:
            return self.powers[0] if self.powers else 0.0
        total_energy = 0.0
        for i in range(1, len(self.times)):
            dt = self.times[i] - self.times[i - 1]
            total_energy += 0.5 * (self.powers[i] + self.powers[i - 1]) * dt
        return total_energy / (self.times[-1] - self.times[0])

    @property
    def final_voltage(self) -> float:
        return self.voltages[-1]


def simulate_lifetime(
    design: Design,
    constraints: Constraints,
    years: float = 10.0,
    steps: int = 5,
    bti: BtiModel = BtiModel(),
    avs: Optional[AvsController] = None,
    temp_c: float = 105.0,
    activity: float = 0.15,
) -> LifetimeResult:
    """Run the AVS/aging closed loop over a product lifetime.

    At each time step: accumulate BTI shift under the voltages applied so
    far, then let AVS pick the minimum voltage that still closes timing
    at that shift. Voltage is monotone nondecreasing over life (aging
    never reverses here), and each raise accelerates subsequent aging —
    the chicken-egg loop, resolved by forward simulation.
    """
    avs = avs or AvsController(design=design, constraints=constraints,
                               temp_c=temp_c)
    period = constraints.the_clock().period

    times = [years * i / steps for i in range(steps + 1)]
    voltages: List[float] = []
    shifts: List[float] = []
    powers: List[float] = []

    segments: List[Tuple[float, float]] = []
    v = avs.voltage_for(0.0)
    for i, t in enumerate(times):
        if i > 0:
            segments.append((times[i] - times[i - 1], v))
        shift = bti.accumulate(segments, temp_c=temp_c) if segments else 0.0
        v = max(v, avs.voltage_for(shift))  # AVS only raises over life
        lib = make_library(
            LibraryCondition(vdd=v, temp_c=temp_c, process=avs.process,
                             vt_shift_aging=shift),
            flavors=avs.flavors,
        )
        extractor = ParasiticExtractor(
            design, lib, STA(design, lib, constraints).stack,
            STA(design, lib, constraints).beol_corner, temp_c=temp_c,
        )
        power = design_power(design, lib, extractor, period,
                             activity=activity).total
        voltages.append(v)
        shifts.append(shift)
        powers.append(power)
    return LifetimeResult(times=times, voltages=voltages,
                          delta_vts=shifts, powers=powers)


@dataclass
class AgingCornerOutcome:
    """One point of the Fig 9 tradeoff."""

    assumed_shift_mv: float
    area: float
    average_power: float
    final_voltage: float
    closed: bool


def greedy_upsize_closure(
    design: Design,
    library,
    constraints: Constraints,
    max_edits: int = 400,
) -> bool:
    """Close setup timing by upsizing cells on violating paths.

    A deliberately simple implementation engine for the aging sweep (the
    full Fig 1 closure loop lives in :mod:`repro.core.closure`). Returns
    True when WNS >= 0 was reached.
    """
    for _ in range(max_edits // 8 + 1):
        sta = STA(design, library, constraints)
        report = sta.run()
        if report.wns("setup") >= 0.0:
            return True
        edits = 0
        for endpoint in report.violations("setup")[:8]:
            path = sta.worst_path(endpoint)
            for point in sorted(path.points, key=lambda p: -p.increment):
                if point.kind != "cell" or point.ref.is_port:
                    continue
                if upsize(design, library, point.ref.instance) is not None:
                    edits += 1
                    break
        if edits == 0:
            return False
    sta = STA(design, library, constraints)
    return sta.run().wns("setup") >= 0.0


def sweep_aging_corners(
    design_factory: Callable[[], Design],
    constraints: Constraints,
    corners_mv: Sequence[float] = (0.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0),
    signoff_vdd: float = 0.8,
    years: float = 10.0,
    steps: int = 4,
    bti: BtiModel = BtiModel(),
    temp_c: float = 105.0,
    flavors: tuple = ("lvt", "svt", "hvt"),
) -> List[AgingCornerOutcome]:
    """The Fig 9 experiment: implement at each assumed aging corner, then
    simulate the real AVS-managed lifetime of that implementation.

    Each corner gets a *fresh* copy of the design (from
    ``design_factory``), closed by upsizing against a library aged by the
    assumed shift. Area is read after closure; lifetime average power
    from :func:`simulate_lifetime`.
    """
    outcomes: List[AgingCornerOutcome] = []
    for corner_mv in corners_mv:
        design = design_factory()
        signoff_lib = make_library(
            LibraryCondition(
                vdd=signoff_vdd,
                temp_c=temp_c,
                vt_shift_aging=corner_mv / 1000.0,
            ),
            flavors=flavors,
        )
        closed = greedy_upsize_closure(design, signoff_lib, constraints)
        area = design.total_area(signoff_lib)
        avs = AvsController(design=design, constraints=constraints,
                            temp_c=temp_c, flavors=flavors)
        try:
            life = simulate_lifetime(
                design, constraints, years=years, steps=steps, bti=bti,
                avs=avs, temp_c=temp_c,
            )
            power = life.average_power
            v_final = life.final_voltage
        except SignoffError:
            power = float("inf")
            v_final = float("nan")
        outcomes.append(
            AgingCornerOutcome(
                assumed_shift_mv=corner_mv,
                area=area,
                average_power=power,
                final_voltage=v_final,
                closed=closed,
            )
        )
    return outcomes
