"""Bias temperature instability (BTI) threshold-shift model.

The standard reaction-diffusion-inspired compact form used in aging-aware
signoff studies::

    dVt(t, V, T) = A * exp(gamma * V) * exp(-Ea / kT) * t^n

- power-law in stress time (n ~= 0.16 for DC NBTI);
- exponential acceleration in the stress (supply) voltage — the term
  that closes the paper's chicken-egg loop, since AVS *raises* V to
  compensate the very degradation the higher V accelerates;
- Arrhenius in temperature.

An AC duty factor scales the effective shift for switching signals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ReproError
from repro.units import celsius_to_kelvin

BOLTZMANN_EV = 8.617e-5  # eV/K


@dataclass(frozen=True)
class BtiModel:
    """BTI model parameters, calibrated for volt-scale shifts over years.

    Defaults produce ~30-50 mV of DC shift over a 10-year lifetime at
    0.8-0.9 V and 105 C — the regime the paper's Fig 9 study explores.
    """

    prefactor: float = 1.0e-2  # V, at the reference conditions
    voltage_accel: float = 3.5  # 1/V
    activation_energy: float = 0.06  # eV
    time_exponent: float = 0.16
    ac_duty_factor: float = 0.5  # fraction of time under stress (AC)

    def __post_init__(self):
        if self.time_exponent <= 0 or self.time_exponent >= 1:
            raise ReproError("time exponent must be in (0, 1)")
        if self.prefactor <= 0:
            raise ReproError("prefactor must be positive")

    def delta_vt(
        self,
        years: float,
        vdd: float,
        temp_c: float = 105.0,
        dc_stress: bool = True,
    ) -> float:
        """Threshold shift in volts after ``years`` of stress at ``vdd``.

        ``dc_stress=True`` is the pessimistic always-on case the paper's
        Fig 9 assumes; AC stress scales by the duty factor's power-law
        equivalent.
        """
        if years < 0:
            raise ReproError("stress time must be non-negative")
        if years == 0:
            return 0.0
        t_k = celsius_to_kelvin(temp_c)
        shift = (
            self.prefactor
            * math.exp(self.voltage_accel * vdd)
            * math.exp(-self.activation_energy / (BOLTZMANN_EV * t_k))
            * years**self.time_exponent
        )
        if not dc_stress:
            shift *= self.ac_duty_factor**self.time_exponent
        return shift

    def stress_equivalent_years(self, delta_vt: float, vdd: float,
                                temp_c: float = 105.0) -> float:
        """Invert the model: years of stress at (vdd, temp) producing a
        given shift. Used to accumulate aging across piecewise-constant
        voltage segments (higher V 'fast-forwards' the device)."""
        if delta_vt <= 0:
            return 0.0
        t_k = celsius_to_kelvin(temp_c)
        scale = (
            self.prefactor
            * math.exp(self.voltage_accel * vdd)
            * math.exp(-self.activation_energy / (BOLTZMANN_EV * t_k))
        )
        return (delta_vt / scale) ** (1.0 / self.time_exponent)

    def accumulate(
        self,
        segments,  # iterable of (duration_years, vdd)
        temp_c: float = 105.0,
        dc_stress: bool = True,
    ) -> float:
        """Total shift over piecewise-constant voltage segments, using
        stress-equivalent-time accumulation (order-dependent, as it is
        physically)."""
        shift = 0.0
        for duration, vdd in segments:
            t_eq = self.stress_equivalent_years(shift, vdd, temp_c)
            shift = self.delta_vt(t_eq + duration, vdd, temp_c, dc_stress)
        return shift
