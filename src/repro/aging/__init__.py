"""BTI aging, adaptive voltage scaling and aging-aware signoff.

- :mod:`repro.aging.bti` — a reaction-diffusion-style BTI threshold-shift
  model (power-law in time, exponential in voltage, Arrhenius in
  temperature);
- :mod:`repro.aging.avs` — the AVS controller: the minimum supply at
  which a (possibly aged) design still meets timing;
- :mod:`repro.aging.signoff` — the Section 3.3 chicken-egg loop
  ([Chan-Chan-Kahng TCAS'14]): the aging/AVS fixed point over a product
  lifetime, and the aging-signoff-corner sweep behind Fig 9.
"""

from repro.aging.bti import BtiModel
from repro.aging.avs import AvsController
from repro.aging.signoff import (
    AgingCornerOutcome,
    LifetimeResult,
    simulate_lifetime,
    sweep_aging_corners,
)
from repro.aging.monitors import (
    RingOscillator,
    design_dependent_ro,
    generic_ro,
    monitor_guided_voltage,
)
from repro.aging.overdrive import (
    OverdriveOutcome,
    best_outcome,
    optimize_overdrive_signoff,
)

__all__ = [
    "BtiModel",
    "AvsController",
    "AgingCornerOutcome",
    "LifetimeResult",
    "simulate_lifetime",
    "sweep_aging_corners",
    "RingOscillator",
    "design_dependent_ro",
    "generic_ro",
    "monitor_guided_voltage",
    "OverdriveOutcome",
    "best_outcome",
    "optimize_overdrive_signoff",
]
