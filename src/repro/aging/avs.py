"""Adaptive voltage scaling: the minimum supply that closes timing.

An AVS system (monitor circuits + closed-loop regulator) raises the
supply just enough that the (aged) silicon meets its performance target.
We model the controller as a bisection over library voltage: build the
analytic library at (V, delta_vt), run STA, and find the lowest V in the
rail range whose worst setup slack is non-negative.

This is what lets the paper's "signoff at typical" methodology work: the
DC component of margin is gone because voltage, not guardband, absorbs
process/aging slowness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import SignoffError
from repro.liberty import LibraryCondition, make_library
from repro.netlist.design import Design
from repro.sta import STA, Constraints


@dataclass
class AvsController:
    """Closed-loop voltage search for one design + constraint set.

    Attributes:
        design: the design under control.
        constraints: timing constraints (the performance target).
        v_min, v_max: rail range, V.
        resolution: voltage step resolution, V.
        process: library process corner for the silicon being regulated
            ("tt" models typical silicon; AVS on slow silicon lands at a
            higher rail).
        temp_c: operating temperature.
        flavors: library flavors (match the design's cells).
    """

    design: Design
    constraints: Constraints
    v_min: float = 0.55
    v_max: float = 1.05
    resolution: float = 0.005
    process: str = "tt"
    temp_c: float = 105.0
    flavors: tuple = ("lvt", "svt", "hvt")

    def wns_at(self, vdd: float, delta_vt: float = 0.0) -> float:
        """Worst setup slack at an operating point."""
        lib = make_library(
            LibraryCondition(
                vdd=vdd,
                temp_c=self.temp_c,
                process=self.process,
                vt_shift_aging=delta_vt,
            ),
            flavors=self.flavors,
        )
        report = STA(self.design, lib, self.constraints).run()
        return report.wns("setup")

    def voltage_for(self, delta_vt: float = 0.0) -> float:
        """The minimum rail voltage that meets timing at a given aging
        state. Raises :class:`SignoffError` when even v_max fails."""
        if self.wns_at(self.v_max, delta_vt) < 0.0:
            raise SignoffError(
                f"timing cannot be met even at {self.v_max} V "
                f"(delta_vt={delta_vt * 1000:.0f} mV)"
            )
        if self.wns_at(self.v_min, delta_vt) >= 0.0:
            return self.v_min
        lo, hi = self.v_min, self.v_max
        while hi - lo > self.resolution:
            mid = 0.5 * (lo + hi)
            if self.wns_at(mid, delta_vt) >= 0.0:
                hi = mid
            else:
                lo = mid
        return hi
