"""Row-based placement derived from instance locations.

The framework's generators assign (x, y) locations; this module snaps
them into standard-cell rows (fixed height, ordered cells, widths from
cell area) — enough structure for implant-layer (MinIA) analysis and for
displacement-cost accounting when the fixer perturbs placement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import PlacementError
from repro.liberty.library import Library
from repro.netlist.design import Design

ROW_HEIGHT = 1.4  # um
#: Cell width per unit of library area, um (area is in abstract units).
WIDTH_PER_AREA = 0.6


@dataclass
class PlacedCell:
    """One cell in a row."""

    name: str
    x: float  # left edge, um
    width: float  # um
    vt_flavor: str

    @property
    def right(self) -> float:
        return self.x + self.width


@dataclass
class Row:
    """One placement row: cells kept sorted and non-overlapping."""

    index: int
    cells: List[PlacedCell] = field(default_factory=list)

    @property
    def y(self) -> float:
        return self.index * ROW_HEIGHT

    def sort(self) -> None:
        self.cells.sort(key=lambda c: c.x)

    def legalize(self) -> float:
        """Remove overlaps by pushing cells right; returns the total
        displacement (um)."""
        self.sort()
        displacement = 0.0
        cursor = None
        for cell in self.cells:
            if cursor is not None and cell.x < cursor:
                displacement += cursor - cell.x
                cell.x = cursor
            cursor = cell.right
        return displacement

    def runs(self) -> List[List[PlacedCell]]:
        """Maximal runs of *abutting* same-flavor cells, left to right.

        A gap between cells breaks the run: an implant island's width is
        only what the abutting same-flavor group covers.
        """
        self.sort()
        out: List[List[PlacedCell]] = []
        current: List[PlacedCell] = []
        for cell in self.cells:
            if (
                current
                and current[-1].vt_flavor == cell.vt_flavor
                and abs(current[-1].right - cell.x) < 1e-6
            ):
                current.append(cell)
            else:
                if current:
                    out.append(current)
                current = [cell]
        if current:
            out.append(current)
        return out


class Placement:
    """All rows of a design."""

    def __init__(self, rows: Dict[int, Row]):
        self.rows = rows

    @classmethod
    def from_design(cls, design: Design, library: Library) -> "Placement":
        """Snap instance locations into legalized rows.

        Unplaced instances are skipped (they carry no implant geometry).
        """
        rows: Dict[int, Row] = {}
        for inst in design.instances.values():
            if inst.location is None:
                continue
            cell = library.cell(inst.cell_name)
            row_idx = int(round(inst.location[1] / ROW_HEIGHT))
            row = rows.setdefault(row_idx, Row(index=row_idx))
            row.cells.append(
                PlacedCell(
                    name=inst.name,
                    x=inst.location[0],
                    width=max(cell.area * WIDTH_PER_AREA, 0.1),
                    vt_flavor=cell.vt_flavor,
                )
            )
        for row in rows.values():
            row.legalize()
        return cls(rows)

    def cell(self, name: str) -> PlacedCell:
        for row in self.rows.values():
            for cell in row.cells:
                if cell.name == name:
                    return cell
        raise PlacementError(f"no placed cell {name!r}")

    def total_cells(self) -> int:
        return sum(len(r.cells) for r in self.rows.values())

    def abut_all(self) -> None:
        """Pack each row's cells into an abutting block (keeps order).

        Mimics a high-utilization region where implant islands actually
        interact; generators leave channel gaps otherwise.
        """
        for row in self.rows.values():
            row.sort()
            cursor: Optional[float] = None
            for cell in row.cells:
                if cursor is not None:
                    cell.x = cursor
                cursor = cell.right
