"""Row-based placement substrate and MinIA interference analysis.

- :mod:`repro.place.rows` — rows of placed cells derived from instance
  locations, with legalization;
- :mod:`repro.place.minia` — the minimum-implant-area rule of the paper's
  Section 2.4 / Fig 6(a): checker and the [Kahng-Lee GLSVLSI'14]-style
  fixer that removes violations with Vt-swaps and minimal placement
  perturbation under timing/power guards.
"""

from repro.place.rows import PlacedCell, Placement, Row
from repro.place.minia import (
    Island,
    MiniaFixReport,
    find_minia_violations,
    fix_minia_violations,
)

__all__ = [
    "PlacedCell",
    "Placement",
    "Row",
    "Island",
    "MiniaFixReport",
    "find_minia_violations",
    "fix_minia_violations",
]
