"""Minimum implant area (MinIA) checking and fixing.

Implant (Vt-defining) layer shapes must meet a minimum width; a narrow
island of one Vt flavor sandwiched between cells of another flavor (the
paper's Fig 6(a)) violates the rule. This couples Vt-swap optimization to
detailed placement — the Section 2.4 "interference" that weakens the
classic Fig 1 fix ordering.

The fixer follows [Kahng-Lee GLSVLSI'14]'s playbook, cheapest first:

1. *Absorb*: swap the island's cells to a neighbouring flavor — allowed
   only when every swapped cell keeps ``slack_guard`` of timing slack
   (swapping up costs delay) and is not dont_touch;
2. *Extend*: swap an adjacent cell *into* the island's flavor until the
   island meets the width rule (costs leakage when swapping down);
3. *Regroup*: move the island's cells next to the nearest same-flavor
   run in the row (placement perturbation, tracked as displacement).

Each action is validated against the rule before being committed; the
report records fix rate, leakage delta and total displacement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import PlacementError
from repro.liberty.library import Library
from repro.netlist.design import Design
from repro.netlist.transforms import swap_vt
from repro.place.rows import PlacedCell, Placement, Row

DEFAULT_MIN_IMPLANT_WIDTH = 1.0  # um


@dataclass(frozen=True)
class Island:
    """A same-flavor run that violates the minimum implant width."""

    row: int
    start: int  # index of the first cell of the run within the row
    cells: Tuple[str, ...]
    vt_flavor: str
    width: float


@dataclass
class MiniaFixReport:
    """Outcome of a fixing pass."""

    violations_before: int
    violations_after: int
    swaps: int = 0
    moves: int = 0
    displacement: float = 0.0  # um
    leakage_delta: float = 0.0  # mW

    @property
    def fix_rate(self) -> float:
        if self.violations_before == 0:
            return 1.0
        return 1.0 - self.violations_after / self.violations_before


def find_minia_violations(
    placement: Placement,
    min_width: float = DEFAULT_MIN_IMPLANT_WIDTH,
) -> List[Island]:
    """All same-flavor runs narrower than the rule.

    A run at a row boundary (first/last in its row) is exempt when it can
    merge with the adjacent region's implant — we conservatively flag
    only *interior* runs, matching the Fig 6(a) picture of an island
    sandwiched between two different-flavor neighbours.
    """
    violations: List[Island] = []
    for row in placement.rows.values():
        runs = row.runs()
        position = 0
        for i, run in enumerate(runs):
            width = sum(c.width for c in run)
            interior = 0 < i < len(runs) - 1
            if interior and width < min_width:
                violations.append(
                    Island(
                        row=row.index,
                        start=position,
                        cells=tuple(c.name for c in run),
                        vt_flavor=run[0].vt_flavor,
                        width=width,
                    )
                )
            position += len(run)
    return violations


def fix_minia_violations(
    design: Design,
    library: Library,
    placement: Placement,
    min_width: float = DEFAULT_MIN_IMPLANT_WIDTH,
    slack_of: Optional[Callable[[str], float]] = None,
    slack_guard: float = 0.0,
    max_passes: int = 3,
) -> MiniaFixReport:
    """Remove MinIA violations with guarded swaps and regrouping.

    ``slack_of(instance_name)`` supplies the worst slack through an
    instance (ps); swaps that would push a cell with less than
    ``slack_guard`` are refused. Without a slack oracle all swaps are
    allowed (power-only mode).
    """
    before = find_minia_violations(placement, min_width)
    report = MiniaFixReport(
        violations_before=len(before), violations_after=len(before)
    )
    slack_of = slack_of or (lambda name: float("inf"))

    for _ in range(max_passes):
        violations = find_minia_violations(placement, min_width)
        if not violations:
            break
        progress = False
        for island in violations:
            if _try_absorb(design, library, placement, island, slack_of,
                           slack_guard, report):
                progress = True
                continue
            if _try_extend(design, library, placement, island, min_width,
                           slack_of, slack_guard, report):
                progress = True
                continue
            if _try_regroup(placement, island, report):
                progress = True
        if not progress:
            break

    report.violations_after = len(find_minia_violations(placement, min_width))
    return report


# ---------------------------------------------------------------------- #
# fix actions


def _flavor_order_distance(a: str, b: str) -> int:
    order = {"ulvt": 0, "lvt": 1, "svt": 2, "hvt": 3, "uhvt": 4}
    return abs(order.get(a, 2) - order.get(b, 2))


def _neighbor_flavors(placement: Placement, island: Island) -> List[str]:
    row = placement.rows[island.row]
    runs = row.runs()
    for i, run in enumerate(runs):
        if run and run[0].name == island.cells[0]:
            flavors = []
            if i > 0:
                flavors.append(runs[i - 1][0].vt_flavor)
            if i < len(runs) - 1:
                flavors.append(runs[i + 1][0].vt_flavor)
            return flavors
    return []


def _apply_swap(design, library, placement, cell_name: str,
                flavor: str, report: MiniaFixReport) -> bool:
    inst = design.instance(cell_name)
    old_cell = library.cell(inst.cell_name)
    edit = swap_vt(design, library, cell_name, flavor)
    if edit is None:
        return False
    new_cell = library.cell(inst.cell_name)
    report.swaps += 1
    report.leakage_delta += new_cell.leakage - old_cell.leakage
    placement.cell(cell_name).vt_flavor = flavor
    return True


def _try_absorb(design, library, placement, island, slack_of, guard,
                report) -> bool:
    """Swap the whole island to a neighbouring flavor."""
    candidates = sorted(
        set(_neighbor_flavors(placement, island)),
        key=lambda f: _flavor_order_distance(island.vt_flavor, f),
    )
    for flavor in candidates:
        slower = _flavor_is_slower(flavor, island.vt_flavor)
        if slower and any(slack_of(c) < guard for c in island.cells):
            continue
        ok = all(
            library.swap_variant(
                library.cell(design.instance(c).cell_name), vt_flavor=flavor
            ) is not None
            for c in island.cells
        )
        if not ok:
            continue
        for cell_name in island.cells:
            _apply_swap(design, library, placement, cell_name, flavor, report)
        return True
    return False


def _try_extend(design, library, placement, island, min_width, slack_of,
                guard, report) -> bool:
    """Swap adjacent cells into the island's flavor to widen it."""
    row = placement.rows[island.row]
    row.sort()
    names = [c.name for c in row.cells]
    try:
        left = names.index(island.cells[0]) - 1
        right = names.index(island.cells[-1]) + 1
    except ValueError:
        return False
    width = island.width
    slower = _flavor_is_slower(island.vt_flavor, "lvt")
    for idx in (right, left):
        if not 0 <= idx < len(row.cells):
            continue
        neighbor = row.cells[idx]
        if _flavor_is_slower(island.vt_flavor, neighbor.vt_flavor) and \
                slack_of(neighbor.name) < guard:
            continue
        if _apply_swap(design, library, placement, neighbor.name,
                       island.vt_flavor, report):
            width += neighbor.width
            if width >= min_width:
                return True
    return width >= min_width


def _try_regroup(placement, island, report) -> bool:
    """Move island cells next to the nearest same-flavor run in the row."""
    row = placement.rows[island.row]
    runs = row.runs()
    target: Optional[List[PlacedCell]] = None
    island_cells = [c for c in row.cells if c.name in island.cells]
    if not island_cells:
        return False
    ix = island_cells[0].x
    best_dist = None
    for run in runs:
        if run[0].vt_flavor != island.vt_flavor or \
                run[0].name == island.cells[0]:
            continue
        dist = abs(run[0].x - ix)
        if best_dist is None or dist < best_dist:
            best_dist = dist
            target = run
    if target is None:
        return False
    cursor = target[-1].right
    for cell in island_cells:
        report.displacement += abs(cell.x - cursor)
        cell.x = cursor
        cursor = cell.right
        report.moves += 1
    row.legalize()
    return True


def _flavor_is_slower(new: str, old: str) -> bool:
    order = {"ulvt": 0, "lvt": 1, "svt": 2, "hvt": 3, "uhvt": 4}
    return order.get(new, 2) > order.get(old, 2)
