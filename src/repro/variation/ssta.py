"""Statistical static timing analysis (SSTA) — the "perpetual future".

Section 3.1: "the industry has also for over a decade flirted with full
statistical STA... it seems to remain perpetually in the future." This
module implements the classic block-based SSTA so the flirtation can be
evaluated concretely: arrival times are Gaussians (mean, sigma) with a
shared global component, propagated through sum (exact) and max (Clark's
moment-matching approximation), with per-arc sigmas taken from the same
LVF tables the deterministic engine uses.

The two knobs the paper says block adoption — complexity and foundry
statistics — show up here as, respectively, the Clark-max machinery and
the need for trustworthy ``sigma`` inputs; the payoff shows up as yield-
aware slack: ``slack_at_sigma(n)`` reads the slack distribution at a
chosen confidence instead of at a corner.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import TimingError
from repro.netlist.design import PinRef
from repro.sta.analysis import STA
from repro.sta.graph import CellEdge, NetEdge
from repro.sta.propagation import DIRECTIONS, driver_load

_SQRT_2PI = math.sqrt(2.0 * math.pi)


def _phi(x: float) -> float:
    """Standard normal pdf."""
    return math.exp(-0.5 * x * x) / _SQRT_2PI


def _cap_phi(x: float) -> float:
    """Standard normal cdf."""
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


@dataclass(frozen=True)
class GaussianArrival:
    """A statistical arrival: mean, independent sigma, global sigma.

    The *global* component is fully correlated across the whole die
    (die-to-die variation); the *local* component accumulates in RSS.
    """

    mean: float
    sigma_local: float = 0.0
    sigma_global: float = 0.0

    @property
    def sigma(self) -> float:
        return math.hypot(self.sigma_local, self.sigma_global)

    def shifted(self, delay_mean: float, delay_sigma_local: float,
                delay_sigma_global: float = 0.0) -> "GaussianArrival":
        """Sum of this arrival and an independent-local-sigma delay."""
        return GaussianArrival(
            mean=self.mean + delay_mean,
            sigma_local=math.hypot(self.sigma_local, delay_sigma_local),
            sigma_global=self.sigma_global + delay_sigma_global,
        )

    def quantile(self, n_sigma: float) -> float:
        """mean + n_sigma * sigma (the corner-like read-out)."""
        return self.mean + n_sigma * self.sigma


def clark_max(a: GaussianArrival, b: GaussianArrival,
              correlation: float = 0.0) -> GaussianArrival:
    """Clark's moment-matched Gaussian approximation of max(a, b).

    The local components are treated as independent up to
    ``correlation``; global components are fully correlated and handled
    by maxing means at matched global excursions (a standard
    simplification: the global part adds after the local max).
    """
    # Max over the local-plus-mean parts.
    sa = max(a.sigma_local, 1e-12)
    sb = max(b.sigma_local, 1e-12)
    theta = math.sqrt(max(sa * sa + sb * sb - 2.0 * correlation * sa * sb,
                          1e-24))
    x = (a.mean - b.mean) / theta
    p = _cap_phi(x)
    q = _phi(x)
    mean = a.mean * p + b.mean * (1.0 - p) + theta * q
    second = (
        (a.mean**2 + sa * sa) * p
        + (b.mean**2 + sb * sb) * (1.0 - p)
        + (a.mean + b.mean) * theta * q
    )
    var = max(second - mean * mean, 0.0)
    return GaussianArrival(
        mean=mean,
        sigma_local=math.sqrt(var),
        sigma_global=max(a.sigma_global, b.sigma_global),
    )


class SstaResult:
    """Statistical arrivals per (pin, direction) plus endpoint slacks."""

    def __init__(self):
        self.arrivals: Dict[Tuple[PinRef, str], GaussianArrival] = {}
        self.endpoint_slacks: Dict[PinRef, GaussianArrival] = {}

    def arrival(self, ref: PinRef, direction: str) -> GaussianArrival:
        try:
            return self.arrivals[(ref, direction)]
        except KeyError:
            raise TimingError(f"no statistical arrival at {ref} {direction}")

    def worst_arrival(self, ref: PinRef) -> GaussianArrival:
        candidates = [
            self.arrivals[(ref, d)] for d in DIRECTIONS
            if (ref, d) in self.arrivals
        ]
        if not candidates:
            raise TimingError(f"no statistical arrival at {ref}")
        if len(candidates) == 1:
            return candidates[0]
        return clark_max(candidates[0], candidates[1])

    def slack_at_sigma(self, endpoint: PinRef, n_sigma: float = 3.0) -> float:
        """Yield-aware slack: the paper's 'slacks now reported at a
        confidence tail of the slack distribution'."""
        dist = self.endpoint_slacks[endpoint]
        return dist.mean - n_sigma * dist.sigma

    def wns_at_sigma(self, n_sigma: float = 3.0) -> float:
        return min(
            self.slack_at_sigma(ep, n_sigma) for ep in self.endpoint_slacks
        )


def run_ssta(sta: STA, global_sigma_frac: float = 0.3,
             wire_annotator=None) -> SstaResult:
    """Block-based SSTA over an already-constructed STA's graph.

    Per-arc delay sigmas come from the library's LVF tables; a
    ``global_sigma_frac`` fraction of each sigma is treated as the
    fully-correlated die-to-die component. Passing a
    :class:`repro.parasitics.statistical.StatisticalAnnotator` as
    ``wire_annotator`` adds statistical interconnect (SSPEF-style wire
    delay sigmas) on top.

    The deterministic STA must have been run first (``sta.run()``) so
    slews and loads are available.
    """
    if sta.prop is None:
        raise TimingError("run the deterministic STA before SSTA")
    result = SstaResult()
    constraints = sta.constraints

    clock_ports = {c.port for c in constraints.clocks.values()}
    for clock in constraints.clocks.values():
        root = PinRef("", clock.port)
        for direction in DIRECTIONS:
            result.arrivals[(root, direction)] = GaussianArrival(
                clock.source_latency
            )
    for port in sta.design.input_ports():
        if port in clock_ports:
            continue
        ref = PinRef("", port)
        mean = constraints.input_delays.get(port, 0.0)
        for direction in DIRECTIONS:
            result.arrivals[(ref, direction)] = GaussianArrival(mean)

    for ref in sta.graph.topo_order:
        for edge in sta.graph.in_edges.get(ref, []):
            if isinstance(edge, NetEdge):
                _ssta_net_edge(sta, result, edge, wire_annotator)
            else:
                _ssta_cell_edge(sta, result, edge, global_sigma_frac)

    _ssta_endpoints(sta, result)
    return result


def _merge(result: SstaResult, key, candidate: GaussianArrival) -> None:
    existing = result.arrivals.get(key)
    if existing is None:
        result.arrivals[key] = candidate
    else:
        result.arrivals[key] = clark_max(existing, candidate)


def _ssta_net_edge(sta: STA, result: SstaResult, edge: NetEdge,
                   wire_annotator=None) -> None:
    para = sta.parasitics.extract(edge.net_name)
    pin_cap = 2.0
    if not edge.sink.is_port:
        pin_cap = sta.graph.cell_of(edge.sink).pin(edge.sink.pin).capacitance
    delay = para.wire_delay(edge.sink, pin_cap)
    sigma = 0.0
    if wire_annotator is not None:
        sigma = wire_annotator.wire_delay_sigma(edge.net_name, edge.sink,
                                                pin_cap)
    for direction in DIRECTIONS:
        src = result.arrivals.get((edge.driver, direction))
        if src is None:
            continue
        _merge(result, (edge.sink, direction), src.shifted(delay, sigma))


def _ssta_cell_edge(sta: STA, result: SstaResult, edge: CellEdge,
                    global_frac: float) -> None:
    load = driver_load(sta.graph, sta.parasitics, edge.dst)
    for in_dir in DIRECTIONS:
        src = result.arrivals.get((edge.src, in_dir))
        if src is None:
            continue
        # Use the deterministic engine's propagated slew for table lookups.
        det = sta.prop.at(edge.src, in_dir)
        slew = det.slew_late if det.valid else 20.0
        for out_dir in edge.arc.sense.output_directions(in_dir):
            if out_dir not in edge.arc.timing:
                continue
            mean, _ = edge.arc.delay_and_slew(out_dir, slew, load)
            sigma = edge.arc.sigma(out_dir, slew, load, "late") or 0.0
            s_global = sigma * global_frac
            s_local = sigma * math.sqrt(max(1.0 - global_frac**2, 0.0))
            _merge(
                result,
                (edge.dst, out_dir),
                src.shifted(mean, s_local, s_global),
            )


def _ssta_endpoints(sta: STA, result: SstaResult) -> None:
    clock = sta.constraints.the_clock() if sta.constraints.clocks else None
    if clock is None:
        return
    for check in sta.graph.setup_checks():
        data = None
        for direction in DIRECTIONS:
            cand = result.arrivals.get((check.data_pin, direction))
            if cand is None:
                continue
            data = cand if data is None else clark_max(data, cand)
        if data is None:
            continue
        clk = result.arrivals.get((check.clock_pin, "rise"))
        clk_mean = clk.mean if clk else 0.0
        det_clk = sta.prop.at(check.clock_pin, "rise")
        clk_slew = det_clk.slew_late if det_clk.valid else clock.slew
        det_data = sta.prop.at(
            check.data_pin,
            "rise" if result.arrivals.get((check.data_pin, "rise")) else "fall",
        )
        data_slew = det_data.slew_late if det_data.valid else 20.0
        setup = check.arc.constraint_value("rise", data_slew, clk_slew)
        required = (
            clock.period + clk_mean - setup - clock.uncertainty_setup
            - sta.constraints.flat_setup_margin
        )
        # Slack distribution = required - data arrival.
        result.endpoint_slacks[check.data_pin] = GaussianArrival(
            mean=required - data.mean,
            sigma_local=data.sigma_local,
            sigma_global=data.sigma_global,
        )
