"""The Section 3.1 accuracy ladder: flat OCV -> AOCV -> POCV -> LVF.

Each model predicts the +3-sigma path-delay increment over nominal for a
set of critical paths; predictions are compared against Monte Carlo truth
(:func:`repro.variation.montecarlo.mc_path_delays`). The expected ranking
— the paper's claim that "LVF-based timing analysis has greater accuracy
than AOCV/POCV with respect to Monte Carlo SPICE results" — follows from
each model's information loss:

- *LVF* keeps per-arc, per-(slew, load) sigmas: only statistical error;
- *POCV* keeps one relative sigma per cell: loses the load dependence;
- *AOCV* keeps one sigma for the whole library, indexed by depth: loses
  the per-cell identity ("assumes all gates identical and identically
  loaded");
- *flat OCV* keeps a single factor: loses the depth averaging too.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import TimingError
from repro.liberty.aocv import AocvTable, arc_pocv_sigma, library_reference_sigma
from repro.sta.reports import TimingPath
from repro.variation.montecarlo import (
    _path_cell_stages,
    mc_path_delays,
    nominal_path_delay,
    path_delay_statistics,
)

MODELS = ("flat", "aocv", "pocv", "lvf")


def predicted_path_delta(
    sta,
    path: TimingPath,
    model: str,
    n_sigma: float = 3.0,
    flat_fraction: float = 0.10,
    aocv_table: Optional[AocvTable] = None,
) -> float:
    """Predicted +n-sigma delay increment (ps) over nominal for a path."""
    stages = _path_cell_stages(sta, path)
    if not stages:
        raise TimingError("path has no cell stages")
    nominal = [
        edge.arc.delay_and_slew(out_dir, in_slew, load)[0]
        for edge, out_dir, in_slew, load in stages
    ]
    cell_total = float(sum(nominal))

    if model == "flat":
        return flat_fraction * cell_total

    if model == "aocv":
        if aocv_table is None:
            ref = library_reference_sigma(
                [c for c in sta.library.cells.values()
                 if c.size == 1.0 and c.vt_flavor == "svt"]
            )
            aocv_table = AocvTable.from_reference_sigma(ref, n_sigma=n_sigma)
        derate = aocv_table.derate(len(stages), 0.0, "late")
        return (derate - 1.0) * cell_total

    if model == "pocv":
        var = 0.0
        for (edge, out_dir, in_slew, load), d in zip(stages, nominal):
            sigma_rel = arc_pocv_sigma(edge.arc, out_dir, "late")
            var += (sigma_rel * d) ** 2
        return n_sigma * math.sqrt(var)

    if model == "lvf":
        var = 0.0
        for edge, out_dir, in_slew, load in stages:
            sigma = edge.arc.sigma(out_dir, in_slew, load, "late")
            if sigma is None:
                raise TimingError("LVF sigmas missing from library")
            var += sigma**2
        return n_sigma * math.sqrt(var)

    raise TimingError(f"unknown variation model {model!r}; pick from {MODELS}")


@dataclass
class LadderRow:
    """Accuracy of one model over a path population."""

    model: str
    mean_abs_error: float  # |predicted - true| averaged over paths, ps
    mean_signed_error: float  # >0 = pessimistic on average
    predictions: List[float]


def true_path_deltas(
    sta,
    paths: Sequence[TimingPath],
    n_samples: int = 2000,
    seed: int = 0,
) -> List[float]:
    """Monte Carlo +3-sigma increments (p99.87 - nominal) per path."""
    out = []
    for i, path in enumerate(paths):
        samples = mc_path_delays(sta, path, n_samples=n_samples, seed=seed + i)
        nominal = nominal_path_delay(sta, path)
        out.append(float(np.percentile(samples, 99.87)) - nominal)
    return out


def ladder_comparison(
    sta,
    paths: Sequence[TimingPath],
    n_samples: int = 2000,
    seed: int = 0,
    flat_fraction: float = 0.10,
    models: Sequence[str] = MODELS,
) -> Dict[str, LadderRow]:
    """Run the full ladder over a path population.

    Returns per-model accuracy rows keyed by model name; the invariant the
    tests (and the paper) expect is
    ``err(lvf) <= err(pocv) <= err(aocv)`` on mixed-load path sets.
    """
    truth = true_path_deltas(sta, paths, n_samples=n_samples, seed=seed)
    rows: Dict[str, LadderRow] = {}
    for model in models:
        preds = [
            predicted_path_delta(sta, p, model, flat_fraction=flat_fraction)
            for p in paths
        ]
        errors = [pred - t for pred, t in zip(preds, truth)]
        rows[model] = LadderRow(
            model=model,
            mean_abs_error=float(np.mean(np.abs(errors))),
            mean_signed_error=float(np.mean(errors)),
            predictions=preds,
        )
    return rows
