"""Variation-aware timing analysis.

The model ladder of the paper's Section 3.1 — flat OCV, AOCV, POCV, LVF —
plus the Monte Carlo machinery that serves as ground truth:

- :mod:`repro.variation.derate` — builders for flat-OCV and AOCV derate
  configurations;
- :mod:`repro.variation.montecarlo` — Monte Carlo at two levels: sampling
  the LVF ground truth over STA paths/graphs, and transistor-level chain
  MC through :mod:`repro.spice` (the physical origin of the Fig 7
  asymmetry);
- :mod:`repro.variation.accuracy` — the accuracy-ladder experiment:
  per-model predicted 3-sigma path-delay deltas vs Monte Carlo truth.
"""

from repro.variation.derate import flat_ocv_derates, aocv_derates
from repro.variation.montecarlo import (
    mc_path_delays,
    path_delay_statistics,
    spice_chain_mc,
)
from repro.variation.accuracy import ladder_comparison, predicted_path_delta
from repro.variation.ssta import GaussianArrival, SstaResult, run_ssta

__all__ = [
    "flat_ocv_derates",
    "aocv_derates",
    "mc_path_delays",
    "path_delay_statistics",
    "spice_chain_mc",
    "ladder_comparison",
    "predicted_path_delta",
    "GaussianArrival",
    "SstaResult",
    "run_ssta",
]
