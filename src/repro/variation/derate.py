"""Builders for flat-OCV and AOCV derate configurations."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import LibraryError
from repro.liberty.aocv import AocvTable, library_reference_sigma
from repro.liberty.cell import Cell
from repro.liberty.library import Library
from repro.sta.propagation import Derates


def flat_ocv_derates(percent: float, clock_percent: Optional[float] = None
                     ) -> Derates:
    """Symmetric flat OCV: data/clock late = 1+p, early = 1-p.

    ``percent`` is the fractional derate (0.08 = 8%). The pre-AOCV
    methodology: one number for every path regardless of depth.
    """
    if not 0.0 <= percent < 1.0:
        raise LibraryError(f"derate fraction must be in [0, 1), got {percent}")
    cp = percent if clock_percent is None else clock_percent
    return Derates(
        data_late=1.0 + percent,
        data_early=1.0 - percent,
        clock_late=1.0 + cp,
        clock_early=1.0 - cp,
    )


def aocv_derates(
    library: Library,
    reference_cells: Optional[Sequence[Cell]] = None,
    n_sigma: float = 3.0,
    distance: float = 0.0,
) -> Derates:
    """AOCV derates built from the library's own sigma information.

    The reference sigma is the mean POCV sigma over ``reference_cells``
    (default: all X1 SVT cells) — AOCV's defining approximation.
    """
    if reference_cells is None:
        reference_cells = [
            c for c in library.cells.values()
            if c.size == 1.0 and c.vt_flavor == "svt"
        ]
    sigma = library_reference_sigma(list(reference_cells))
    table = AocvTable.from_reference_sigma(sigma, n_sigma=n_sigma)
    return Derates(aocv=table, aocv_distance=distance)
