"""Monte Carlo timing analysis.

Two levels of MC, matching how the paper's evidence was produced:

1. **STA-level** (:func:`mc_path_delays`): sample per-stage delay
   perturbations from the library's LVF sigma tables — asymmetric (larger
   late than early sigma) — over the cell edges of a reported path. This
   is the "ground truth" the model-accuracy ladder is judged against.

2. **Device-level** (:func:`spice_chain_mc`): build an inverter chain at
   the transistor level, perturb device thresholds/current factors, and
   transient-simulate each sample. The resulting delay distribution is
   right-skewed *emergently* (delay is convex in threshold voltage) —
   the physical origin of Fig 7's "setup long tail".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import TimingError
from repro.sta.graph import CellEdge, NetEdge
from repro.sta.propagation import driver_load
from repro.sta.reports import TimingPath


@dataclass
class PathDelayStats:
    """Statistics of a Monte-Carlo path-delay sample set (ps)."""

    mean: float
    nominal: float
    sigma: float
    skewness: float
    sigma_late: float  # (p99.87 - median) / 3
    sigma_early: float  # (median - p0.13) / 3

    @property
    def asymmetry(self) -> float:
        """sigma_late / sigma_early; > 1 means a setup long tail."""
        if self.sigma_early <= 0:
            return float("inf")
        return self.sigma_late / self.sigma_early


def path_delay_statistics(samples: np.ndarray,
                          nominal: Optional[float] = None) -> PathDelayStats:
    """Summarize an MC sample set, including the tail asymmetry."""
    samples = np.asarray(samples, dtype=float)
    if samples.size < 8:
        raise TimingError("need at least 8 MC samples for statistics")
    mean = float(samples.mean())
    sigma = float(samples.std())
    med = float(np.median(samples))
    p_hi = float(np.percentile(samples, 99.87))
    p_lo = float(np.percentile(samples, 0.13))
    centered = samples - mean
    skew = float((centered**3).mean() / max(sigma, 1e-12) ** 3)
    return PathDelayStats(
        mean=mean,
        nominal=nominal if nominal is not None else med,
        sigma=sigma,
        skewness=skew,
        sigma_late=(p_hi - med) / 3.0,
        sigma_early=(med - p_lo) / 3.0,
    )


def _path_cell_stages(sta, path: TimingPath) -> List[Tuple[CellEdge, str, float, float]]:
    """(edge, out_dir, in_slew, load) for each cell stage along a path."""
    stages = []
    prev_slew = sta.constraints.default_input_slew
    for i, point in enumerate(path.points):
        if point.kind != "cell":
            prev_slew = point.slew
            continue
        # Reconstruct which edge produced this point from backpointers.
        arr = sta.prop.at(point.ref, point.direction)
        pred = arr.pred_late if path.mode == "setup" else arr.pred_early
        if pred is None:
            continue
        edge, _ = pred
        if not isinstance(edge, CellEdge):
            continue
        load = driver_load(sta.graph, sta.parasitics, edge.dst)
        in_slew = path.points[i - 1].slew if i > 0 else prev_slew
        stages.append((edge, point.direction, in_slew, load))
        prev_slew = point.slew
    return stages


def mc_path_delays(
    sta,
    path: TimingPath,
    n_samples: int = 2000,
    seed=0,
    global_sigma_frac: float = 0.0,
) -> np.ndarray:
    """Sample total path delay with per-stage LVF-sigma perturbations.

    ``seed`` is anything ``numpy.random.default_rng`` accepts — an int,
    a ``SeedSequence``, or an already-constructed ``Generator`` (passed
    through unchanged), so callers can inject one seeded stream across a
    whole experiment.

    Each stage draws an independent standard normal z; the delay
    perturbation is ``z * sigma_late`` for z > 0 and ``z * sigma_early``
    for z < 0 — the asymmetric two-sided model encoded in the LVF tables.
    An optional fully-correlated component (``global_sigma_frac`` of each
    stage's sigma) models die-to-die residue.

    Returns an array of total cell-stage delays (wire delays are held
    nominal and added as a constant).
    """
    stages = _path_cell_stages(sta, path)
    if not stages:
        raise TimingError("path has no cell stages to perturb")
    rng = np.random.default_rng(seed)

    nominal_delays = []
    sig_late = []
    sig_early = []
    for edge, out_dir, in_slew, load in stages:
        d, _ = edge.arc.delay_and_slew(out_dir, in_slew, load)
        sl = edge.arc.sigma(out_dir, in_slew, load, "late")
        se = edge.arc.sigma(out_dir, in_slew, load, "early")
        if sl is None or se is None:
            raise TimingError(
                f"arc on {edge.instance} lacks LVF sigmas; MC needs them"
            )
        nominal_delays.append(d)
        sig_late.append(sl)
        sig_early.append(se)

    nominal = np.array(nominal_delays)
    s_late = np.array(sig_late)
    s_early = np.array(sig_early)
    wire_delay = path.net_delay()

    z = rng.standard_normal((n_samples, len(stages)))
    if global_sigma_frac > 0.0:
        zg = rng.standard_normal((n_samples, 1))
        z = np.sqrt(1.0 - global_sigma_frac**2) * z + global_sigma_frac * zg
    perturb = np.where(z > 0.0, z * s_late, z * s_early)
    totals = (nominal + perturb).sum(axis=1) + wire_delay
    return totals


def nominal_path_delay(sta, path: TimingPath) -> float:
    """Nominal (unperturbed) cell+wire delay of the same stage model used
    by :func:`mc_path_delays`."""
    stages = _path_cell_stages(sta, path)
    total = path.net_delay()
    for edge, out_dir, in_slew, load in stages:
        d, _ = edge.arc.delay_and_slew(out_dir, in_slew, load)
        total += d
    return total


# ---------------------------------------------------------------------- #
# device-level MC


def _chain_mc_sample(n_stages: int, vdd: float, temp_c: float,
                     sigma_vt: float, dt: float, index: int,
                     rng: np.random.Generator) -> float:
    """Build, perturb and simulate one inverter-chain MC sample.

    Module-level (picklable) so :func:`repro.spice.montecarlo.
    evaluate_samples` can fan samples out over a process pool.
    """
    from repro.spice.gates import add_inverter
    from repro.spice.measure import delay_between
    from repro.spice.network import GROUND, Circuit
    from repro.spice.stimulus import Ramp
    from repro.spice.transient import simulate

    circuit = Circuit("chain_mc", temp_c=temp_c)
    vdd_node = circuit.add_vdd(vdd)
    prev = "in"
    for i in range(n_stages):
        out = f"x{i}"
        add_inverter(circuit, f"u{i}", prev, out, vdd_node)
        circuit.add_capacitor(out, GROUND, 3.0)
        prev = out
    circuit.add_source("in", Ramp(0.0, 30.0, 0.0, vdd))
    for fet in circuit.transistors:
        fet.vt_shift = float(rng.normal(0.0, sigma_vt))
    horizon = 120.0 + 45.0 * n_stages
    result = simulate(circuit, t_stop=horizon, dt=dt, t_start=-40.0,
                      record=["in", prev])
    out_dir = "rise" if n_stages % 2 == 0 else "fall"
    return delay_between(
        result.times, result.wave("in"), result.wave(prev),
        vdd, "rise", out_dir,
    )


def spice_chain_mc(
    n_stages: int = 8,
    n_samples: int = 200,
    vdd: float = 0.8,
    temp_c: float = 25.0,
    seed: int = 0,
    sigma_vt: float = 0.03,
    dt: float = 1.0,
    jobs: int = 1,
    executor: str = "thread",
) -> np.ndarray:
    """Transistor-level MC of an inverter-chain delay.

    Each sample builds the chain, perturbs every device's threshold
    (N(0, sigma_vt)) from its own spawned generator, and re-simulates.
    Returns total 50%-to-50% delays (ps). The distribution is
    right-skewed because delay grows super-linearly as overdrive
    shrinks. Samples draw from per-sample seeds spawned off ``seed``, so
    results are bit-identical for any ``jobs`` count.
    """
    from functools import partial

    from repro.spice.montecarlo import evaluate_samples

    sample = partial(_chain_mc_sample, n_stages, vdd, temp_c, sigma_vt, dt)
    delays = evaluate_samples(sample, n_samples, seed=seed, jobs=jobs,
                              executor=executor)
    return np.asarray(delays, dtype=float)
