"""BEOL corner definitions and the corner "super-explosion".

Conventional BEOL corners (CBCs) apply one worst/best condition to *every*
layer simultaneously: C-worst (Cw), C-best (Cb), coupling-C-worst (Ccw),
RC-worst (RCw), RC-best (RCb), and typical. Section 3.2 of the paper (and
[Chan, Dobre, Kahng, ICCD'14]) points out the pessimism of this
homogeneity, since per-layer variations are not fully correlated — and
Section 2.3 counts the combinatorial cost of refusing the homogeneity:
independent per-layer corners explode as (choices)^(layers).

This module provides both: homogeneous CBCs (with multi-patterned layers
taking proportionally wider excursions) and the counting/pruning helpers
for the explosion experiment, plus :func:`tightened_corner` — the TBC
transform that scales a corner's excursions toward typical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.errors import CornerError
from repro.beol.stack import BeolStack, MetalLayer


@dataclass(frozen=True)
class LayerScales:
    """Multipliers on a layer's nominal R / ground-C / coupling-C."""

    r: float = 1.0
    c_ground: float = 1.0
    c_coupling: float = 1.0

    def tightened(self, factor: float) -> "LayerScales":
        """Pull every multiplier toward 1.0 by ``factor`` (0 = typical,
        1 = unchanged)."""
        return LayerScales(
            r=1.0 + factor * (self.r - 1.0),
            c_ground=1.0 + factor * (self.c_ground - 1.0),
            c_coupling=1.0 + factor * (self.c_coupling - 1.0),
        )


@dataclass(frozen=True)
class BeolCorner:
    """A concrete extraction corner: per-layer scale factors."""

    name: str
    scales: Tuple[Tuple[str, LayerScales], ...]  # (layer name, scales)

    def layer_scales(self, layer_name: str) -> LayerScales:
        for name, s in self.scales:
            if name == layer_name:
                return s
        raise CornerError(f"corner {self.name} has no layer {layer_name!r}")

    @property
    def layer_names(self) -> List[str]:
        return [name for name, _ in self.scales]


#: Base (single-patterned) excursions for each conventional corner family.
#: Physically: a wide/thick wire (Cw) has more capacitance and less
#: resistance; a narrow wire (Cb/RCw) the reverse.
_CBC_BASE: Dict[str, LayerScales] = {
    "typ": LayerScales(1.0, 1.0, 1.0),
    "cw": LayerScales(0.94, 1.14, 1.18),
    "cb": LayerScales(1.06, 0.86, 0.84),
    "ccw": LayerScales(0.98, 1.04, 1.30),
    "ccb": LayerScales(1.02, 0.98, 0.74),
    "rcw": LayerScales(1.22, 1.04, 1.06),
    "rcb": LayerScales(0.80, 0.96, 0.94),
}


def _scale_excursion(base: LayerScales, factor: float) -> LayerScales:
    """Widen a corner excursion by ``factor`` (multi-patterning penalty)."""
    return LayerScales(
        r=1.0 + factor * (base.r - 1.0),
        c_ground=1.0 + factor * (base.c_ground - 1.0),
        c_coupling=1.0 + factor * (base.c_coupling - 1.0),
    )


def conventional_corners(stack: BeolStack) -> Dict[str, BeolCorner]:
    """The homogeneous CBC set for a stack.

    Every layer gets the same corner family, but multi-patterned layers
    take wider excursions (their ``variability_factor``).
    """
    corners = {}
    for name, base in _CBC_BASE.items():
        scales = tuple(
            (layer.name, _scale_excursion(base, layer.variability_factor))
            for layer in stack.layers
        )
        corners[name] = BeolCorner(name=name, scales=scales)
    return corners


def tightened_corner(corner: BeolCorner, factor: float,
                     name: str = "") -> BeolCorner:
    """A tightened BEOL corner (TBC): excursions scaled toward typical.

    ``factor`` in [0, 1]: 1.0 returns the corner unchanged, 0.0 returns
    typical. [Chan-Dobre-Kahng ICCD'14] signs off TBC-safe paths at such
    corners to recover the pessimism quantified by the alpha metric
    (:mod:`repro.core.tbc`).
    """
    if not 0.0 <= factor <= 1.0:
        raise CornerError(f"tightening factor must be in [0, 1], got {factor}")
    return BeolCorner(
        name=name or f"{corner.name}_tbc{int(round(factor * 100))}",
        scales=tuple(
            (layer, s.tightened(factor)) for layer, s in corner.scales
        ),
    )


def per_layer_corner_space(
    stack: BeolStack, families: Iterable[str] = ("typ", "cw", "cb", "rcw", "rcb")
) -> int:
    """Size of the heterogeneous per-layer corner space: len(families) per
    multi-patterned layer (single-patterned layers track together, a common
    simplification), times the families of the correlated single-patterned
    group."""
    families = list(families)
    n_mp = len(stack.multi_patterned_layers())
    return len(families) ** n_mp * len(families)


def corner_explosion_count(
    n_modes: int,
    n_voltage_domains: int,
    stack: BeolStack,
    beol_families: int = 5,
    temperatures: int = 3,
) -> Dict[str, int]:
    """The Section 2.3 counting exercise: scenario count components and
    their product, for homogeneous vs per-layer BEOL corner handling."""
    homogeneous = n_modes * n_voltage_domains * temperatures * beol_families
    per_layer = (
        n_modes
        * n_voltage_domains
        * temperatures
        * per_layer_corner_space(
            stack, families=["f"] * beol_families
        )
    )
    return {
        "modes": n_modes,
        "voltage_domains": n_voltage_domains,
        "temperatures": temperatures,
        "beol_homogeneous": beol_families,
        "scenarios_homogeneous": homogeneous,
        "scenarios_per_layer": per_layer,
    }


def dominant_corner_for_path(gate_delay_fraction: float) -> str:
    """Section 2.3's gate-wire balance rule of thumb: gate-dominated paths
    (low-voltage, HVT, short wires) are worst at Cw; wire-dominated paths
    (high-voltage, long wires) are worst at RCw."""
    if not 0.0 <= gate_delay_fraction <= 1.0:
        raise CornerError("gate_delay_fraction must be in [0, 1]")
    return "cw" if gate_delay_fraction >= 0.7 else "rcw"
