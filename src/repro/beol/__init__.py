"""BEOL stack modeling, multi-patterning variation and corner algebra.

The paper's Section 2.2-2.3 territory: highly resistive sub-20nm metal
stacks, SADP/SAQP-induced CD variation (Fig 5), and the combinatorial
"corner super-explosion" of per-layer BEOL corners.
"""

from repro.beol.stack import BeolStack, MetalLayer, default_stack
from repro.beol.corners import (
    BeolCorner,
    conventional_corners,
    corner_explosion_count,
    per_layer_corner_space,
    tightened_corner,
)
from repro.beol.sadp import SadpSigmas, line_cd_sigma, PatterningCase

__all__ = [
    "BeolStack",
    "MetalLayer",
    "default_stack",
    "BeolCorner",
    "conventional_corners",
    "tightened_corner",
    "corner_explosion_count",
    "per_layer_corner_space",
    "SadpSigmas",
    "line_cd_sigma",
    "PatterningCase",
]
