"""SADP/SAQP line-CD variance: the Fig 5(c) formulas, implemented literally.

In SID-type (spacer-is-dielectric) self-aligned double patterning, a wire
edge can be defined by a mandrel edge, a spacer edge or a block (cut-mask)
edge, and the CD variance of the wire depends on which combination formed
it:

- case I   — both edges from mandrel edges:      sigma^2 = sigma_M^2
- case II  — both edges from spacer edges:       sigma^2 = sigma_M^2 + 2 sigma_S^2
- case III — mandrel edge + block edge:          sigma^2 = (0.5 sigma_M)^2
              + sigma_MB^2 + (0.5 sigma_B)^2
- case IV  — spacer edge + block edge:           sigma^2 = (0.5 sigma_M)^2
              + sigma_S^2 + sigma_MB^2 + (0.5 sigma_B)^2

(sigma_M: mandrel CD, sigma_S: spacer thickness, sigma_B: block CD,
sigma_MB: mandrel-to-block overlay.)
"""

from __future__ import annotations

import enum
import math
import random
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.errors import CornerError


class PatterningCase(enum.Enum):
    """Which process edges define the two sides of a wire segment."""

    MANDREL_MANDREL = "i"
    SPACER_SPACER = "ii"
    MANDREL_BLOCK = "iii"
    SPACER_BLOCK = "iv"


@dataclass(frozen=True)
class SadpSigmas:
    """Process-step standard deviations, nm."""

    mandrel: float = 1.0
    spacer: float = 0.8
    block: float = 1.5
    mandrel_block_overlay: float = 1.2

    def __post_init__(self):
        for field_name in ("mandrel", "spacer", "block", "mandrel_block_overlay"):
            if getattr(self, field_name) < 0:
                raise CornerError(f"sigma {field_name} must be non-negative")


def line_cd_variance(case: PatterningCase, s: SadpSigmas) -> float:
    """CD variance (nm^2) of a wire formed by the given patterning case."""
    if case is PatterningCase.MANDREL_MANDREL:
        return s.mandrel**2
    if case is PatterningCase.SPACER_SPACER:
        return s.mandrel**2 + 2.0 * s.spacer**2
    if case is PatterningCase.MANDREL_BLOCK:
        return (0.5 * s.mandrel) ** 2 + s.mandrel_block_overlay**2 + (0.5 * s.block) ** 2
    if case is PatterningCase.SPACER_BLOCK:
        return (
            (0.5 * s.mandrel) ** 2
            + s.spacer**2
            + s.mandrel_block_overlay**2
            + (0.5 * s.block) ** 2
        )
    raise CornerError(f"unknown patterning case {case!r}")


def line_cd_sigma(case: PatterningCase, s: SadpSigmas) -> float:
    """CD standard deviation (nm) for a patterning case."""
    return math.sqrt(line_cd_variance(case, s))


def all_case_sigmas(s: SadpSigmas) -> Dict[PatterningCase, float]:
    """Sigma for every case — the Fig 5(c) table."""
    return {case: line_cd_sigma(case, s) for case in PatterningCase}


def assign_cases(n_segments: int, seed: int = 0,
                 cut_fraction: float = 0.3) -> List[PatterningCase]:
    """Deterministic SID-SADP case assignment for a row of wire segments.

    Pure SADP alternates mandrel-defined and spacer-defined wires (cases I
    and II); segments whose line-end falls under a cut mask (a
    ``cut_fraction`` of them) get the corresponding block-edge case
    (III / IV). This mirrors how a colorer would classify a routed track.
    """
    if not 0.0 <= cut_fraction <= 1.0:
        raise CornerError("cut_fraction must be in [0, 1]")
    rng = random.Random(seed)
    cases: List[PatterningCase] = []
    for i in range(n_segments):
        mandrel_defined = i % 2 == 0
        cut = rng.random() < cut_fraction
        if mandrel_defined:
            cases.append(
                PatterningCase.MANDREL_BLOCK if cut
                else PatterningCase.MANDREL_MANDREL
            )
        else:
            cases.append(
                PatterningCase.SPACER_BLOCK if cut
                else PatterningCase.SPACER_SPACER
            )
    return cases


def cd_sigma_to_rc_sensitivity(
    cd_sigma_nm: float, nominal_width_nm: float
) -> Dict[str, float]:
    """First-order relative R and C sigmas from a CD sigma.

    A wider wire has proportionally lower resistance (``dR/R = -dW/W``)
    and, to first order, higher coupling capacitance to its neighbours
    (spacing shrinks as width grows at fixed pitch): ``dCc/Cc = +dW/S``
    with spacing ~= width at a 50% duty. Ground capacitance is far less
    sensitive (fringe-dominated); we use a 0.3 factor.
    """
    if nominal_width_nm <= 0:
        raise CornerError("nominal width must be positive")
    rel = cd_sigma_nm / nominal_width_nm
    return {
        "r_rel_sigma": rel,
        "c_coupling_rel_sigma": rel,
        "c_ground_rel_sigma": 0.3 * rel,
    }


def segment_population_rc_sigmas(
    n_segments: int,
    s: SadpSigmas,
    nominal_width_nm: float,
    seed: int = 0,
    cut_fraction: float = 0.3,
) -> List[Dict[str, float]]:
    """Per-segment RC sigmas for a track population — the bimodal (by
    patterning case) distribution that makes SADP layers first-class
    citizens in variation signoff."""
    cases = assign_cases(n_segments, seed=seed, cut_fraction=cut_fraction)
    return [
        dict(
            case=case.value,
            **cd_sigma_to_rc_sensitivity(line_cd_sigma(case, s), nominal_width_nm),
        )
        for case in cases
    ]
