"""Metal-fill effects on timing.

Section 4, comment 2: "Oncoming worries include metal fill effects, as
density constraints continue to tighten and the freedom to define fill
exclude windows (e.g., around clock routes) decreases. How to comprehend
'actual' foundry-specific fill early in the design closure process is an
open issue."

This module models exactly that loop: a density rule per routing tile, a
fill engine that inserts floating fill where density is short, coupling
from fill into the signal nets crossing each filled tile (delivered
through ``Net.extra_cap``, which parasitic synthesis already honours),
and an *exclude policy* that can protect clock nets — whose erosion the
paper warns about — at the cost of requiring more fill elsewhere.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.beol.stack import BeolStack
from repro.errors import CornerError
from repro.netlist.design import Design
from repro.parasitics.synthesis import ParasiticExtractor

Tile = Tuple[str, int, int]  # (layer, tile_x, tile_y)


@dataclass(frozen=True)
class FillPolicy:
    """Density rule and fill electrical model.

    Attributes:
        min_density: required metal density per tile (0..1).
        tile_um: tile edge length, um.
        fill_cap_per_um: coupling capacitance added per um of signal wire
            in a filled tile, fF/um.
        exclude_clock_nets: keep fill out of tiles traversed by clock
            nets (the shrinking "fill exclude window").
    """

    min_density: float = 0.25
    tile_um: float = 40.0
    fill_cap_per_um: float = 0.04
    exclude_clock_nets: bool = True

    def __post_init__(self):
        if not 0.0 < self.min_density < 1.0:
            raise CornerError("min_density must be in (0, 1)")
        if self.tile_um <= 0:
            raise CornerError("tile size must be positive")


@dataclass
class FillReport:
    """What the fill engine did."""

    tiles_total: int
    tiles_filled: int
    tiles_excluded: int
    nets_affected: int
    total_added_cap: float  # fF
    per_net_cap: Dict[str, float] = field(default_factory=dict)

    @property
    def fill_fraction(self) -> float:
        if self.tiles_total == 0:
            return 0.0
        return self.tiles_filled / self.tiles_total


class FillEngine:
    """Density analysis and fill insertion for one design."""

    def __init__(self, design: Design, extractor: ParasiticExtractor,
                 stack: BeolStack, policy: FillPolicy = FillPolicy(),
                 clock_nets: Optional[Set[str]] = None):
        self.design = design
        self.extractor = extractor
        self.stack = stack
        self.policy = policy
        self.clock_nets = clock_nets or {"clk"}

    # ------------------------------------------------------------------ #

    def net_tiles(self, net_name: str) -> List[Tile]:
        """Tiles a net's route crosses (straight-line approximation along
        its bounding box from the driver region)."""
        para = self.extractor.extract(net_name)
        xs, ys = [], []
        for ref in self.design.get_net(net_name).pins():
            if ref.is_port:
                continue
            loc = self.design.instance(ref.instance).location
            if loc is not None:
                xs.append(loc[0])
                ys.append(loc[1])
        if not xs:
            return []
        t = self.policy.tile_um
        tiles: List[Tile] = []
        x_lo, x_hi = min(xs), max(xs)
        y_lo, y_hi = min(ys), max(ys)
        for tx in range(int(x_lo // t), int(x_hi // t) + 1):
            for ty in range(int(y_lo // t), int(y_hi // t) + 1):
                tiles.append((para.layer_name, tx, ty))
        return tiles

    def density_map(self) -> Dict[Tile, float]:
        """Metal density per tile: routed wire area / tile area."""
        t = self.policy.tile_um
        area = t * t
        density: Dict[Tile, float] = {}
        for net_name, net in self.design.nets.items():
            if net.driver is None or not net.loads:
                continue
            tiles = self.net_tiles(net_name)
            if not tiles:
                continue
            para = self.extractor.extract(net_name)
            layer = self.stack.layer(para.layer_name)
            wire_area = para.length * layer.pitch
            share = wire_area / len(tiles)
            for tile in tiles:
                density[tile] = density.get(tile, 0.0) + share / area
        return density

    def insert_fill(self) -> FillReport:
        """Fill under-dense tiles and couple the fill into signal nets.

        Every net crossing a filled tile gains
        ``fill_cap_per_um * (net length / tiles crossed)`` of extra
        capacitance per filled tile. Clock-net tiles are excluded when
        the policy protects them.
        """
        density = self.density_map()
        excluded: Set[Tile] = set()
        if self.policy.exclude_clock_nets:
            for net_name in self.clock_nets & set(self.design.nets):
                excluded.update(self.net_tiles(net_name))

        filled = {
            tile for tile, d in density.items()
            if d < self.policy.min_density and tile not in excluded
        }

        report = FillReport(
            tiles_total=len(density),
            tiles_filled=len(filled),
            tiles_excluded=len(excluded & set(density)),
            nets_affected=0,
            total_added_cap=0.0,
        )
        for net_name, net in self.design.nets.items():
            if net.driver is None or not net.loads:
                continue
            tiles = self.net_tiles(net_name)
            if not tiles:
                continue
            hit = sum(1 for tile in tiles if tile in filled)
            if hit == 0:
                continue
            para = self.extractor.extract(net_name)
            added = (
                self.policy.fill_cap_per_um
                * (para.length / len(tiles))
                * hit
            )
            net.extra_cap += added
            report.per_net_cap[net_name] = added
            report.nets_affected += 1
            report.total_added_cap += added
        # Parasitics must be re-extracted to see the new caps.
        self.extractor.invalidate()
        return report
