"""BEOL metal-stack definition.

A 16nm-class stack: thin, highly resistive double-patterned lower layers
(the "rise of the MOL and BEOL"), intermediate single-patterned layers,
and thick low-resistance upper layers for clocks and long routes. Per-um R
and C values are representative rather than foundry-exact; what matters
for the paper's experiments is the R-vs-C contrast between layers and the
larger variability of multi-patterned layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import CornerError

#: Copper-like resistance temperature coefficient, per degree C.
R_TEMP_COEFF = 0.0035


@dataclass(frozen=True)
class MetalLayer:
    """One routing layer.

    Attributes:
        name: layer name ("M2").
        r_per_um: wire resistance, kohm per um, at 25 C.
        c_ground_per_um: grounded capacitance, fF per um.
        c_coupling_per_um: coupling capacitance to neighbours, fF per um.
        patterning: "single", "sadp" or "saqp" — multi-patterned layers
            carry proportionally wider corner excursions.
        pitch: routing pitch, um (used by detailed-route-style estimates).
    """

    name: str
    r_per_um: float
    c_ground_per_um: float
    c_coupling_per_um: float
    patterning: str = "single"
    pitch: float = 0.1

    @property
    def is_multi_patterned(self) -> bool:
        return self.patterning in ("sadp", "saqp")

    @property
    def variability_factor(self) -> float:
        """Relative corner-excursion multiplier for this layer."""
        return {"single": 1.0, "sadp": 1.4, "saqp": 1.8}[self.patterning]

    def r_at(self, temp_c: float) -> float:
        """Temperature-adjusted resistance per um (metal R always rises
        with temperature — half of the gate-wire-balance story)."""
        return self.r_per_um * (1.0 + R_TEMP_COEFF * (temp_c - 25.0))


@dataclass(frozen=True)
class BeolStack:
    """An ordered metal stack (lowest layer first)."""

    name: str
    layers: Tuple[MetalLayer, ...]

    def layer(self, name: str) -> MetalLayer:
        for l in self.layers:
            if l.name == name:
                return l
        raise CornerError(f"stack {self.name} has no layer {name!r}")

    def multi_patterned_layers(self) -> List[MetalLayer]:
        return [l for l in self.layers if l.is_multi_patterned]

    def layer_for_route(self, length_um: float, ndr: bool = False) -> MetalLayer:
        """Routing-layer assignment by net length: short nets on thin
        lower metal, long nets promoted upward; NDR promotes one extra
        level (the closure trick of Fig 1's fix list)."""
        if length_um < 15.0:
            idx = 1
        elif length_um < 60.0:
            idx = min(3, len(self.layers) - 1)
        else:
            idx = min(5, len(self.layers) - 1)
        if ndr:
            idx = min(idx + 1, len(self.layers) - 1)
        return self.layers[idx]


def default_stack() -> BeolStack:
    """The framework's reference 8-layer 16nm-class stack."""
    return BeolStack(
        name="repro16_8lm",
        layers=(
            MetalLayer("M1", 0.025, 0.10, 0.10, patterning="sadp", pitch=0.064),
            MetalLayer("M2", 0.020, 0.10, 0.11, patterning="sadp", pitch=0.064),
            MetalLayer("M3", 0.012, 0.11, 0.10, patterning="sadp", pitch=0.080),
            MetalLayer("M4", 0.006, 0.12, 0.09, patterning="single", pitch=0.100),
            MetalLayer("M5", 0.004, 0.13, 0.08, patterning="single", pitch=0.120),
            MetalLayer("M6", 0.002, 0.15, 0.07, patterning="single", pitch=0.200),
            MetalLayer("M7", 0.0012, 0.17, 0.06, patterning="single", pitch=0.400),
            MetalLayer("M8", 0.0008, 0.18, 0.05, patterning="single", pitch=0.800),
        ),
    )
