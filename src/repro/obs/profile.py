"""Opt-in profiling hooks: per-span cProfile capture for named hot spans.

Tracing tells you *which* phase is slow; profiling tells you *why*. A
:class:`SpanProfiler` registers with a :class:`~repro.obs.tracing.Tracer`
and, whenever a span whose name it watches opens, runs the span's body
under ``cProfile``, aggregating the captured stats per span name across
every occurrence.

CPython allows one active profiler per thread, so the hook is strictly
re-entrancy-guarded: a watched span opening inside an already-profiled
span (on the same thread) is skipped rather than crashing the tracer —
the outer capture already contains the inner frames. Unwatched spans
cost one set lookup; tracers without a profiler skip even that.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import threading
from typing import Dict, Iterable, List, Optional

__all__ = ["SpanProfiler"]


class SpanProfiler:
    """Aggregates cProfile stats for spans with registered names.

    Args:
        names: span names to profile (e.g. ``{"retime_cone",
            "full_update"}``). Everything else passes through untouched.
    """

    def __init__(self, names: Iterable[str]):
        self.names = frozenset(names)
        self._lock = threading.Lock()
        self._local = threading.local()
        #: one aggregated pstats.Stats per profiled span name
        self._stats: Dict[str, pstats.Stats] = {}
        #: spans skipped because a profile was already running
        self.skipped = 0

    # ------------------------------------------------------------------ #
    # tracer hooks (called by Tracer._push / Tracer._pop)

    def span_started(self, span_obj) -> None:
        if span_obj.name not in self.names:
            return
        if getattr(self._local, "active", None) is not None:
            self.skipped += 1
            return
        profiler = cProfile.Profile()
        self._local.active = (span_obj.span_id, profiler)
        profiler.enable()

    def span_finished(self, span_obj) -> None:
        active = getattr(self._local, "active", None)
        if active is None or active[0] != span_obj.span_id:
            return
        span_id, profiler = active
        profiler.disable()
        self._local.active = None
        stats = pstats.Stats(profiler)
        with self._lock:
            existing = self._stats.get(span_obj.name)
            if existing is None:
                self._stats[span_obj.name] = stats
            else:
                existing.add(profiler)

    # ------------------------------------------------------------------ #
    # results

    def profiled_names(self) -> List[str]:
        with self._lock:
            return sorted(self._stats)

    def stats(self, name: str) -> Optional[pstats.Stats]:
        """Aggregated stats for one span name (None before any capture)."""
        with self._lock:
            return self._stats.get(name)

    def render(self, name: str, top: int = 12) -> str:
        """Top functions by cumulative time inside spans named ``name``."""
        stats = self.stats(name)
        if stats is None:
            return f"no profile captured for span {name!r}"
        buffer = io.StringIO()
        stats.stream = buffer  # pstats prints to its stream attribute
        stats.sort_stats("cumulative").print_stats(top)
        return f"profile for span {name!r}:\n{buffer.getvalue().rstrip()}"
