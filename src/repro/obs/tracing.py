"""Hierarchical tracing: spans, the active-tracer protocol, ingestion.

The closure loop (the paper's Fig 1) is an iterative, multi-engine
pipeline; knowing *where* its wall-clock goes — which corner, which fix
stage, which cone re-time — is the observability commercial STA tools
surface via run reports. This module provides the substrate:

- **Spans** — :class:`Span` is one timed phase with a name, key/value
  attributes, monotonic start/duration, and a parent link, so a run
  becomes a tree: ``signoff -> scenario -> ...`` or
  ``closure -> iteration -> stage -> retime -> retime_cone``.
- **Deterministic IDs** — span ids are sequential integers assigned in
  creation order under a lock. Instrumented code paths allocate spans
  from a single thread (workers use private tracers, see below), so two
  identical runs produce identical span trees — tests can assert on
  structure, not just presence.
- **Thread/process-safe collection** — each thread has its own span
  *stack* (parent linkage never crosses threads by accident) while the
  collected list is shared under a lock. Worker code (thread *or*
  process pools) records into a private :class:`Tracer` whose spans are
  returned with the worker's result and :meth:`Tracer.ingest`-ed into
  the parent tracer afterwards — re-numbered and re-parented
  deterministically, surviving pickling across the process boundary.
- **Cheap disabled path** — module-level :func:`span` consults the
  active tracer (thread-local override, then process default); when none
  is installed it returns a shared no-op span. Disabled cost is one
  function call, one thread-local read and one global read — small
  enough that instrumentation stays compiled in everywhere
  (the benchmark suite enforces <2% overhead on the closure workload).

Timestamps are ``time.perf_counter()`` values. On the platforms this
repo targets that clock is CLOCK_MONOTONIC, shared by parent and child
processes, so worker spans interleave correctly with parent spans in an
exported trace without rebasing.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

__all__ = [
    "Span",
    "Tracer",
    "NullSpan",
    "NULL_SPAN",
    "span",
    "active_tracer",
    "set_default_tracer",
    "use",
]


@dataclass
class Span:
    """One timed phase of a run.

    ``start_s`` is a raw ``perf_counter`` reading; ``duration_s`` is
    filled when the span closes (0.0 while open). ``attrs`` holds
    whatever the instrumented site attached (scenario name, cone size,
    engine list, ...). Plain dataclass fields only, so spans pickle
    across process-pool boundaries unchanged.
    """

    name: str
    span_id: int
    parent_id: Optional[int]
    start_s: float
    duration_s: float = 0.0
    attrs: Dict[str, Any] = field(default_factory=dict)
    pid: int = 0
    tid: int = 0

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes mid-span (e.g. a cone size known at exit)."""
        self.attrs.update(attrs)
        return self

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s


class NullSpan:
    """The shared do-nothing span returned when tracing is disabled.

    Mimics just enough of :class:`Span` (``set``, ``duration_s``,
    ``attrs``) that instrumented code never branches on enablement.
    """

    __slots__ = ()

    duration_s = 0.0
    span_id = 0
    parent_id = None
    name = ""

    @property
    def attrs(self) -> Dict[str, Any]:
        return {}

    def set(self, **attrs: Any) -> "NullSpan":
        return self

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


NULL_SPAN = NullSpan()


class _SpanContext:
    """Context manager for one live span of one tracer."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span_obj: Span):
        self._tracer = tracer
        self.span = span_obj

    def __enter__(self) -> Span:
        self._tracer._push(self.span)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.span.attrs.setdefault("error", exc_type.__name__)
        self._tracer._pop(self.span)
        return False


class Tracer:
    """Collects a tree of spans (see module docstring).

    Args:
        profiler: optional :class:`repro.obs.profile.SpanProfiler`;
            spans whose names it registered get a cProfile capture.
    """

    def __init__(self, profiler=None):
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._next_id = 1
        self._local = threading.local()
        self.profiler = profiler

    # ------------------------------------------------------------------ #
    # span lifecycle

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs: Any) -> _SpanContext:
        """Open a child span of this thread's current span."""
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        stack = self._stack()
        parent_id = stack[-1].span_id if stack else None
        return _SpanContext(self, Span(
            name=name,
            span_id=span_id,
            parent_id=parent_id,
            start_s=time.perf_counter(),
            attrs=dict(attrs),
            pid=os.getpid(),
            tid=threading.get_ident(),
        ))

    def _push(self, span_obj: Span) -> None:
        span_obj.start_s = time.perf_counter()
        self._stack().append(span_obj)
        if self.profiler is not None:
            self.profiler.span_started(span_obj)

    def _pop(self, span_obj: Span) -> None:
        if self.profiler is not None:
            self.profiler.span_finished(span_obj)
        span_obj.duration_s = time.perf_counter() - span_obj.start_s
        stack = self._stack()
        if stack and stack[-1] is span_obj:
            stack.pop()
        else:  # tolerate out-of-order exits rather than corrupt the stack
            try:
                stack.remove(span_obj)
            except ValueError:
                pass
        with self._lock:
            self._spans.append(span_obj)

    # ------------------------------------------------------------------ #
    # inspection

    def spans(self) -> List[Span]:
        """All closed spans, ordered by span id (creation order)."""
        with self._lock:
            return sorted(self._spans, key=lambda s: s.span_id)

    def current_span_id(self) -> Optional[int]:
        stack = self._stack()
        return stack[-1].span_id if stack else None

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    # ------------------------------------------------------------------ #
    # worker-span ingestion

    def ingest(self, foreign: Iterable[Span],
               parent_id: Optional[int] = None) -> List[Span]:
        """Adopt spans recorded by another (worker) tracer.

        Foreign spans are re-numbered into this tracer's id space in
        their original creation order and foreign *roots* are re-parented
        under ``parent_id`` (child links within the foreign tree are
        preserved). Ingestion happens from a single thread in
        deterministic (submission) order, so the adopted ids are as
        reproducible as locally created ones. Returns the adopted spans.
        """
        ordered = sorted(foreign, key=lambda s: s.span_id)
        with self._lock:
            id_map = {}
            for span_obj in ordered:
                id_map[span_obj.span_id] = self._next_id
                self._next_id += 1
            adopted = []
            for span_obj in ordered:
                adopted.append(Span(
                    name=span_obj.name,
                    span_id=id_map[span_obj.span_id],
                    parent_id=(id_map.get(span_obj.parent_id, parent_id)
                               if span_obj.parent_id is not None
                               else parent_id),
                    start_s=span_obj.start_s,
                    duration_s=span_obj.duration_s,
                    attrs=dict(span_obj.attrs),
                    pid=span_obj.pid,
                    tid=span_obj.tid,
                ))
            self._spans.extend(adopted)
        return adopted


# ---------------------------------------------------------------------- #
# the active-tracer protocol

_default_tracer: Optional[Tracer] = None
_tls = threading.local()
#: Sentinel distinguishing "no thread-local override" from "overridden
#: with None" — and cheaper than catching AttributeError on the
#: disabled fast path (a raised exception costs ~1 µs; a defaulted
#: getattr ~100 ns, which is what lets the hooks stay compiled in).
_UNSET = object()


def active_tracer() -> Optional[Tracer]:
    """The tracer instrumentation records into, or None when disabled.

    The thread-local override (installed by :func:`use`) wins over the
    process-wide default (installed by :func:`set_default_tracer`), so
    worker threads recording into private tracers never interleave with
    the main thread's tree.
    """
    tracer = getattr(_tls, "tracer", _UNSET)
    return _default_tracer if tracer is _UNSET else tracer


def set_default_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install the process-wide default tracer; returns the previous one."""
    global _default_tracer
    previous = _default_tracer
    _default_tracer = tracer
    return previous


class use:
    """Context manager pinning ``tracer`` as this thread's active tracer.

    ``use(None)`` masks any process default — tracing is disabled inside
    the block for this thread.
    """

    def __init__(self, tracer: Optional[Tracer]):
        self._tracer = tracer
        self._had_override = False
        self._previous: Optional[Tracer] = None

    def __enter__(self) -> Optional[Tracer]:
        self._had_override = hasattr(_tls, "tracer")
        self._previous = getattr(_tls, "tracer", None)
        _tls.tracer = self._tracer
        return self._tracer

    def __exit__(self, *exc_info) -> bool:
        if self._had_override:
            _tls.tracer = self._previous
        else:
            del _tls.tracer
        return False


def span(name: str, **attrs: Any):
    """Open a span on the active tracer; a shared no-op when disabled.

    This is the one call instrumented code makes. The disabled path is
    two attribute reads and a return — cheap enough to leave compiled in
    on every hot path (enforced by the obs overhead benchmark).
    """
    tracer = getattr(_tls, "tracer", _UNSET)
    if tracer is _UNSET:
        tracer = _default_tracer
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **attrs)
