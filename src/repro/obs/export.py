"""Trace export: Chrome-trace JSON, JSON-lines events, and summaries.

Two export shapes, one source of truth (a list of closed
:class:`~repro.obs.tracing.Span` objects):

- **Chrome trace** (:func:`chrome_trace` / :func:`write_chrome_trace`) —
  the ``chrome://tracing`` / Perfetto "JSON object format": a dict with
  a ``traceEvents`` list of complete ("ph": "X") events, timestamps in
  microseconds rebased to the earliest span. Span ids and parent links
  ride along in each event's ``args`` so the hierarchy survives even
  across process lanes (Perfetto nests same-track events by time
  containment; the args keep the exact tree).
- **JSON lines** (:func:`write_events_jsonl`) — one flat JSON object
  per span per line, trivially greppable/stream-parseable.

:func:`summarize` folds either file back into a per-phase wall-clock
breakdown (the ``repro trace summarize`` subcommand): for every span
name, the count, total wall, *self* wall (total minus child spans) and
share of the run — the table that answers "where did the time go".
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.errors import ReproError
from repro.obs.tracing import Span

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "write_events_jsonl",
    "load_events",
    "PhaseStat",
    "TraceSummary",
    "summarize",
    "summarize_file",
]


def _span_to_event(span: Span, t0_s: float) -> Dict[str, Any]:
    args = {"span_id": span.span_id}
    if span.parent_id is not None:
        args["parent_id"] = span.parent_id
    for key, value in span.attrs.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            args[key] = value
        else:
            args[key] = repr(value)
    return {
        "name": span.name,
        "cat": "repro",
        "ph": "X",
        "ts": (span.start_s - t0_s) * 1e6,
        "dur": span.duration_s * 1e6,
        "pid": span.pid,
        "tid": span.tid,
        "args": args,
    }


def chrome_trace(spans: Sequence[Span],
                 metadata: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Spans as a Chrome-trace/Perfetto JSON object (dict, not text)."""
    t0_s = min((s.start_s for s in spans), default=0.0)
    trace: Dict[str, Any] = {
        "traceEvents": [
            _span_to_event(s, t0_s)
            for s in sorted(spans, key=lambda s: s.span_id)
        ],
        "displayTimeUnit": "ms",
    }
    if metadata:
        trace["otherData"] = dict(metadata)
    return trace


def write_chrome_trace(path, spans: Sequence[Span],
                       metadata: Optional[Dict[str, Any]] = None) -> None:
    """Write a Chrome-trace file loadable in chrome://tracing / Perfetto."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(spans, metadata), handle)
        handle.write("\n")


def write_events_jsonl(path, spans: Sequence[Span]) -> None:
    """Write one flat JSON event per line (same fields as Chrome args)."""
    t0_s = min((s.start_s for s in spans), default=0.0)
    with open(path, "w", encoding="utf-8") as handle:
        for span in sorted(spans, key=lambda s: s.span_id):
            handle.write(json.dumps(_span_to_event(span, t0_s)) + "\n")


# ---------------------------------------------------------------------- #
# loading + summarizing


def load_events(path) -> List[Dict[str, Any]]:
    """Events from a Chrome-trace JSON file or a JSONL event file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise ReproError(f"cannot read trace file: {exc}") from exc
    stripped = text.strip()
    if not stripped:
        raise ReproError(f"trace file {path} is empty")
    try:
        try:
            payload = json.loads(stripped)
        except ValueError:
            # Not one JSON document — treat as JSONL, one event per line.
            events = [json.loads(line) for line in stripped.splitlines()
                      if line.strip()]
        else:
            if isinstance(payload, dict) and "traceEvents" in payload:
                events = payload["traceEvents"]
            elif isinstance(payload, dict) and "name" in payload:
                events = [payload]  # one-line JSONL file
            elif isinstance(payload, list):  # bare event array
                events = payload
            else:
                raise ValueError("no traceEvents key")
    except ValueError as exc:
        raise ReproError(
            f"trace file {path} is neither Chrome-trace JSON nor "
            f"JSONL events: {exc}"
        ) from exc
    return [e for e in events if e.get("ph", "X") == "X"]


@dataclass
class PhaseStat:
    """Aggregate wall-clock for all spans sharing one name."""

    name: str
    count: int = 0
    total_s: float = 0.0
    self_s: float = 0.0

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0


@dataclass
class TraceSummary:
    """Per-phase breakdown of one trace."""

    phases: List[PhaseStat]
    span_count: int
    wall_s: float  # earliest start to latest end across all spans
    #: Scenarios that degraded from the vector engine to the reference
    #: path (``kernel_fallback`` span events), in event order with
    #: duplicates collapsed.
    degraded_scenarios: List[str] = None  # type: ignore[assignment]

    def __post_init__(self):
        if self.degraded_scenarios is None:
            self.degraded_scenarios = []

    def phase(self, name: str) -> Optional[PhaseStat]:
        for stat in self.phases:
            if stat.name == name:
                return stat
        return None

    def render(self) -> str:
        lines = [
            f"{'phase':<24} {'count':>6} {'total (s)':>10} "
            f"{'self (s)':>10} {'mean (ms)':>10} {'share':>7}"
        ]
        total_self = sum(stat.self_s for stat in self.phases)
        for stat in self.phases:
            share = stat.self_s / total_self if total_self else 0.0
            lines.append(
                f"{stat.name:<24} {stat.count:>6} {stat.total_s:>10.3f} "
                f"{stat.self_s:>10.3f} {stat.mean_s * 1e3:>10.2f} "
                f"{share:>6.1%}"
            )
        lines.append(
            f"{len(self.phases)} phase(s), {self.span_count} span(s), "
            f"{self.wall_s:.3f} s wall"
        )
        if self.degraded_scenarios:
            lines.append(
                "kernel fallbacks (vector -> reference): "
                + ", ".join(self.degraded_scenarios)
            )
        return "\n".join(lines)


def summarize(events: Iterable[Dict[str, Any]]) -> TraceSummary:
    """Fold events into a per-phase breakdown, largest self-time first.

    Self time is a span's duration minus its direct children's durations
    (linked via ``args.span_id`` / ``args.parent_id``); phases without
    id links degrade gracefully to self == total.
    """
    events = list(events)
    child_dur_us: Dict[Any, float] = {}
    for event in events:
        parent = (event.get("args") or {}).get("parent_id")
        if parent is not None:
            child_dur_us[parent] = (
                child_dur_us.get(parent, 0.0) + float(event.get("dur", 0.0))
            )
    stats: Dict[str, PhaseStat] = {}
    degraded: List[str] = []
    t_min, t_max = float("inf"), float("-inf")
    for event in events:
        name = event.get("name", "?")
        dur_us = float(event.get("dur", 0.0))
        ts_us = float(event.get("ts", 0.0))
        span_id = (event.get("args") or {}).get("span_id")
        stat = stats.setdefault(name, PhaseStat(name=name))
        stat.count += 1
        stat.total_s += dur_us / 1e6
        stat.self_s += max(0.0, dur_us - child_dur_us.get(span_id, 0.0)) / 1e6
        t_min = min(t_min, ts_us)
        t_max = max(t_max, ts_us + dur_us)
        if name == "kernel_fallback":
            scenario = (event.get("args") or {}).get("scenario", "?")
            if scenario not in degraded:
                degraded.append(scenario)
    ordered = sorted(stats.values(), key=lambda s: (-s.self_s, s.name))
    return TraceSummary(
        phases=ordered,
        span_count=len(events),
        wall_s=(t_max - t_min) / 1e6 if events else 0.0,
        degraded_scenarios=degraded,
    )


def summarize_file(path) -> TraceSummary:
    """Load a trace file (Chrome JSON or JSONL) and summarize it."""
    return summarize(load_events(path))
