"""Shared results-artifact formatting: the one table writer.

Every benchmark and decision-support surface in this repo regenerates
some quantitative table — yield vs tuning range, kernel throughput,
campaign Pareto fronts. Before this module each site hand-rolled its
own column alignment; now they all call :func:`format_table` and write
the result through :func:`write_artifact`, so artifacts under
``benchmarks/results/`` and campaign exports share one look and one
code path.

Formatting rules:

- a cell is rendered with ``str()``; ``float`` cells honor
  ``precision`` (``%.Nf``), ``None`` renders as ``-``;
- numeric cells (int/float, or strings that parse as numbers) are
  right-aligned, everything else left-aligned;
- ``title`` becomes the first line, ``notes`` trail after a blank line.
"""

from __future__ import annotations

import pathlib
from typing import Any, Iterable, List, Optional, Sequence


def _render_cell(value: Any, precision: int) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def _is_numeric(text: str) -> bool:
    if text in ("", "-"):
        return True  # blanks/placeholders align with their column
    try:
        float(text.rstrip("x%"))
        return True
    except ValueError:
        return False


def format_table(
    headers: Sequence[Any],
    rows: Iterable[Sequence[Any]],
    title: Optional[str] = None,
    notes: Sequence[str] = (),
    precision: int = 4,
) -> str:
    """Align ``rows`` under ``headers``; see module docstring for rules."""
    header_cells = [str(h) for h in headers]
    body: List[List[str]] = [
        [_render_cell(cell, precision) for cell in row] for row in rows
    ]
    n_cols = len(header_cells)
    for row in body:
        if len(row) != n_cols:
            raise ValueError(
                f"row has {len(row)} cells, expected {n_cols}: {row}"
            )
    widths = [len(h) for h in header_cells]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    # A column is right-aligned when every body cell in it is numeric.
    right = [
        all(_is_numeric(row[i]) for row in body) if body else False
        for i in range(n_cols)
    ]

    def line(cells: Sequence[str]) -> str:
        out = []
        for i, cell in enumerate(cells):
            out.append(cell.rjust(widths[i]) if right[i]
                       else cell.ljust(widths[i]))
        return " ".join(out).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(line(header_cells))
    lines.extend(line(row) for row in body)
    if notes:
        lines.append("")
        lines.extend(notes)
    return "\n".join(lines)


def write_artifact(path, text: str) -> pathlib.Path:
    """Persist one result artifact (parent dirs created, newline-final)."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    if not text.endswith("\n"):
        text += "\n"
    target.write_text(text)
    return target
