"""Unified observability: tracing, metrics, export, profiling.

The substrate every engine in this repo reports through:

- :mod:`repro.obs.tracing` — hierarchical spans with deterministic ids,
  thread/process-safe collection, and worker-span ingestion;
- :mod:`repro.obs.metrics` — process-local counters, gauges and
  fixed-bucket histograms with cheap disabled no-ops;
- :mod:`repro.obs.export` — Chrome-trace (Perfetto) JSON and JSONL
  event files, plus the per-phase wall-clock summary behind
  ``repro trace summarize``;
- :mod:`repro.obs.profile` — opt-in per-span cProfile capture.

Instrumented sites call :func:`repro.obs.span`, :func:`repro.obs.inc`,
:func:`repro.obs.observe` and :func:`repro.obs.set_gauge`; all four are
no-ops until a tracer/registry is activated (CLI ``--trace`` /
``--metrics``, or :func:`tracing.use` / :func:`metrics.use` in code).
"""

from repro.obs import artifacts, export, metrics, profile, tracing
from repro.obs.artifacts import format_table, write_artifact
from repro.obs.export import (
    TraceSummary,
    chrome_trace,
    summarize,
    summarize_file,
    write_chrome_trace,
    write_events_jsonl,
)
from repro.obs.metrics import (
    MetricsRegistry,
    inc,
    observe,
    set_gauge,
)
from repro.obs.profile import SpanProfiler
from repro.obs.tracing import Span, Tracer, span

__all__ = [
    "artifacts",
    "format_table",
    "write_artifact",
    "export",
    "metrics",
    "profile",
    "tracing",
    "Span",
    "Tracer",
    "span",
    "MetricsRegistry",
    "inc",
    "observe",
    "set_gauge",
    "SpanProfiler",
    "TraceSummary",
    "chrome_trace",
    "summarize",
    "summarize_file",
    "write_chrome_trace",
    "write_events_jsonl",
]
