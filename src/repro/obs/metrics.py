"""Process-local metrics: counters, gauges, fixed-bucket histograms.

The registry answers the "how much" questions tracing's span tree does
not: cache hit/miss totals, retry and quarantine counts, cone-size
distributions, per-stage wall accumulations. Everything is
process-local by design — worker *spans* travel back with results (see
:mod:`repro.obs.tracing`), but worker-side metric increments do not;
the instrumented sites that matter (cache triage, supervision, the
closure loop) all run in the coordinating process.

Enablement mirrors tracing: a process default registry plus a
thread-local override, consulted through the module-level helpers
:func:`inc`, :func:`observe` and :func:`set_gauge`. Disabled cost is one
function call and two reads — cheap enough to leave the calls compiled
in on hot paths (the obs overhead benchmark enforces <2% on the closure
workload).

Mutation methods rely on the GIL for atomicity (``int`` add, ``list``
index add); registration uses a lock. That is the same contract the
scheduler's :class:`~repro.sta.scheduler.CacheStats` already lives by.
"""

from __future__ import annotations

import bisect
import json
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import TimingError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "active_registry",
    "set_default_registry",
    "use",
    "inc",
    "observe",
    "set_gauge",
]

#: Default histogram bucket upper bounds — a coarse log scale that fits
#: the quantities this repo observes (cone sizes in pins, wall seconds
#: in milli-units, retry counts). Callers with a real distribution in
#: mind pass their own.
DEFAULT_BUCKETS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
                   1000.0, 2000.0, 5000.0, 10000.0)


@dataclass
class Counter:
    """Monotonically increasing count."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise TimingError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self.value}


@dataclass
class Gauge:
    """Last-write-wins instantaneous value."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-bucket histogram (bucket edges frozen at creation).

    ``buckets`` are inclusive upper bounds; an implicit +inf bucket
    catches overflow. Tracks count and sum so means are recoverable.
    """

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS):
        if not buckets:
            raise TimingError("histogram needs at least one bucket bound")
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise TimingError(
                f"histogram {name!r} bucket bounds must be strictly "
                f"increasing, got {bounds}"
            )
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # final slot = +inf
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += 1
        self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {
            "type": "histogram",
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.total,
            "sum": self.sum,
        }


class MetricsRegistry:
    """Get-or-create registry of named metrics.

    A name is permanently bound to its first-registered kind;
    re-registering it as a different kind (or a histogram with different
    buckets) raises :class:`~repro.errors.TimingError` — silent aliasing
    would corrupt whichever caller loses the race.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: Dict[str, Any] = {}

    def _get_or_create(self, name: str, kind, factory):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = factory()
            elif not isinstance(metric, kind):
                raise TimingError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {kind.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        hist = self._get_or_create(
            name, Histogram, lambda: Histogram(name, buckets)
        )
        if hist.bounds != tuple(float(b) for b in buckets):
            raise TimingError(
                f"histogram {name!r} already registered with buckets "
                f"{hist.bounds}"
            )
        return hist

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def get(self, name: str):
        with self._lock:
            return self._metrics.get(name)

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Point-in-time {name: state} map, sorted by name (JSON-plain)."""
        with self._lock:
            return {
                name: self._metrics[name].snapshot()
                for name in sorted(self._metrics)
            }

    def write_json(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.snapshot(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def render(self) -> str:
        """Flat, deterministic text table of every metric."""
        lines = [f"{'metric':<44} {'type':<10} {'value':>14}"]
        for name, state in self.snapshot().items():
            if state["type"] == "histogram":
                value = (f"n={state['count']} "
                         f"mean={state['sum'] / state['count']:.3g}"
                         if state["count"] else "n=0")
            else:
                value = f"{state['value']:g}"
            lines.append(f"{name:<44} {state['type']:<10} {value:>14}")
        return "\n".join(lines)


# ---------------------------------------------------------------------- #
# the active-registry protocol (mirrors repro.obs.tracing)

_default_registry: Optional[MetricsRegistry] = None
_tls = threading.local()
#: See :data:`repro.obs.tracing._UNSET` — sentinel for "no thread-local
#: override", keeping the disabled fast path exception-free.
_UNSET = object()


def active_registry() -> Optional[MetricsRegistry]:
    """The registry helpers record into, or None when disabled."""
    registry = getattr(_tls, "registry", _UNSET)
    return _default_registry if registry is _UNSET else registry


def set_default_registry(
    registry: Optional[MetricsRegistry],
) -> Optional[MetricsRegistry]:
    """Install the process default registry; returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


class use:
    """Pin ``registry`` as this thread's active registry (None disables)."""

    def __init__(self, registry: Optional[MetricsRegistry]):
        self._registry = registry
        self._had_override = False
        self._previous: Optional[MetricsRegistry] = None

    def __enter__(self) -> Optional[MetricsRegistry]:
        self._had_override = hasattr(_tls, "registry")
        self._previous = getattr(_tls, "registry", None)
        _tls.registry = self._registry
        return self._registry

    def __exit__(self, *exc_info) -> bool:
        if self._had_override:
            _tls.registry = self._previous
        else:
            del _tls.registry
        return False


def inc(name: str, amount: float = 1.0) -> None:
    """Increment counter ``name`` on the active registry (no-op when off)."""
    registry = active_registry()
    if registry is not None:
        registry.counter(name).inc(amount)


def observe(name: str, value: float,
            buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
    """Observe ``value`` into histogram ``name`` (no-op when disabled)."""
    registry = active_registry()
    if registry is not None:
        registry.histogram(name, buckets).observe(value)


def set_gauge(name: str, value: float) -> None:
    """Set gauge ``name`` (no-op when disabled)."""
    registry = active_registry()
    if registry is not None:
        registry.gauge(name).set(value)
