"""Supervised task execution: timeouts, retries, quarantine, fallback.

The supervisor runs a batch of independent tasks over a worker pool and
guarantees the batch *completes* even when individual attempts crash,
hang, or the pool itself dies:

- **Retry with exponential backoff** — a crashed or timed-out attempt is
  retried up to ``RetryPolicy.retries`` times, sleeping
  ``backoff_s * backoff_factor**(attempt-1)`` between attempts.
- **Quarantine** — a task that exhausts every attempt is reported as
  :attr:`TaskStatus.DEGRADED` with its structured error chain instead of
  aborting the batch.
- **Executor fallback** — a broken pool (``BrokenExecutor``, or an
  :class:`~repro.errors.ExecutorBrokenError` surfaced by a worker)
  downgrades the executor (process -> thread -> serial) and resubmits
  the outstanding work. Infrastructure death is not charged to bystander
  tasks; only the task whose attempt surfaced the breakage pays one
  attempt (it is the prime suspect for having killed the pool).

Timeout semantics: a pool worker cannot be forcibly killed from Python,
so a timed-out attempt is *abandoned* — its slot is written off and a
fresh pool is spun up once every slot is lost. Abandoned thread workers
run to completion in the background (tests keep injected hangs short);
the timed-out task itself is retried immediately. Because an abandoned
attempt may still be executing, callers must hand workers private
(isolated) inputs when timeouts are enabled — the signoff scheduler
deep-copies the design per attempt for exactly this reason.

Results are keyed by task name and returned in submission order, so a
supervised run is deterministic for any jobs count, executor flavor, or
retry history.
"""

from __future__ import annotations

import enum
import threading
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    ExecutionError,
    ExecutorBrokenError,
    TaskDegradedError,
    TimingError,
    WorkerCrashError,
    WorkerTimeoutError,
)
from repro.obs import metrics as obs_metrics

#: Executor fallback order: when a pool dies the supervisor downgrades
#: one step and resubmits outstanding work.
FALLBACK_ORDER = {"process": "thread", "thread": "serial", "serial": None}


@dataclass
class RetryPolicy:
    """Retry/timeout policy for one supervised batch.

    Attributes:
        retries: extra attempts after the first (max attempts =
            ``retries + 1``).
        timeout_s: per-attempt wall-clock budget; None disables timeouts.
        backoff_s: sleep before the first retry, seconds.
        backoff_factor: multiplier applied per subsequent retry.
        max_backoff_s: backoff ceiling, seconds.
    """

    retries: int = 2
    timeout_s: Optional[float] = None
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_s: float = 2.0

    def __post_init__(self):
        if self.retries < 0:
            raise TimingError("retries must be >= 0")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise TimingError("timeout_s must be positive")

    @property
    def max_attempts(self) -> int:
        return self.retries + 1

    def delay(self, attempt: int) -> float:
        """Backoff before retrying after failed attempt ``attempt``."""
        raw = self.backoff_s * self.backoff_factor ** (attempt - 1)
        return min(raw, self.max_backoff_s)


class TaskStatus(enum.Enum):
    OK = "ok"            # succeeded on the first attempt
    RETRIED = "retried"  # succeeded after at least one failed attempt
    DEGRADED = "degraded"  # exhausted every attempt; quarantined


@dataclass
class SupervisedTask:
    """One unit of work: ``fn(payload, attempt)`` in a worker.

    ``fn`` must be a module-level callable and ``payload`` picklable when
    the process executor is used. The attempt number (1-based) is passed
    through so deterministic fault injection can target specific
    attempts.
    """

    name: str
    fn: Callable[[Any, int], Any]
    payload: Any = None


@dataclass
class TaskExecution:
    """The supervised outcome of one task."""

    name: str
    status: TaskStatus
    attempts: int = 0
    wall_time_s: float = 0.0
    result: Any = None
    error: Optional[ExecutionError] = None
    #: One line per failed attempt: "attempt N: ErrorClass: message".
    error_chain: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status is not TaskStatus.DEGRADED


def _call_in_thread(fn, payload, attempt, timeout_s):
    """Run one attempt in a daemon thread with a join timeout.

    Used by the serial executor so even ``executor="serial"`` honors
    per-attempt timeouts. A timed-out attempt is abandoned (the daemon
    thread cannot be killed) and reported as WorkerTimeoutError.
    """
    box: Dict[str, Any] = {}

    def target():
        try:
            box["result"] = fn(payload, attempt)
        except BaseException as exc:  # noqa: BLE001 - reraised below
            box["error"] = exc

    worker = threading.Thread(target=target, daemon=True)
    worker.start()
    worker.join(timeout_s)
    if worker.is_alive():
        raise WorkerTimeoutError(
            "attempt exceeded its time budget", timeout_s=timeout_s
        )
    if "error" in box:
        raise box["error"]
    return box["result"]


def supervised_call(
    fn: Callable[[Any, int], Any],
    policy: RetryPolicy,
    name: str = "task",
    sleep: Callable[[float], None] = time.sleep,
    on_event: Optional[Callable[[str], None]] = None,
):
    """Run one ``fn(payload=None, attempt)`` under retry/timeout supervision.

    The single-task, in-process counterpart of :class:`SupervisedExecutor`
    — used where a caller (e.g. the serving daemon handling one request)
    needs the same semantics without batch fan-out: each attempt gets
    ``policy.timeout_s`` of wall clock (a timed-out attempt is abandoned,
    exactly like a pool worker), failed attempts retry with backoff, and
    an exhausted budget raises :class:`~repro.errors.TaskDegradedError`
    carrying the error chain. The *caller* must ensure ``fn`` operates on
    state that tolerates an abandoned attempt still running (the daemon
    serializes per-session work for exactly this reason).
    """
    error_chain: List[str] = []
    last: Optional[Exception] = None
    for attempt in range(1, policy.max_attempts + 1):
        try:
            if policy.timeout_s is not None:
                return _call_in_thread(fn, None, attempt, policy.timeout_s)
            return fn(None, attempt)
        except Exception as exc:  # noqa: BLE001 - chained below
            if not isinstance(exc, ExecutionError):
                exc = WorkerCrashError(
                    f"worker crashed: {type(exc).__name__}: {exc}"
                )
            exc.with_context(task=name, attempt=attempt)
            last = exc
            error_chain.append(
                f"attempt {attempt}: {type(exc).__name__}: {exc.message}"
            )
            if isinstance(exc, WorkerTimeoutError):
                obs_metrics.inc("supervisor.timeouts")
            if attempt >= policy.max_attempts:
                break
            if on_event is not None:
                on_event(f"retry {name}: attempt {attempt} failed "
                         f"({type(exc).__name__})")
            obs_metrics.inc("supervisor.retries")
            sleep(policy.delay(attempt))
    obs_metrics.inc("supervisor.quarantines")
    degraded = TaskDegradedError(
        f"quarantined after {policy.max_attempts} attempt(s): "
        f"{last.message if last is not None else 'unknown failure'}",
        task=name,
        attempts=policy.max_attempts,
        cause=type(last).__name__ if last is not None else "unknown",
    )
    degraded.error_chain = error_chain  # forensic chain for reporting
    raise degraded


class SupervisedExecutor:
    """Runs task batches under supervision (see module docstring).

    Args:
        jobs: worker count (>= 1).
        executor: "process", "thread" or "serial".
        policy: retry/timeout policy; default :class:`RetryPolicy`.
        allow_fallback: downgrade the executor on pool death instead of
            raising :class:`~repro.errors.ExecutorBrokenError`.
        sleep: injectable sleep (tests replace it to make backoff free).
        on_event: optional callback receiving human-readable supervision
            events (retries, fallbacks, quarantines).
    """

    def __init__(
        self,
        jobs: int = 1,
        executor: str = "thread",
        policy: Optional[RetryPolicy] = None,
        allow_fallback: bool = True,
        sleep: Callable[[float], None] = time.sleep,
        on_event: Optional[Callable[[str], None]] = None,
    ):
        if executor not in FALLBACK_ORDER:
            raise TimingError(
                f"unknown executor {executor!r}; "
                f"pick from {tuple(FALLBACK_ORDER)}"
            )
        if jobs < 1:
            raise TimingError("jobs must be >= 1")
        self.jobs = jobs
        self.executor = executor
        self.policy = policy or RetryPolicy()
        self.allow_fallback = allow_fallback
        self.sleep = sleep
        self.on_event = on_event
        #: executor transitions taken this run, e.g. ["process->thread"].
        self.fallbacks: List[str] = []
        #: the flavor that finished the batch.
        self.executor_used = executor

    # ------------------------------------------------------------------ #

    def _event(self, message: str) -> None:
        if self.on_event is not None:
            self.on_event(message)

    def _attempt_failed(self, execution: TaskExecution, attempt: int,
                        error: Exception,
                        queue: deque) -> None:
        """Charge one failed attempt; requeue or quarantine."""
        if not isinstance(error, ExecutionError):
            error = WorkerCrashError(
                f"worker crashed: {type(error).__name__}: {error}"
            )
        error.with_context(task=execution.name, attempt=attempt)
        execution.attempts = attempt
        execution.error_chain.append(
            f"attempt {attempt}: {type(error).__name__}: {error.message}"
        )
        if isinstance(error, WorkerTimeoutError):
            obs_metrics.inc("supervisor.timeouts")
        if attempt >= self.policy.max_attempts:
            execution.status = TaskStatus.DEGRADED
            execution.error = TaskDegradedError(
                f"quarantined after {attempt} attempt(s): {error.message}",
                task=execution.name,
                attempts=attempt,
                cause=type(error).__name__,
            )
            self._event(
                f"quarantine {execution.name}: degraded after "
                f"{attempt} attempt(s)"
            )
            obs_metrics.inc("supervisor.quarantines")
            return
        self._event(
            f"retry {execution.name}: attempt {attempt} failed "
            f"({type(error).__name__})"
        )
        obs_metrics.inc("supervisor.retries")
        self.sleep(self.policy.delay(attempt))
        queue.append((execution.name, attempt + 1))

    def _attempt_succeeded(self, execution: TaskExecution, attempt: int,
                           result: Any) -> None:
        execution.attempts = attempt
        execution.result = result
        execution.status = (
            TaskStatus.OK if attempt == 1 else TaskStatus.RETRIED
        )

    # ------------------------------------------------------------------ #
    # serial execution (bottom of the fallback chain)

    def _run_serial(self, tasks: Dict[str, SupervisedTask],
                    queue: deque,
                    executions: Dict[str, TaskExecution]) -> None:
        while queue:
            name, attempt = queue.popleft()
            task = tasks[name]
            try:
                if self.policy.timeout_s is not None:
                    result = _call_in_thread(
                        task.fn, task.payload, attempt, self.policy.timeout_s
                    )
                else:
                    result = task.fn(task.payload, attempt)
            except Exception as exc:  # noqa: BLE001
                self._attempt_failed(executions[name], attempt, exc, queue)
            else:
                self._attempt_succeeded(executions[name], attempt, result)

    # ------------------------------------------------------------------ #
    # pooled execution

    def _run_pooled(self, flavor: str, tasks: Dict[str, SupervisedTask],
                    queue: deque,
                    executions: Dict[str, TaskExecution]) -> Optional[str]:
        """One pool's era. Returns None when the batch is drained,
        "rebuild" when every slot was lost to hung attempts, or "broken"
        when the pool died; outstanding work is already requeued."""
        pool_cls = (ProcessPoolExecutor if flavor == "process"
                    else ThreadPoolExecutor)
        size = min(self.jobs, max(1, len(queue)))
        pool = pool_cls(max_workers=size)
        running: Dict[Any, Tuple[str, int, float]] = {}
        lost_slots = 0

        def requeue_running() -> None:
            """Salvage in-flight work when abandoning this pool: harvest
            attempts that already finished successfully, requeue the rest
            at the same attempt number (infrastructure death is not
            charged to bystander tasks)."""
            for fut, (name, attempt, _) in running.items():
                if fut.done() and not fut.cancelled():
                    try:
                        self._attempt_succeeded(
                            executions[name], attempt, fut.result()
                        )
                        continue
                    except Exception:  # noqa: BLE001
                        pass
                fut.cancel()
                queue.appendleft((name, attempt))
            running.clear()

        try:
            while queue or running:
                while queue and len(running) < size - lost_slots:
                    name, attempt = queue.popleft()
                    try:
                        fut = pool.submit(
                            tasks[name].fn, tasks[name].payload, attempt
                        )
                    except (BrokenExecutor, RuntimeError):
                        queue.appendleft((name, attempt))
                        requeue_running()
                        return "broken"
                    deadline = (
                        time.monotonic() + self.policy.timeout_s
                        if self.policy.timeout_s is not None else float("inf")
                    )
                    running[fut] = (name, attempt, deadline)

                if not running:
                    # every slot written off to a hung attempt: abandon
                    # this pool and start a fresh one of the same flavor.
                    return "rebuild"

                wait_budget = None
                if self.policy.timeout_s is not None:
                    nearest = min(d for _, _, d in running.values())
                    wait_budget = max(0.0, nearest - time.monotonic()) + 0.01
                done, _ = wait(set(running), timeout=wait_budget,
                               return_when=FIRST_COMPLETED)

                for fut in done:
                    name, attempt, _ = running.pop(fut)
                    try:
                        result = fut.result()
                    except BrokenExecutor:
                        # The pool died under this attempt: the attempt is
                        # charged to the triggering task, bystanders are
                        # requeued for free.
                        self._attempt_failed(
                            executions[name], attempt,
                            ExecutorBrokenError("worker pool died"), queue,
                        )
                        requeue_running()
                        return "broken"
                    except ExecutorBrokenError as exc:
                        self._attempt_failed(
                            executions[name], attempt, exc, queue
                        )
                        requeue_running()
                        return "broken"
                    except Exception as exc:  # noqa: BLE001
                        self._attempt_failed(
                            executions[name], attempt, exc, queue
                        )
                    else:
                        self._attempt_succeeded(
                            executions[name], attempt, result
                        )

                now = time.monotonic()
                for fut in [f for f, (_, _, d) in running.items() if d <= now]:
                    name, attempt, _ = running.pop(fut)
                    if not fut.cancel():
                        # Attempt already executing: its slot is lost for
                        # the lifetime of this pool.
                        lost_slots += 1
                    self._attempt_failed(
                        executions[name], attempt,
                        WorkerTimeoutError(
                            "attempt exceeded its time budget",
                            timeout_s=self.policy.timeout_s,
                        ),
                        queue,
                    )
                if lost_slots >= size and (queue or running):
                    requeue_running()
                    return "rebuild"
            return None
        finally:
            pool.shutdown(wait=False)

    # ------------------------------------------------------------------ #

    def run(self, task_list: Sequence[SupervisedTask]) -> List[TaskExecution]:
        """Run the batch to completion; one execution per task, in order."""
        names = [t.name for t in task_list]
        if len(set(names)) != len(names):
            raise TimingError("supervised task names must be unique")
        tasks = {t.name: t for t in task_list}
        executions = {
            name: TaskExecution(name=name, status=TaskStatus.DEGRADED)
            for name in names
        }
        queue: deque = deque((name, 1) for name in names)
        t0 = time.perf_counter()

        flavor = self.executor
        while queue:
            if flavor == "serial":
                self._run_serial(tasks, queue, executions)
                break
            outcome = self._run_pooled(flavor, tasks, queue, executions)
            if outcome is None:
                break
            if outcome == "rebuild":
                self._event(f"{flavor} pool exhausted by hung attempts; "
                            "starting a fresh pool")
                continue
            nxt = FALLBACK_ORDER[flavor]
            if not self.allow_fallback or nxt is None:
                raise ExecutorBrokenError(
                    f"{flavor} pool died and fallback is disabled",
                    executor=flavor,
                )
            self.fallbacks.append(f"{flavor}->{nxt}")
            self._event(f"executor fallback: {flavor} -> {nxt}")
            obs_metrics.inc("supervisor.fallbacks")
            flavor = nxt
        self.executor_used = flavor

        wall = time.perf_counter() - t0
        for execution in executions.values():
            execution.wall_time_s = wall
        return [executions[name] for name in names]
