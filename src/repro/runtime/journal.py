"""Append-only on-disk journal for checkpoint/resume.

A :class:`RunJournal` records completed units of work (signoff
scenarios, closure iterations) as self-verifying JSONL lines. A run that
is SIGKILL'd mid-batch resumes by constructing the journal over the same
path: every intact entry is reused, only un-journaled work recomputes.

Crash safety comes from the format, not from locks:

- one entry per line, appended and fsync'd at record time, so the
  on-disk journal always contains every *completed* unit;
- each line carries a SHA-256 of its pickled payload, so a truncated
  final line (killed mid-write) or a corrupted line is *skipped* on
  load — never trusted, never fatal (counted in :attr:`corrupt_entries`);
- entry keys embed content fingerprints, so a journal recorded against
  different inputs simply never matches — stale checkpoints cannot
  poison a resumed run.

IO failure degrades, never crashes: an ``OSError`` while appending
(disk full, revoked permissions, a dying fsync) marks the journal
:attr:`unavailable <RunJournal.available>` and :meth:`record` becomes a
no-op returning False. The supervised run *continues* — losing the
checkpoint must not lose the computation — and callers surface the
degradation (the signoff scheduler emits a ``checkpoint unavailable``
event). Already-recorded entries stay usable for in-process lookups.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import CheckpointError

_VERSION = 1


def _normalize_key(key) -> Tuple:
    if isinstance(key, (list, tuple)):
        return tuple(_normalize_key(part) for part in key)
    if isinstance(key, (str, int, float, bool)) or key is None:
        return key
    raise CheckpointError(
        f"journal keys must be JSON-plain, got {type(key).__name__}"
    )


class RunJournal:
    """An append-only checkpoint journal (see module docstring).

    Args:
        path: journal file location; created on first record. An
            existing file is loaded and its intact entries reused.
    """

    def __init__(self, path):
        self.path = os.fspath(path)
        #: entries hold the *pickled* payload bytes; lookup unpickles a
        #: fresh copy every call, so journaled state can never alias a
        #: live object the caller keeps mutating (closure checkpoints a
        #: design that changes every iteration).
        self._entries: Dict[Tuple[str, Tuple], bytes] = {}
        #: lines dropped on load: truncated tails, bad JSON, digest
        #: mismatches. Non-zero after resuming from a killed run is
        #: normal (the in-flight line died with the writer).
        self.corrupt_entries = 0
        #: False once an append hit an OSError; further records no-op.
        self.available = True
        #: IO errors absorbed by :meth:`record`.
        self.io_errors = 0
        #: "ErrorClass: message" of the failure that disabled the journal.
        self.last_error: Optional[str] = None
        self._load()

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------ #

    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                    if row.get("v") != _VERSION:
                        raise ValueError("journal version mismatch")
                    blob = base64.b64decode(row["data"])
                    if hashlib.sha256(blob).hexdigest() != row["sha"]:
                        raise ValueError("payload digest mismatch")
                    pickle.loads(blob)  # reject undecodable payloads now
                    key = (row["kind"], _normalize_key(row["key"]))
                except Exception:  # noqa: BLE001 - any bad line is skipped
                    self.corrupt_entries += 1
                    continue
                self._entries[key] = blob

    # ------------------------------------------------------------------ #

    def lookup(self, kind: str, key) -> Optional[Any]:
        """A fresh unpickled copy of the payload for (kind, key)."""
        blob = self._entries.get((kind, _normalize_key(key)))
        return None if blob is None else pickle.loads(blob)

    def record(self, kind: str, key, payload: Any) -> bool:
        """Append one completed unit; flushed and fsync'd immediately.

        Returns True when the entry is durably on disk. An ``OSError``
        anywhere in the append (open, write, fsync) marks the journal
        unavailable and returns False — checkpointing degrades, the run
        does not crash. Unpicklable payloads still raise
        :class:`~repro.errors.CheckpointError`: that is a caller bug,
        not an IO fault.
        """
        norm = _normalize_key(key)
        if not self.available:
            return False
        try:
            blob = pickle.dumps(payload)
        except Exception as exc:
            raise CheckpointError(
                f"journal payload is not picklable: {exc}", kind=kind
            ) from exc
        line = json.dumps({
            "v": _VERSION,
            "kind": kind,
            "key": norm,
            "sha": hashlib.sha256(blob).hexdigest(),
            "data": base64.b64encode(blob).decode("ascii"),
        })
        try:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())
        except OSError as exc:
            self.available = False
            self.io_errors += 1
            self.last_error = f"{type(exc).__name__}: {exc}"
            return False
        self._entries[(kind, norm)] = blob
        return True

    def keys(self, kind: str) -> List[Tuple]:
        """All journaled keys of one kind (load order)."""
        return [key for knd, key in self._entries if knd == kind]

    def count(self, kind: Optional[str] = None) -> int:
        if kind is None:
            return len(self._entries)
        return sum(1 for knd, _ in self._entries if knd == kind)

    def clear(self) -> None:
        """Forget everything and remove the on-disk journal."""
        self._entries.clear()
        self.corrupt_entries = 0
        if os.path.exists(self.path):
            os.remove(self.path)
