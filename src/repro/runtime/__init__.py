"""Fault-tolerant execution runtime.

Long MCMM signoff batches (the paper's Section 2.3 corner
super-explosion: O(10^2) views per run) turn rare per-scenario failures
into near-certain batch failures. This package converts those failures
into bounded recovery cost instead of full reruns:

- :mod:`repro.runtime.supervisor` — per-task timeouts, retry with
  exponential backoff, crash quarantine (DEGRADED instead of abort) and
  automatic executor fallback (process -> thread -> serial) when a pool
  itself dies.
- :mod:`repro.runtime.journal` — an append-only on-disk journal so a
  killed run resumes from its completed tasks.
"""

from repro.runtime.journal import RunJournal
from repro.runtime.supervisor import (
    RetryPolicy,
    SupervisedExecutor,
    SupervisedTask,
    TaskExecution,
    TaskStatus,
    supervised_call,
)

__all__ = [
    "RetryPolicy",
    "RunJournal",
    "SupervisedExecutor",
    "SupervisedTask",
    "TaskExecution",
    "TaskStatus",
    "supervised_call",
]
