"""Compiled vectorized multi-corner STA kernel.

The reference engine (:mod:`repro.sta.propagation`) walks the object
graph once *per scenario*: with the paper's corner super-explosion (7
BEOL corners x Vt x temperature) that is N full Python traversals of the
same netlist. This module compiles the bound timing graph **once** into
flat numpy arrays — levelized edge lists, pin/arc index maps, and
stacked NLDM delay/slew table tensors with the corner as the leading
axis — and then propagates arrivals/slews for *every corner of a mode
simultaneously* in one batched forward pass.

Design rules that make the kernel trustworthy:

- **The reference engine is the oracle.** Every per-corner static
  quantity (wire delays, slew degradations, driver loads, derate
  factors, SI deltas, useful-skew offsets) is precomputed at compile
  time *through the existing scalar code paths*, and the vectorized
  expressions replicate the reference engine's floating-point grouping
  exactly. The equivalence harness
  (``tests/sta/test_kernel_equivalence.py``) pins agreement at 1e-9 for
  arrivals, slews and endpoint slacks across MCMM corners, derates, SI
  on/off and CPPR.
- **Reports are bit-compatible.** Per-corner results materialize into
  ordinary :class:`~repro.sta.propagation.PropagationResult` objects
  (with backpointers reconstructed from the batch candidates), and the
  endpoint evaluation *borrows the reference implementation* via
  :class:`CornerView` — a :class:`~repro.sta.analysis.STA` whose state
  is array-backed. CPPR and PBA run unchanged on a view.
- **Compilation can refuse.** Corner libraries must be structurally
  congruent (same cells, arcs, senses and table shapes); anything else
  raises :class:`KernelCompileError` so callers fall back to the
  reference engine instead of mis-timing silently.

Observability: compilation and batching emit ``kernel_compile`` /
``kernel_batch`` spans plus ``kernel.compile_s`` and
``kernel.batch_corners`` metrics, so ``repro trace summarize`` shows
where the multi-corner speedup comes from.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.beol.corners import BeolCorner, conventional_corners
from repro.beol.stack import BeolStack, default_stack
from repro.errors import LibraryError, TimingError
from repro.liberty.arcs import TimingArc, TimingType
from repro.liberty.library import Library
from repro.netlist.design import Design, PinRef
from repro.obs import metrics as obs_metrics
from repro.obs import tracing as obs_tracing
from repro.parasitics.synthesis import ParasiticExtractor
from repro.sta.algebra import SCALAR
from repro.sta.analysis import STA
from repro.sta.constraints import Constraints
from repro.sta.graph import CellEdge, NetEdge, TimingCheck, TimingGraph
from repro.sta.propagation import (
    DIRECTIONS,
    Arrival,
    Derates,
    PropagationResult,
)
from repro.sta.reports import SlewViolation, TimingReport

#: The two timing engines the scheduler/closure stack can run.
ENGINES = ("reference", "vector")

_INF = math.inf
#: "No backpointer" sentinel in the pred-rank arrays.
_NO_PRED = np.iinfo(np.int64).max


class KernelCompileError(TimingError):
    """The timing graph cannot be compiled for these corners.

    Raised when corner libraries are not structurally congruent (missing
    cells/arcs, differing senses or table shapes) or a corner name does
    not resolve. Callers treat this as "use the reference engine".
    """


@dataclass
class CornerSpec:
    """One corner of a batched mode: library condition + extraction view.

    All corners of one :class:`CompiledKernel` share the design and the
    mode constraints; everything else — library tables, BEOL corner,
    temperature, derates, SI — varies per corner.
    """

    name: str
    library: Library
    beol_corner: BeolCorner
    temp_c: float
    derates: Derates = field(default_factory=Derates)
    si_enabled: bool = False

    @classmethod
    def from_scenario(cls, scenario, stack: BeolStack) -> "CornerSpec":
        """The spec equivalent to :meth:`repro.sta.mcmm.Scenario.run`."""
        corners = conventional_corners(stack)
        try:
            beol = corners[scenario.beol_corner_name]
        except KeyError:
            raise KernelCompileError(
                f"unknown BEOL corner {scenario.beol_corner_name!r} "
                f"in scenario {scenario.name!r}"
            ) from None
        temp = scenario.temp_c if scenario.temp_c is not None \
            else scenario.library.temp_c
        return cls(
            name=scenario.name,
            library=scenario.library,
            beol_corner=beol,
            temp_c=temp,
            derates=scenario.derates,
            si_enabled=False,  # Scenario.run analyzes with SI off
        )

    @classmethod
    def from_sta(cls, sta: STA) -> "CornerSpec":
        """The spec equivalent to re-running an existing :class:`STA`."""
        return cls(
            name=sta.library.name,
            library=sta.library,
            beol_corner=sta.beol_corner,
            temp_c=sta.temp_c,
            derates=sta.derates,
            si_enabled=sta.si_enabled,
        )


class _SiGraphView:
    """The two attributes :func:`repro.sta.si.coupling_deltas` reads,
    bound to a *corner* library instead of the compile graph's."""

    def __init__(self, design: Design, library: Library):
        self.design = design
        self._library = library

    def cell_of(self, ref: PinRef):
        return self._library.cell(self.design.instance(ref.instance).cell_name)


def compile_kernel(
    design: Design,
    constraints: Constraints,
    corners: Sequence[CornerSpec],
    stack: Optional[BeolStack] = None,
    graph: Optional[TimingGraph] = None,
    parasitics: Optional[ParasiticExtractor] = None,
) -> "CompiledKernel":
    """Compile ``design`` against a batch of corners.

    ``graph``/``parasitics`` let a caller that already holds a bound
    graph (the incremental timer) reuse it; when given, the graph must
    have been built against ``corners[0].library``.
    """
    return CompiledKernel(design, constraints, list(corners),
                          stack=stack, graph=graph, parasitics=parasitics)


def kernel_full_run(sta: STA) -> Tuple[TimingReport, "CompiledKernel"]:
    """Time one already-constructed STA through the vector kernel.

    Produces the same ``sta.prop`` / ``sta.si_delta`` / report a
    reference :meth:`~repro.sta.analysis.STA.run` would, so path
    reconstruction, PBA and the closure loop's fix targeting work
    unchanged on the result. Raises :class:`KernelCompileError` when the
    graph cannot be compiled (caller falls back to ``sta.run()``).
    """
    kernel = compile_kernel(
        sta.design, sta.constraints, [CornerSpec.from_sta(sta)],
        stack=sta.stack, graph=sta.graph, parasitics=sta.parasitics,
    )
    kernel.run()
    sta.si_delta = kernel.si_delta_for(0)
    sta.prop = kernel.materialize_prop(0)
    report = TimingReport(
        setup=sta._setup_endpoints() + sta._output_endpoints(),
        hold=sta._hold_endpoints(),
        slew_violations=sta._slew_violations(),
        scenario=sta.library.name,
    )
    return report, kernel


# ---------------------------------------------------------------------- #
# array-backed STA compatibility layer


class _LazyProp(PropagationResult):
    """A :class:`PropagationResult` materialized on demand from the
    kernel's arrays.

    Reads (``at``/``has``/``worst_late``/``best_early`` and pred walks)
    behave exactly like the reference object while only constructing the
    :class:`Arrival` entries a consumer actually touches. It is a
    *read-only* view: mutating consumers (the incremental timer's cone
    updates) must use :meth:`CompiledKernel.materialize_prop` instead.
    """

    def __init__(self, kernel: "CompiledKernel", ci: int):
        super().__init__()
        self._kernel = kernel
        self._ci = ci
        self.loads = kernel._loads_dict(ci)

    def at(self, ref: PinRef, direction: str) -> Arrival:
        key = (ref, direction)
        arr = self.arrivals.get(key)
        if arr is None:
            arr = self._kernel._make_arrival(self._ci, ref, direction)
            self.arrivals[key] = arr
        return arr

    def has(self, ref: PinRef, direction: str) -> bool:
        node = self._kernel._node_index.get((ref, direction))
        if node is None:
            return False
        return bool(self._kernel._arr_late[node, self._ci] > -_INF)


class _CornerGraph:
    """A :class:`TimingGraph`-shaped proxy for one corner.

    Shares the compile graph's structure (adjacency, clock network,
    levelization, depths) but binds checks, cell lookups and — lazily —
    edge arcs to the corner's library, so borrowed STA report code and
    PBA path re-propagation read that corner's tables.
    """

    def __init__(self, kernel: "CompiledKernel", ci: int):
        base = kernel.graph
        self._kernel = kernel
        self._ci = ci
        self.design = base.design
        self.library = kernel.corners[ci].library
        self.constraints = base.constraints
        self.checks = kernel._corner_checks[ci]
        self.clock_pins = base.clock_pins
        self.clock_roots = base.clock_roots
        self.topo_order = base.topo_order
        self.data_depth = base.data_depth

    # Adjacency with corner-rebound cell arcs, built on first use (only
    # PBA's path enumeration needs it).
    @property
    def in_edges(self):
        return self._kernel._rebound_adjacency(self._ci)[0]

    @property
    def out_edges(self):
        return self._kernel._rebound_adjacency(self._ci)[1]

    def setup_checks(self) -> List[TimingCheck]:
        return [c for c in self.checks if c.is_setup]

    def hold_checks(self) -> List[TimingCheck]:
        return [c for c in self.checks if not c.is_setup]

    def output_port_refs(self) -> List[PinRef]:
        return [PinRef("", p) for p in self.design.output_ports()]

    def load_pin_refs(self, net_name: str) -> List[PinRef]:
        return list(self.design.get_net(net_name).loads)

    def instance_of(self, ref: PinRef):
        if ref.is_port:
            raise TimingError(f"{ref} is a port, not an instance pin")
        return self.design.instance(ref.instance)

    def cell_of(self, ref: PinRef):
        return self.library.cell(self.instance_of(ref).cell_name)

    def stats(self) -> Dict[str, int]:
        return self._kernel.graph.stats()


class CornerView(STA):
    """An :class:`STA` whose run state comes from the kernel's batch.

    Everything downstream of propagation — endpoint checks, origin
    annotation, worst-path reconstruction, CPPR, PBA — is inherited
    unchanged from the reference implementation and reads this view's
    array-backed ``prop`` and corner-bound ``graph``. Views are
    read-only analyses; do not hand one to the incremental timer.
    """

    def __init__(self, kernel: "CompiledKernel", ci: int):
        # Deliberately no super().__init__(): the design stays bound to
        # the compile library (binding is library-independent for
        # congruent libraries) and no new graph/extraction is built.
        spec = kernel.corners[ci]
        self.design = kernel.design
        self.library = spec.library
        self.constraints = kernel.constraints
        self.stack = kernel.stack
        self.temp_c = spec.temp_c
        self.beol_corner = spec.beol_corner
        self.derates = spec.derates
        self.si_enabled = spec.si_enabled
        self.parasitics = kernel._parasitics[ci]
        self.graph = _CornerGraph(kernel, ci)
        self.prop = _LazyProp(kernel, ci)
        self.si_delta = kernel.si_delta_for(ci)
        self.algebra = SCALAR  # kernel batches are always scalar
        self.report: Optional[TimingReport] = None

    def run(self) -> TimingReport:
        raise TimingError(
            "CornerView state comes from CompiledKernel.run(); "
            "re-running a view is not supported"
        )


# ---------------------------------------------------------------------- #
# the kernel


class CompiledKernel:
    """Flat-array form of one (design, constraints, corner batch).

    Compilation happens in ``__init__``; :meth:`run` executes the
    batched forward pass; :meth:`report`/:meth:`reports` produce
    per-corner :class:`TimingReport` objects bit-compatible with the
    reference engine; :meth:`view` exposes a full STA-compatible
    per-corner view for path-level analyses.
    """

    def __init__(
        self,
        design: Design,
        constraints: Constraints,
        corners: List[CornerSpec],
        stack: Optional[BeolStack] = None,
        graph: Optional[TimingGraph] = None,
        parasitics: Optional[ParasiticExtractor] = None,
    ):
        if not corners:
            raise KernelCompileError("a kernel batch needs at least one corner")
        self.design = design
        self.constraints = constraints
        self.corners = corners
        self.stack = stack or default_stack()
        self.valid = True
        self._ran = False
        #: Vectorized batch steps executed by :meth:`run` (one per
        #: non-empty level x edge-kind) — the denominator of the
        #: deterministic work ratio.
        self.batch_ops = 0
        #: Vectorized NLDM table evaluations (4 per cell batch step).
        self.batch_lookups = 0

        t0 = time.perf_counter()
        with obs_tracing.span(
            "kernel_compile", design=design.name, corners=len(corners),
        ) as span:
            if graph is None:
                design.bind(corners[0].library)
                graph = TimingGraph(design, corners[0].library, constraints)
            self.graph = graph
            self._compile(parasitics)
            span.set(pins=len(self.pins), levels=self.n_levels,
                     net_expansions=self.n_net_expansions,
                     cell_expansions=self.n_cell_expansions)
        self.compile_s = time.perf_counter() - t0
        obs_metrics.observe("kernel.compile_s", self.compile_s)

        # Per-corner caches filled after run().
        self._arr_late = None
        self._arr_early = None
        self._slew_late = None
        self._slew_early = None
        self._cand_late = None
        self._cand_early = None
        self._pred_rank_cache: Dict[Tuple[int, str], np.ndarray] = {}
        self._view_cache: Dict[int, CornerView] = {}
        self._loads_cache: Dict[int, Dict[PinRef, float]] = {}
        self._rebound_cache: Dict[int, Tuple[dict, dict]] = {}

    # ------------------------------------------------------------------ #
    # compilation

    def _compile(self, parasitics0: Optional[ParasiticExtractor]) -> None:
        graph = self.graph
        design = self.design
        n_corners = len(self.corners)

        # --- pin/node index maps -------------------------------------- #
        self.pins: List[PinRef] = list(graph.topo_order)
        self.pin_index: Dict[PinRef, int] = {
            ref: i for i, ref in enumerate(self.pins)
        }
        # node = pin_index * 2 + direction (0 = rise, 1 = fall)
        self.n_nodes = 2 * len(self.pins)
        self._node_index: Dict[Tuple[PinRef, str], int] = {}
        for i, ref in enumerate(self.pins):
            self._node_index[(ref, "rise")] = 2 * i
            self._node_index[(ref, "fall")] = 2 * i + 1

        # --- levelization (longest-path levels over the pin graph) ---- #
        level: Dict[PinRef, int] = {}
        for ref in self.pins:
            best = 0
            for edge in graph.in_edges.get(ref, []):
                src = edge.driver if isinstance(edge, NetEdge) else edge.src
                best = max(best, level[src] + 1)
            level[ref] = best
        self.pin_level = level
        self.n_levels = (max(level.values()) + 1) if level else 0

        # --- expanded edges, in reference offer order ------------------ #
        # Global expansion order = topo pins x in-edge list order x the
        # reference engine's per-edge direction loops; candidate ranks in
        # this order reproduce the reference "strict >" first-setter
        # backpointers.
        e_src: List[int] = []
        e_dst: List[int] = []
        e_src_dir: List[int] = []
        e_edge: List[object] = []       # NetEdge | CellEdge per expansion
        e_level: List[int] = []
        net_rows: List[int] = []        # expansion ids that are net edges
        cell_rows: List[int] = []       # expansion ids that are cell edges
        net_edge_of: List[int] = []     # per net row: unique net-edge id
        cell_out_dir: List[str] = []    # per cell row
        cell_skew: List[float] = []
        cell_is_clock: List[bool] = []
        cell_depth: List[int] = []
        unique_net_edges: List[NetEdge] = []
        unique_cell_edges: List[CellEdge] = []
        cell_edge_of: List[int] = []    # per cell row: unique cell-edge id

        def node_of(ref: PinRef, d: int) -> int:
            return 2 * self.pin_index[ref] + d

        for ref in self.pins:
            lvl = level[ref]
            for edge in graph.in_edges.get(ref, []):
                if isinstance(edge, NetEdge):
                    ne = len(unique_net_edges)
                    unique_net_edges.append(edge)
                    for d in (0, 1):
                        e = len(e_src)
                        e_src.append(node_of(edge.driver, d))
                        e_dst.append(node_of(edge.sink, d))
                        e_src_dir.append(d)
                        e_edge.append(edge)
                        e_level.append(lvl)
                        net_rows.append(e)
                        net_edge_of.append(ne)
                else:
                    arc = edge.arc
                    ce = len(unique_cell_edges)
                    unique_cell_edges.append(edge)
                    skew = 0.0
                    if arc.timing_type is TimingType.RISING_EDGE:
                        skew = self.constraints.clock_latency.get(
                            edge.instance, 0.0)
                    is_clock = edge.src in graph.clock_pins
                    depth = graph.data_depth.get(edge.dst, 1)
                    for in_d, in_dir in enumerate(DIRECTIONS):
                        for out_dir in arc.sense.output_directions(in_dir):
                            if out_dir not in arc.timing:
                                continue
                            e = len(e_src)
                            e_src.append(node_of(edge.src, in_d))
                            e_dst.append(node_of(edge.dst, out_dir == "fall"))
                            e_src_dir.append(in_d)
                            e_edge.append(edge)
                            e_level.append(lvl)
                            cell_rows.append(e)
                            cell_edge_of.append(ce)
                            cell_out_dir.append(out_dir)
                            cell_skew.append(skew)
                            cell_is_clock.append(is_clock)
                            cell_depth.append(depth)

        n_exp = len(e_src)
        self.n_net_expansions = len(net_rows)
        self.n_cell_expansions = len(cell_rows)
        self.e_src = np.asarray(e_src, dtype=np.int64)
        self.e_dst = np.asarray(e_dst, dtype=np.int64)
        self.e_src_dir = np.asarray(e_src_dir, dtype=np.int64)
        self.e_edge = e_edge
        self._net_rows = np.asarray(net_rows, dtype=np.int64)
        self._cell_rows = np.asarray(cell_rows, dtype=np.int64)
        self._cell_edge_of = np.asarray(cell_edge_of, dtype=np.int64)
        self._unique_net_edges = unique_net_edges
        self._unique_cell_edges = unique_cell_edges

        # Per-level schedule: net batch then cell batch, like the
        # reference's in-edge interleave (order across kinds within a
        # level is irrelevant: all sources live in earlier levels).
        lvl_net: List[List[int]] = [[] for _ in range(self.n_levels)]
        lvl_cell: List[List[int]] = [[] for _ in range(self.n_levels)]
        for e in net_rows:
            lvl_net[e_level[e]].append(e)
        for e in cell_rows:
            lvl_cell[e_level[e]].append(e)
        self._schedule: List[Tuple[np.ndarray, np.ndarray]] = [
            (np.asarray(lvl_net[i], dtype=np.int64),
             np.asarray(lvl_cell[i], dtype=np.int64))
            for i in range(self.n_levels)
        ]

        # --- per-corner arc congruence maps ---------------------------- #
        self._arc_map_cache: Dict[Tuple[int, str], Dict] = {}
        # Corner-swapped CellEdge cache, keyed (corner, id(base edge)) —
        # shared by pred backpointers and rebound adjacency so the same
        # swapped object serves both (PBA walks rely on that).
        self._edge_swap_cache: Dict[int, Dict[int, CellEdge]] = {}
        self._corner_checks: List[List[TimingCheck]] = []
        for ci in range(n_corners):
            if ci == 0:
                self._corner_checks.append(list(graph.checks))
                continue
            checks_c = []
            for check in graph.checks:
                cell_name = design.instance(check.instance).cell_name
                arc = self._corner_arc(ci, cell_name, check.arc)
                checks_c.append(TimingCheck(
                    instance=check.instance, data_pin=check.data_pin,
                    clock_pin=check.clock_pin, arc=arc,
                ))
            self._corner_checks.append(checks_c)

        # --- stacked NLDM table tensors (corner-leading axis) ---------- #
        # tid registry: (cell_name, related, pin, timing_type, out_dir,
        # which) -> tid; the same cell type shares tables across
        # instances, so T is small even for large designs.
        tid_of: Dict[Tuple, int] = {}
        tid_tables: List[List] = []  # per tid: per-corner LookupTable2D
        cell_dtid: List[int] = []
        cell_stid: List[int] = []

        def corner_tables(cell_name: str, arc0: TimingArc, out_dir: str):
            tabs_d, tabs_s = [], []
            for ci, spec in enumerate(self.corners):
                arc = arc0 if ci == 0 else \
                    self._corner_arc(ci, cell_name, arc0)
                timing = arc.timing.get(out_dir)
                if timing is None:
                    raise KernelCompileError(
                        f"corner {spec.name!r}: arc "
                        f"{arc0.related_pin}->{arc0.pin} of {cell_name} "
                        f"lacks timing for {out_dir!r}"
                    )
                tabs_d.append(timing.delay)
                tabs_s.append(timing.slew)
            return tabs_d, tabs_s

        for row, e in enumerate(cell_rows):
            edge = e_edge[e]
            cell_name = design.instance(edge.instance).cell_name
            out_dir = cell_out_dir[row]
            key_d = (cell_name, edge.arc.related_pin, edge.arc.pin,
                     edge.arc.timing_type, out_dir, "delay")
            key_s = key_d[:-1] + ("slew",)
            if key_d not in tid_of:
                tabs_d, tabs_s = corner_tables(cell_name, edge.arc, out_dir)
                tid_of[key_d] = len(tid_tables)
                tid_tables.append(tabs_d)
                tid_of[key_s] = len(tid_tables)
                tid_tables.append(tabs_s)
            cell_dtid.append(tid_of[key_d])
            cell_stid.append(tid_of[key_s])

        n_tables = len(tid_tables)
        s_max = max((t[0].index_1.size for t in tid_tables), default=2)
        l_max = max((t[0].index_2.size for t in tid_tables), default=2)
        self._grid1 = np.full((n_corners, n_tables, s_max), _INF)
        self._grid2 = np.full((n_corners, n_tables, l_max), _INF)
        self._values = np.zeros((n_corners, n_tables, s_max, l_max))
        self._clamp1 = np.zeros(n_tables, dtype=np.int64)
        self._clamp2 = np.zeros(n_tables, dtype=np.int64)
        for t, tabs in enumerate(tid_tables):
            shape = tabs[0].values.shape
            self._clamp1[t] = shape[0] - 2
            self._clamp2[t] = shape[1] - 2
            for ci, table in enumerate(tabs):
                if table.values.shape != shape:
                    raise KernelCompileError(
                        f"corner {self.corners[ci].name!r}: table shape "
                        f"{table.values.shape} differs from corner 0's "
                        f"{shape}; cannot stack"
                    )
                self._grid1[ci, t, :shape[0]] = table.index_1
                self._grid2[ci, t, :shape[1]] = table.index_2
                self._values[ci, t, :shape[0], :shape[1]] = table.values
        self.n_tables = n_tables

        # Global (n_exp,) arrays; only cell rows are meaningful.
        dtid = np.zeros(n_exp, dtype=np.int64)
        stid = np.zeros(n_exp, dtype=np.int64)
        dtid[self._cell_rows] = np.asarray(cell_dtid, dtype=np.int64)
        stid[self._cell_rows] = np.asarray(cell_stid, dtype=np.int64)
        self._dtid = dtid
        self._stid = stid
        skew_arr = np.zeros(n_exp)
        skew_arr[self._cell_rows] = np.asarray(cell_skew)
        self._skew = skew_arr

        # --- per-corner static arrays ---------------------------------- #
        self._parasitics: List[ParasiticExtractor] = []
        self._si_deltas: List[Optional[Dict[str, float]]] = []
        self._wire_base = np.zeros((n_exp, n_corners))
        self._wire_delta = np.zeros((n_exp, n_corners))
        self._wire_degrade = np.zeros((n_exp, n_corners))
        self._wire_early = np.zeros((n_exp, n_corners))
        self._load = np.zeros((n_exp, n_corners))
        self._uload = np.zeros((len(unique_cell_edges), n_corners))
        self._factor_late = np.ones((n_exp, n_corners))
        self._factor_early = np.ones((n_exp, n_corners))
        self._slew_limit = np.zeros((len(self.pins), n_corners))

        cell_rows_arr = self._cell_rows
        is_clock_arr = np.asarray(cell_is_clock, dtype=bool)
        for ci, spec in enumerate(self.corners):
            lib = spec.library
            self._check_cell_congruence(ci)
            if ci == 0 and parasitics0 is not None:
                para = parasitics0
            else:
                para = ParasiticExtractor(
                    design, lib, self.stack, spec.beol_corner,
                    temp_c=spec.temp_c,
                )
            self._parasitics.append(para)

            si_delta: Dict[str, float] = {}
            if spec.si_enabled:
                from repro.sta.si import coupling_deltas

                si_delta = coupling_deltas(_SiGraphView(design, lib), para)
                self._si_deltas.append(si_delta)
            else:
                self._si_deltas.append(None)

            # net-edge statics (per unique net edge, broadcast to the
            # rise/fall expansion rows)
            for ne, edge in enumerate(unique_net_edges):
                pin_cap = self._pin_cap(lib, edge.sink)
                np_ = para.extract(edge.net_name)
                base = np_.wire_delay(edge.sink, pin_cap)
                degrade = np_.slew_degradation(edge.sink, pin_cap)
                delta = si_delta.get(edge.net_name, 0.0)
                early = max(base - delta, 0.0)
                for d in (0, 1):
                    e = self._net_rows[2 * ne + d]
                    self._wire_base[e, ci] = base
                    self._wire_delta[e, ci] = delta
                    self._wire_degrade[e, ci] = degrade
                    self._wire_early[e, ci] = early

            # cell-edge loads (memoized per driven net; recorded per
            # unique edge, like the reference, so loads exist even for
            # arcs with no usable output direction)
            load_by_net: Dict[str, float] = {}
            for ce, edge in enumerate(unique_cell_edges):
                inst = design.instance(edge.instance)
                net_name = inst.net_of(edge.arc.pin)
                load = load_by_net.get(net_name)
                if load is None:
                    np_ = para.extract(net_name)
                    load = np_.driver_load(para.pin_caps_total(net_name))
                    load_by_net[net_name] = load
                self._uload[ce, ci] = load
            if cell_rows_arr.size:
                self._load[cell_rows_arr, ci] = \
                    self._uload[self._cell_edge_of, ci]

            # derate factors
            d = spec.derates
            flat_only = (d.aocv is None and not d.instance_late
                         and not d.instance_early)
            if flat_only:
                self._factor_late[cell_rows_arr, ci] = np.where(
                    is_clock_arr, d.clock_late, d.data_late)
                self._factor_early[cell_rows_arr, ci] = np.where(
                    is_clock_arr, d.clock_early, d.data_early)
            else:
                for row, e in enumerate(cell_rows_arr):
                    edge = e_edge[e]
                    self._factor_late[e, ci] = d.factor(
                        cell_is_clock[row], "late", cell_depth[row],
                        edge.instance)
                    self._factor_early[e, ci] = d.factor(
                        cell_is_clock[row], "early", cell_depth[row],
                        edge.instance)

            # max-transition limits per pin (port pins get +inf: exempt)
            default = self.constraints.max_transition or \
                lib.default_max_transition
            limit_of: Dict[Tuple[str, str], float] = {}
            for i, ref in enumerate(self.pins):
                if ref.is_port:
                    self._slew_limit[i, ci] = _INF
                    continue
                key = (design.instance(ref.instance).cell_name, ref.pin)
                limit = limit_of.get(key)
                if limit is None:
                    pin = lib.cell(key[0]).pin(key[1])
                    limit = pin.max_transition or default
                    limit_of[key] = limit
                self._slew_limit[i, ci] = limit

        # --- seeds (corner-independent; exact reference offer replay) -- #
        seed_arr: Dict[int, Arrival] = {}
        for clock in self.constraints.clocks.values():
            root = PinRef("", clock.port)
            for d, direction in enumerate(DIRECTIONS):
                node = self._node_index.get((root, direction))
                if node is None:
                    continue
                arr = seed_arr.setdefault(node, Arrival())
                arr.offer_late(clock.source_latency, clock.slew, None)
                arr.offer_early(clock.source_latency, clock.slew, None)
        clock_ports = {c.port for c in self.constraints.clocks.values()}
        for port in design.input_ports():
            if port in clock_ports:
                continue
            delay = self.constraints.input_delays.get(port, 0.0)
            ref = PinRef("", port)
            for d, direction in enumerate(DIRECTIONS):
                node = self._node_index.get((ref, direction))
                if node is None:
                    continue
                arr = seed_arr.setdefault(node, Arrival())
                arr.offer_late(delay, self.constraints.default_input_slew,
                               None)
                arr.offer_early(delay, self.constraints.default_input_slew,
                                None)
        self._seeds = seed_arr

    def _pin_cap(self, library: Library, ref: PinRef) -> float:
        if ref.is_port:
            return 2.0  # matches propagation._sink_pin_cap
        cell_name = self.design.instance(ref.instance).cell_name
        return library.cell(cell_name).pin(ref.pin).capacitance

    def _check_cell_congruence(self, ci: int) -> None:
        """Every instantiated cell must exist in the corner library."""
        if ci == 0:
            return
        lib = self.corners[ci].library
        missing = set()
        for inst in self.design.instances.values():
            if inst.cell_name in missing or inst.cell_name in lib.cells:
                continue
            missing.add(inst.cell_name)
        if missing:
            raise KernelCompileError(
                f"corner {self.corners[ci].name!r} library lacks cell(s) "
                f"{sorted(missing)}"
            )

    def _corner_arc(self, ci: int, cell_name: str,
                    arc0: TimingArc) -> TimingArc:
        """The corner-``ci`` arc congruent to ``arc0`` (by related pin,
        pin and timing type), or :class:`KernelCompileError`."""
        if ci == 0:
            return arc0
        cache_key = (ci, cell_name)
        arc_map = self._arc_map_cache.get(cache_key)
        if arc_map is None:
            lib = self.corners[ci].library
            try:
                cell = lib.cell(cell_name)
            except LibraryError:
                raise KernelCompileError(
                    f"corner {self.corners[ci].name!r} library lacks "
                    f"cell {cell_name!r}"
                ) from None
            arc_map = {
                (a.related_pin, a.pin, a.timing_type): a for a in cell.arcs
            }
            self._arc_map_cache[cache_key] = arc_map
        arc = arc_map.get((arc0.related_pin, arc0.pin, arc0.timing_type))
        if arc is None:
            raise KernelCompileError(
                f"corner {self.corners[ci].name!r}: cell {cell_name!r} "
                f"lacks arc {arc0.related_pin}->{arc0.pin} "
                f"({arc0.timing_type.value})"
            )
        if arc.sense is not arc0.sense:
            raise KernelCompileError(
                f"corner {self.corners[ci].name!r}: arc "
                f"{arc0.related_pin}->{arc0.pin} of {cell_name!r} changes "
                f"sense ({arc0.sense.value} vs {arc.sense.value})"
            )
        return arc

    # ------------------------------------------------------------------ #
    # the batched forward pass

    def invalidate(self) -> None:
        """Mark the compiled arrays stale (topology/table edit)."""
        self.valid = False

    def run(self) -> None:
        """Propagate every corner simultaneously."""
        if not self.valid:
            raise TimingError("kernel was invalidated; recompile first")
        n_corners = len(self.corners)
        with obs_tracing.span(
            "kernel_batch", design=self.design.name, corners=n_corners,
            levels=self.n_levels,
        ):
            self._run_batch()
        obs_metrics.observe("kernel.batch_corners", n_corners)
        obs_metrics.inc("kernel.batches")
        self._ran = True

    def _run_batch(self) -> None:
        C = len(self.corners)
        N = self.n_nodes
        E = len(self.e_src)
        arr_l = np.full((N, C), -_INF)
        arr_e = np.full((N, C), _INF)
        slew_l = np.zeros((N, C))
        slew_e = np.full((N, C), _INF)
        cand_l = np.full((E, C), -_INF)
        cand_e = np.full((E, C), _INF)
        self.batch_ops = 0
        self.batch_lookups = 0

        for node, arr in self._seeds.items():
            arr_l[node, :] = arr.late
            arr_e[node, :] = arr.early
            slew_l[node, :] = arr.slew_late
            slew_e[node, :] = arr.slew_early

        src, dst = self.e_src, self.e_dst
        for net_ids, cell_ids in self._schedule:
            if net_ids.size:
                e = net_ids
                s, d = src[e], dst[e]
                al = arr_l[s]
                has = al > -_INF
                cl = np.where(has, (al + self._wire_base[e])
                              + self._wire_delta[e], -_INF)
                sl = np.where(has, slew_l[s] + self._wire_degrade[e], 0.0)
                ae = arr_e[s]
                me = has & (ae < _INF)
                ce = np.where(me, ae + self._wire_early[e], _INF)
                se_src = slew_e[s]
                se = np.where(
                    me,
                    np.where(np.isfinite(se_src), se_src, 0.0)
                    + self._wire_degrade[e],
                    _INF,
                )
                cand_l[e] = cl
                cand_e[e] = ce
                np.maximum.at(arr_l, d, cl)
                np.maximum.at(slew_l, d, sl)
                np.minimum.at(arr_e, d, ce)
                np.minimum.at(slew_e, d, se)
                self.batch_ops += 1
            if cell_ids.size:
                e = cell_ids
                s, d = src[e], dst[e]
                al = arr_l[s]
                has = al > -_INF
                in_sl = slew_l[s]
                in_se = slew_e[s]
                in_se = np.where(np.isfinite(in_se), in_se, 0.0)
                load = self._load[e]
                d_l = self._bilinear(self._dtid[e], in_sl, load)
                s_l = self._bilinear(self._stid[e], in_sl, load)
                d_e = self._bilinear(self._dtid[e], in_se, load)
                s_e = self._bilinear(self._stid[e], in_se, load)
                skew = self._skew[e][:, None]
                cl = np.where(has, (al + skew) + d_l * self._factor_late[e],
                              -_INF)
                ae = arr_e[s]
                ae = np.where(np.isfinite(ae), ae, 0.0)
                ce = np.where(has, (ae + skew) + d_e * self._factor_early[e],
                              _INF)
                sl = np.where(has, s_l, 0.0)
                se = np.where(has, s_e, _INF)
                cand_l[e] = cl
                cand_e[e] = ce
                np.maximum.at(arr_l, d, cl)
                np.maximum.at(slew_l, d, sl)
                np.minimum.at(arr_e, d, ce)
                np.minimum.at(slew_e, d, se)
                self.batch_ops += 1

        self._arr_late = arr_l
        self._arr_early = arr_e
        self._slew_late = slew_l
        self._slew_early = slew_e
        self._cand_late = cand_l
        self._cand_early = cand_e
        self._pred_rank_cache.clear()
        self._view_cache.clear()
        self._loads_cache.clear()

    def _bilinear(self, tid: np.ndarray, x1: np.ndarray,
                  x2: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`LookupTable2D.lookup` over (edge, corner).

        Replicates the scalar implementation operation-for-operation:
        searchsorted-right segment selection with edge clamping, then
        the same left-associated bilinear expression.
        """
        C = len(self.corners)
        cidx = np.arange(C)[None, :]
        t = tid[:, None]
        g1 = self._grid1[cidx, t]          # (E, C, S)
        g2 = self._grid2[cidx, t]          # (E, C, L)
        i = (g1 <= x1[..., None]).sum(axis=-1) - 1
        i = np.clip(i, 0, self._clamp1[tid][:, None])
        j = (g2 <= x2[..., None]).sum(axis=-1) - 1
        j = np.clip(j, 0, self._clamp2[tid][:, None])
        x1a = np.take_along_axis(g1, i[..., None], -1)[..., 0]
        x1b = np.take_along_axis(g1, (i + 1)[..., None], -1)[..., 0]
        x2a = np.take_along_axis(g2, j[..., None], -1)[..., 0]
        x2b = np.take_along_axis(g2, (j + 1)[..., None], -1)[..., 0]
        u = (x1 - x1a) / (x1b - x1a)
        v = (x2 - x2a) / (x2b - x2a)
        V = self._values
        q11 = V[cidx, t, i, j]
        q21 = V[cidx, t, i + 1, j]
        q12 = V[cidx, t, i, j + 1]
        q22 = V[cidx, t, i + 1, j + 1]
        self.batch_lookups += 1
        return (q11 * (1 - u) * (1 - v)
                + q21 * u * (1 - v)
                + q12 * (1 - u) * v
                + q22 * u * v)

    # ------------------------------------------------------------------ #
    # result materialization

    def _require_run(self) -> None:
        if not self._ran:
            raise TimingError("call CompiledKernel.run() first")

    def si_delta_for(self, ci: int) -> Optional[Dict[str, float]]:
        """Per-net SI deltas of corner ``ci`` (None when SI is off),
        matching what a reference run would leave on ``sta.si_delta``."""
        delta = self._si_deltas[ci]
        return dict(delta) if delta is not None else None

    def _pred_ranks(self, ci: int, mode: str) -> np.ndarray:
        """Per node: global rank of the first candidate equal to the
        final arrival — exactly the reference first-setter backpointer."""
        key = (ci, mode)
        ranks = self._pred_rank_cache.get(key)
        if ranks is not None:
            return ranks
        if mode == "late":
            match = self._cand_late[:, ci] == self._arr_late[self.e_dst, ci]
        else:
            match = self._cand_early[:, ci] == self._arr_early[self.e_dst, ci]
        ranks = np.full(self.n_nodes, _NO_PRED, dtype=np.int64)
        sel = np.nonzero(match)[0]
        np.minimum.at(ranks, self.e_dst[sel], sel)
        self._pred_rank_cache[key] = ranks
        return ranks

    def _pred_of(self, ci: int, node: int, mode: str):
        if mode == "late":
            if not self._arr_late[node, ci] > -_INF:
                return None
        else:
            if not self._arr_early[node, ci] < _INF:
                return None
        rank = self._pred_ranks(ci, mode)[node]
        if rank == _NO_PRED:
            return None
        edge = self._corner_edge(ci, self.e_edge[rank])
        return (edge, DIRECTIONS[self.e_src_dir[rank]])

    def _corner_edge(self, ci: int, edge):
        """``edge`` with its arc rebound to corner ``ci``'s library (net
        edges and corner 0 pass through unchanged)."""
        if ci == 0 or isinstance(edge, NetEdge):
            return edge
        swapped = self._edge_swap_cache.setdefault(ci, {})
        out = swapped.get(id(edge))
        if out is None:
            cell_name = self.design.instance(edge.instance).cell_name
            out = CellEdge(
                instance=edge.instance,
                arc=self._corner_arc(ci, cell_name, edge.arc),
            )
            swapped[id(edge)] = out
        return out

    def _make_arrival(self, ci: int, ref: PinRef, direction: str) -> Arrival:
        node = self._node_index.get((ref, direction))
        if node is None:
            return Arrival()
        return self._arrival_at(ci, node)

    def _arrival_at(self, ci: int, node: int) -> Arrival:
        self._require_run()
        late = float(self._arr_late[node, ci])
        if not late > -_INF:
            return Arrival()
        early = float(self._arr_early[node, ci])
        slew_early = float(self._slew_early[node, ci])
        return Arrival(
            late=late,
            early=early,
            slew_late=float(self._slew_late[node, ci]),
            slew_early=slew_early if slew_early < _INF else 0.0,
            pred_late=self._pred_of(ci, node, "late"),
            pred_early=self._pred_of(ci, node, "early"),
        )

    def _loads_dict(self, ci: int) -> Dict[PinRef, float]:
        loads = self._loads_cache.get(ci)
        if loads is None:
            loads = {}
            for ce, edge in enumerate(self._unique_cell_edges):
                loads[edge.dst] = float(self._uload[ce, ci])
            self._loads_cache[ci] = loads
        return dict(loads)

    def materialize_prop(self, ci: int) -> PropagationResult:
        """A fully-materialized, mutation-safe reference
        :class:`PropagationResult` for corner ``ci`` (the incremental
        timer's cone updates pop and rebuild entries in place)."""
        self._require_run()
        prop = PropagationResult()
        reached = np.nonzero(self._arr_late[:, ci] > -_INF)[0]
        # Warm both pred-rank caches once (vectorized) so the per-node
        # loop below is dictionary work only.
        self._pred_ranks(ci, "late")
        self._pred_ranks(ci, "early")
        pins = self.pins
        for node in reached:
            ref = pins[node >> 1]
            direction = DIRECTIONS[node & 1]
            prop.arrivals[(ref, direction)] = self._arrival_at(ci, int(node))
        prop.loads = self._loads_dict(ci)
        return prop

    # ------------------------------------------------------------------ #
    # reports and views

    def view(self, ci: int) -> CornerView:
        """An STA-compatible view of corner ``ci`` (lazy, read-only)."""
        self._require_run()
        view = self._view_cache.get(ci)
        if view is None:
            view = CornerView(self, ci)
            self._view_cache[ci] = view
        return view

    def report(self, ci: int) -> TimingReport:
        """The corner's timing report, bit-compatible with
        :meth:`STA.run` (scenario field = library name, as there)."""
        view = self.view(ci)
        report = TimingReport(
            setup=view._setup_endpoints() + view._output_endpoints(),
            hold=view._hold_endpoints(),
            slew_violations=self._slew_violations(ci),
            scenario=view.library.name,
        )
        view.report = report
        return report

    def reports(self) -> List[TimingReport]:
        return [self.report(ci) for ci in range(len(self.corners))]

    def _slew_violations(self, ci: int) -> List[SlewViolation]:
        """Vectorized max-transition sweep, equal to the reference
        per-pin walk (worst reached slew vs per-pin limit)."""
        self._require_run()
        sl = self._slew_late[:, ci]
        reached = self._arr_late[:, ci] > -_INF
        by_dir = np.where(reached, sl, 0.0).reshape(-1, 2)
        worst = np.maximum(by_dir[:, 0], by_dir[:, 1])
        over = np.nonzero(worst > self._slew_limit[:, ci])[0]
        out = []
        for i in over:
            out.append(SlewViolation(
                ref=self.pins[i], slew=float(worst[i]),
                limit=float(self._slew_limit[i, ci]),
            ))
        return out

    def _rebound_adjacency(self, ci: int) -> Tuple[dict, dict]:
        """Adjacency dicts whose CellEdges carry corner-``ci`` arcs."""
        if ci == 0:
            return self.graph.in_edges, self.graph.out_edges
        cached = self._rebound_cache.get(ci)
        if cached is not None:
            return cached
        in_edges = {ref: [self._corner_edge(ci, e) for e in edges]
                    for ref, edges in self.graph.in_edges.items()}
        out_edges = {ref: [self._corner_edge(ci, e) for e in edges]
                     for ref, edges in self.graph.out_edges.items()}
        self._rebound_cache[ci] = (in_edges, out_edges)
        return in_edges, out_edges

    # ------------------------------------------------------------------ #
    # work accounting

    def stats(self) -> Dict[str, float]:
        """Deterministic work statistics for benchmarks and tests."""
        C = len(self.corners)
        scalar_visits = C * (self.n_net_expansions + self.n_cell_expansions)
        scalar_lookups = 4 * C * self.n_cell_expansions
        return {
            "corners": C,
            "pins": len(self.pins),
            "levels": self.n_levels,
            "net_expansions": self.n_net_expansions,
            "cell_expansions": self.n_cell_expansions,
            "tables": self.n_tables,
            "compile_s": self.compile_s,
            "batch_ops": self.batch_ops,
            "batch_lookups": self.batch_lookups,
            "scalar_edge_visits": scalar_visits,
            "scalar_lookups": scalar_lookups,
        }

    def work_ratio(self) -> float:
        """Reference interpreter edge-visits per vectorized batch step.

        The deterministic analogue of multi-corner throughput: the
        reference engine executes one Python edge-visit per expansion
        per corner, the kernel one numpy batch per (level, edge kind).
        Independent of machine load, unlike wall-clock.
        """
        self._require_run()
        C = len(self.corners)
        scalar = C * (self.n_net_expansions + self.n_cell_expansions)
        return scalar / max(self.batch_ops, 1)
