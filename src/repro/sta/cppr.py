"""Common path pessimism removal (CPPR).

With OCV derating, the shared portion of launch and capture clock paths is
counted as both late (on the launch side) and early (on the capture side),
which is physically impossible — one wire cannot be simultaneously slow
and fast. CPPR credits back the (late - early) difference at the deepest
pin common to both clock paths.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import TimingError
from repro.netlist.design import PinRef
from repro.sta.algebra import SCALAR
from repro.sta.graph import NetEdge


def clock_path_pins(sta, ck_ref: PinRef, direction: str = "rise") -> List[PinRef]:
    """Pins along the worst late clock path from the root to ``ck_ref``."""
    if sta.prop is None:
        raise TimingError("run() must be called before CPPR analysis")
    pins: List[PinRef] = []
    cur, cur_dir = ck_ref, direction
    guard = 0
    while True:
        guard += 1
        if guard > 10000:
            raise TimingError("clock path reconstruction did not terminate")
        pins.append(cur)
        pred = sta.prop.at(cur, cur_dir).pred_late
        if pred is None:
            break
        edge, src_dir = pred
        cur = edge.driver if isinstance(edge, NetEdge) else edge.src
        cur_dir = src_dir
    pins.reverse()
    return pins


def launch_clock_pin(sta, endpoint) -> Optional[PinRef]:
    """The launch flop's CK pin on the worst path into an endpoint, i.e.
    the last clock-network pin along the data path's prefix."""
    path = sta.worst_path(endpoint)
    launch = None
    for point in path.points:
        if point.ref in sta.graph.clock_pins:
            launch = point.ref
        else:
            break
    return launch


def cppr_credit(sta, launch_ck: PinRef, capture_ck: PinRef,
                direction: str = "rise") -> float:
    """The CPPR credit (ps, non-negative) for a launch/capture pair.

    Equal to (late - early) arrival difference at the deepest pin common
    to both clock paths. Zero when the paths share only the root and the
    root has no early/late split.
    """
    launch_path = clock_path_pins(sta, launch_ck, direction)
    capture_path = clock_path_pins(sta, capture_ck, direction)
    common: Optional[PinRef] = None
    for a, b in zip(launch_path, capture_path):
        if a == b:
            common = a
        else:
            break
    if common is None:
        return 0.0
    arr = sta.prop.at(common, direction)
    if not arr.valid:
        return 0.0
    return getattr(sta, "algebra", SCALAR).max(arr.late - arr.early, 0.0)


def endpoint_cppr_credit(sta, endpoint) -> float:
    """CPPR credit for an endpoint's worst launch/capture pair (0 when the
    endpoint has no check or no launching clock pin)."""
    if endpoint.check is None:
        return 0.0
    launch = launch_clock_pin(sta, endpoint)
    if launch is None:
        return 0.0
    return cppr_credit(sta, launch, endpoint.check.clock_pin)
