"""Incremental timing updates for ECO loops.

The paper's Comment 1 celebrates physically-aware ECO tooling; the timer
side of that story is *incrementality* — after a cell swap or resize,
only the affected cone needs re-timing, not the whole design. This module
provides that for topology-preserving edits (Vt-swap, resize): it
invalidates the downstream cone of the edited cells (including the
drivers of their input nets, whose loads changed) and re-propagates just
those pins, reusing stored arrivals everywhere else.

Topology-changing edits (buffer insertion) fall back to a full rebuild —
the honest boundary real incremental timers also draw, just further out.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, List, Optional, Set

from repro.errors import TimingError
from repro.netlist.design import PinRef
from repro.liberty.cell import PinDirection
from repro.sta.analysis import STA
from repro.sta.graph import CellEdge, NetEdge
from repro.sta.propagation import (
    DIRECTIONS,
    _propagate_cell_edge,
    _propagate_net_edge,
)
from repro.sta.reports import TimingReport


class IncrementalTimer:
    """Wraps a run STA and applies cone-limited updates after cell edits."""

    def __init__(self, sta: STA):
        if sta.prop is None:
            raise TimingError("run the STA once before incremental updates")
        self.sta = sta
        self.full_updates = 0
        self.incremental_updates = 0
        self.last_cone_size = 0
        #: Signoff result caches (:class:`repro.sta.scheduler.
        #: ScenarioResultCache`) notified whenever this timer edits the
        #: design, so cached per-scenario reports of the pre-ECO netlist
        #: are dropped eagerly rather than lingering until LRU eviction.
        self.caches: List[object] = []

    def register_cache(self, cache) -> None:
        """Invalidate ``cache`` entries for this design on every update."""
        self.caches.append(cache)

    def _invalidate_caches(self) -> None:
        for cache in self.caches:
            cache.invalidate_design(self.sta.design.name)

    # ------------------------------------------------------------------ #

    def update_cells(self, instance_names: Iterable[str]) -> TimingReport:
        """Re-time after swaps/resizes of the named instances.

        The edited instances must still exist with the same pins (same
        footprint). Returns a fresh report; ``sta.prop`` is updated in
        place so path reconstruction stays valid.
        """
        sta = self.sta
        names = list(instance_names)
        self._invalidate_caches()
        for name in names:
            self._refresh_instance_edges(name)
        seeds: Set[PinRef] = set()
        for name in names:
            inst = sta.design.instance(name)
            cell = sta.library.cell(inst.cell_name)
            for pin in cell.pins.values():
                ref = PinRef(name, pin.name)
                if pin.direction is PinDirection.OUTPUT:
                    seeds.add(ref)
                else:
                    # Input cap changed: the driving net's delay and its
                    # driver's load change too.
                    net_name = inst.net_of(pin.name)
                    sta.parasitics.invalidate(net_name)
                    net = sta.design.get_net(net_name)
                    if net.driver is not None and not net.driver.is_port:
                        seeds.add(net.driver)
                    seeds.add(ref)

        affected = self._downstream_cone(seeds)
        self.last_cone_size = len(affected)
        self.incremental_updates += 1

        # Invalidate and recompute in topological order.
        for ref in affected:
            for direction in DIRECTIONS:
                sta.prop.arrivals.pop((ref, direction), None)
        for ref in sta.graph.topo_order:
            if ref not in affected:
                continue
            for edge in sta.graph.in_edges.get(ref, []):
                if isinstance(edge, NetEdge):
                    _propagate_net_edge(sta.graph, sta.parasitics, sta.prop,
                                        edge, {})
                else:
                    _propagate_cell_edge(sta.graph, sta.parasitics, sta.prop,
                                         edge, sta.derates)
        return self._rebuild_report()

    def full_update(self) -> TimingReport:
        """Fall back to a complete re-run (topology changed)."""
        self._invalidate_caches()
        self.full_updates += 1
        report = self.sta.run()
        self.sta.report = report
        return report

    # ------------------------------------------------------------------ #

    def _refresh_instance_edges(self, name: str) -> None:
        """Point an edited instance's graph edges at its *new* cell's arcs.

        A swap changes ``instance.cell_name`` but the graph's CellEdge
        objects still hold the old cell's tables; this rebinds them (and
        the instance's setup/hold checks) by (related_pin, pin, type).
        """
        sta = self.sta
        inst = sta.design.instance(name)
        cell = sta.library.cell(inst.cell_name)
        arc_map = {
            (arc.related_pin, arc.pin, arc.timing_type): arc
            for arc in cell.arcs
        }

        def rebind(edge: CellEdge) -> CellEdge:
            key = (edge.arc.related_pin, edge.arc.pin, edge.arc.timing_type)
            new_arc = arc_map.get(key)
            if new_arc is None:
                raise TimingError(
                    f"swap on {name} changed the arc set "
                    f"({key} missing in {cell.name}); full rebuild needed"
                )
            return CellEdge(instance=name, arc=new_arc)

        replaced = {}
        for adjacency in (sta.graph.in_edges, sta.graph.out_edges):
            for edges in adjacency.values():
                for i, edge in enumerate(edges):
                    if isinstance(edge, CellEdge) and edge.instance == name:
                        if id(edge) not in replaced:
                            replaced[id(edge)] = rebind(edge)
                        edges[i] = replaced[id(edge)]
        for i, check in enumerate(sta.graph.checks):
            if check.instance == name:
                key = (check.arc.related_pin, check.arc.pin,
                       check.arc.timing_type)
                new_arc = arc_map.get(key)
                if new_arc is None:
                    raise TimingError(
                        f"swap on {name} changed the constraint arcs; "
                        "full rebuild needed"
                    )
                sta.graph.checks[i] = type(check)(
                    instance=name,
                    data_pin=check.data_pin,
                    clock_pin=check.clock_pin,
                    arc=new_arc,
                )

    def _downstream_cone(self, seeds: Set[PinRef]) -> Set[PinRef]:
        affected: Set[PinRef] = set(seeds)
        queue = deque(seeds)
        while queue:
            ref = queue.popleft()
            for edge in self.sta.graph.out_edges.get(ref, []):
                dst = edge.sink if isinstance(edge, NetEdge) else edge.dst
                if dst not in affected:
                    affected.add(dst)
                    queue.append(dst)
        return affected

    def _rebuild_report(self) -> TimingReport:
        sta = self.sta
        report = TimingReport(
            setup=sta._setup_endpoints() + sta._output_endpoints(),
            hold=sta._hold_endpoints(),
            slew_violations=sta._slew_violations(),
            scenario=sta.library.name,
        )
        sta.report = report
        return report
