"""Incremental timing updates for ECO loops.

The paper's Comment 1 celebrates physically-aware ECO tooling; the timer
side of that story is *incrementality* — after a cell swap or resize,
only the affected cone needs re-timing, not the whole design. This module
provides that for topology-preserving edits (Vt-swap, resize): it
invalidates the downstream cone of the edited cells (including the
drivers of their input nets, whose loads changed) and re-propagates just
those pins, reusing stored arrivals everywhere else.

Topology-changing edits (buffer insertion, NDR promotion, useful skew)
fall back to a full rebuild — the honest boundary real incremental
timers also draw, just further out. :meth:`IncrementalTimer.full_update`
really is a full rebuild: it re-binds the design, drops cached
parasitics and reconstructs the timing graph, so it stays correct even
after instances and nets were added.

Guarantees the closure loop leans on:

- **Equivalence** — an incremental update produces the same report a
  from-scratch :meth:`~repro.sta.analysis.STA.run` would (including
  coupling deltas when SI is enabled; touched nets are re-evaluated,
  untouched nets keep their stored deltas).
- **Atomicity** — :meth:`IncrementalTimer.update_cells` validates every
  edit against the graph *before* mutating anything; an edit the timer
  cannot absorb raises :class:`~repro.errors.TimingError` with the
  graph, arrivals and report untouched, so the caller can fall back to
  :meth:`full_update` on a still-usable timer.
- **Edit-keyed invalidation** — registered signoff caches are dropped
  only when an update actually edits the design; a no-op update (empty
  edit list) returns the existing report and leaves every cached
  scenario intact.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import TimingError
from repro.netlist.design import PinRef
from repro.obs import metrics as obs_metrics
from repro.obs import tracing as obs_tracing
from repro.liberty.cell import PinDirection
from repro.sta.analysis import STA
from repro.sta.graph import CellEdge, NetEdge, TimingGraph
from repro.sta.kernel import ENGINES, KernelCompileError, kernel_full_run
from repro.sta.propagation import (
    DIRECTIONS,
    _propagate_cell_edge,
    _propagate_net_edge,
)
from repro.sta.reports import TimingReport

#: Version of the timer's internal state layout. Checkpoints record it so
#: a resumed run knows whether a serialized timer state could be trusted;
#: any mismatch (or absence) means "rebuild from scratch".
TIMER_STATE_VERSION = 1


class IncrementalTimer:
    """Wraps a run STA and applies cone-limited updates after cell edits."""

    def __init__(self, sta: STA, engine: str = "reference"):
        if sta.prop is None:
            raise TimingError("run the STA once before incremental updates")
        if engine not in ENGINES:
            raise TimingError(
                f"unknown engine {engine!r}; pick from {ENGINES}"
            )
        self.sta = sta
        self.engine = engine
        self.full_updates = 0
        self.incremental_updates = 0
        self.last_cone_size = 0
        #: The :class:`~repro.sta.kernel.CompiledKernel` backing the last
        #: full update under the vector engine, if any. Any design edit
        #: invalidates it — cone updates then run through the reference
        #: propagation (the scalar path *is* the fallback engine) until
        #: the next full update recompiles.
        self._kernel = None
        self.kernel_builds = 0
        self.kernel_invalidations = 0
        self.kernel_fallbacks = 0
        #: Signoff result caches (:class:`repro.sta.scheduler.
        #: ScenarioResultCache`) notified whenever this timer edits the
        #: design, so cached per-scenario reports of the pre-ECO netlist
        #: are dropped eagerly rather than lingering until LRU eviction.
        self.caches: List[object] = []

    def register_cache(self, cache) -> None:
        """Invalidate ``cache`` entries for this design on every update."""
        self.caches.append(cache)

    def _invalidate_caches(self) -> None:
        for cache in self.caches:
            cache.invalidate_design(self.sta.design.name)

    @property
    def state_version(self) -> int:
        return TIMER_STATE_VERSION

    # ------------------------------------------------------------------ #

    def update_cells(self, instance_names: Iterable[str]) -> TimingReport:
        """Re-time after swaps/resizes of the named instances.

        The edited instances must still exist with the same pins (same
        footprint). Returns a fresh report; ``sta.prop`` is updated in
        place so path reconstruction stays valid.

        An empty edit list is a no-op: the existing report is returned
        and registered caches are *not* invalidated.

        Raises :class:`~repro.errors.TimingError` — without mutating the
        graph, arrivals or caches — when an edit changed an instance's
        arc set (a full rebuild is needed); the timer stays usable.
        """
        sta = self.sta
        names = list(dict.fromkeys(instance_names))  # de-dupe, keep order
        if not names:
            # No-op pass: nothing changed, so every cached scenario and
            # stored arrival is still valid. Serve the existing report.
            if sta.report is None:
                sta.report = self._build_report()
            return sta.report

        with obs_tracing.span("retime_cone", design=sta.design.name,
                              edited=len(names)) as cone_span:
            # Phase 1 (may raise, mutates nothing): plan the rebinds.
            plans = [self._plan_instance_edges(name) for name in names]

            # Phase 2 (infallible): the edit is absorbable — invalidate
            # registered caches for this design and apply the rebinds.
            # A swapped cell also invalidates any compiled kernel (its
            # stacked tables bake in the old cell); the cone update
            # below runs through the reference propagation regardless.
            self._invalidate_caches()
            self._drop_kernel()
            for plan in plans:
                self._apply_instance_edges(plan)

            seeds: Set[PinRef] = set()
            touched_nets: Set[str] = set()
            for name in names:
                inst = sta.design.instance(name)
                cell = sta.library.cell(inst.cell_name)
                for pin in cell.pins.values():
                    ref = PinRef(name, pin.name)
                    net_name = inst.net_of(pin.name)
                    touched_nets.add(net_name)
                    if pin.direction is PinDirection.OUTPUT:
                        seeds.add(ref)
                    else:
                        # Input cap changed: the driving net's delay and
                        # its driver's load change too.
                        sta.parasitics.invalidate(net_name)
                        net = sta.design.get_net(net_name)
                        if net.driver is not None and not net.driver.is_port:
                            seeds.add(net.driver)
                        seeds.add(ref)

            si_delta = self._refresh_si_deltas(touched_nets)

            affected = self._downstream_cone(seeds)
            self.last_cone_size = len(affected)
            self.incremental_updates += 1
            cone_span.set(cone=len(affected))
            obs_metrics.inc("sta.retime.incremental")
            obs_metrics.observe("sta.retime.cone_size", len(affected))

            # Invalidate and recompute in topological order.
            for ref in affected:
                for direction in DIRECTIONS:
                    sta.prop.arrivals.pop((ref, direction), None)
            for ref in sta.graph.topo_order:
                if ref not in affected:
                    continue
                for edge in sta.graph.in_edges.get(ref, []):
                    if isinstance(edge, NetEdge):
                        _propagate_net_edge(sta.graph, sta.parasitics,
                                            sta.prop, edge, si_delta)
                    else:
                        _propagate_cell_edge(sta.graph, sta.parasitics,
                                             sta.prop, edge, sta.derates)
            return self._rebuild_report()

    def full_update(self) -> TimingReport:
        """Fall back to a complete, honest re-run.

        Unlike the cone update this tolerates *topology* changes: the
        design is re-bound, cached parasitics are dropped and the timing
        graph is rebuilt before re-propagating, so buffer insertions,
        NDR promotions and constraint edits are all absorbed.
        """
        sta = self.sta
        with obs_tracing.span("full_update", design=sta.design.name):
            self._invalidate_caches()
            self._drop_kernel()
            self.full_updates += 1
            self.last_cone_size = 0
            obs_metrics.inc("sta.retime.full")
            sta.design.bind(sta.library)
            sta.parasitics.invalidate()
            sta.graph = TimingGraph(sta.design, sta.library, sta.constraints)
            if self.engine == "vector":
                try:
                    report, kernel = kernel_full_run(sta)
                    self._kernel = kernel
                    self.kernel_builds += 1
                except KernelCompileError as exc:
                    self.kernel_fallbacks += 1
                    obs_metrics.inc("kernel.fallbacks")
                    # Span event (not just the counter) so `trace
                    # summarize` can name the degraded scenario.
                    with obs_tracing.span(
                        "kernel_fallback",
                        scenario=sta.library.name,
                        design=sta.design.name,
                        error=str(exc),
                    ):
                        pass
                    report = sta.run()
            else:
                report = sta.run()
            sta.report = report
            return report

    def _drop_kernel(self) -> None:
        """Invalidate the compiled kernel after a design edit."""
        if self._kernel is not None:
            self._kernel.invalidate()
            self._kernel = None
            self.kernel_invalidations += 1
            obs_metrics.inc("kernel.invalidations")

    # ------------------------------------------------------------------ #

    def _refresh_si_deltas(self, touched_nets: Set[str]) -> Dict[str, float]:
        """Coupling deltas for the re-propagation, post-edit.

        Stored deltas from the last full run are carried over for every
        net the edit could not have changed; nets electrically touched by
        the edit (driver swapped, or a load pin cap changed) are
        re-evaluated. With SI disabled this is just the empty dict.
        """
        sta = self.sta
        if not sta.si_enabled:
            return {}
        from repro.sta.si import net_coupling_delta

        si_delta = dict(sta.si_delta or {})
        for net_name in touched_nets:
            delta = net_coupling_delta(
                sta.graph, sta.parasitics, sta.design.get_net(net_name)
            )
            if delta > 0.0:
                si_delta[net_name] = delta
            else:
                si_delta.pop(net_name, None)
        sta.si_delta = si_delta
        return si_delta

    # Rebind plan entries: (container, index, replacement).
    _Plan = List[Tuple[list, int, object]]

    def _plan_instance_edges(self, name: str) -> "_Plan":
        """Plan pointing an edited instance's graph edges at its *new*
        cell's arcs, without mutating the graph.

        A swap changes ``instance.cell_name`` but the graph's CellEdge
        objects still hold the old cell's tables; the plan rebinds them
        (and the instance's setup/hold checks) by
        (related_pin, pin, type). Raises :class:`TimingError` when the
        new cell's arc set differs — in which case *nothing* has been
        mutated yet and a full rebuild is the caller's move.
        """
        sta = self.sta
        inst = sta.design.instance(name)
        cell = sta.library.cell(inst.cell_name)
        arc_map = {
            (arc.related_pin, arc.pin, arc.timing_type): arc
            for arc in cell.arcs
        }

        replaced: Dict[int, CellEdge] = {}

        def rebind(edge: CellEdge) -> CellEdge:
            key = (edge.arc.related_pin, edge.arc.pin, edge.arc.timing_type)
            new_arc = arc_map.get(key)
            if new_arc is None:
                raise TimingError(
                    f"swap on {name} changed the arc set "
                    f"({key} missing in {cell.name}); full rebuild needed"
                )
            return CellEdge(instance=name, arc=new_arc)

        plan: IncrementalTimer._Plan = []
        for adjacency in (sta.graph.in_edges, sta.graph.out_edges):
            for edges in adjacency.values():
                for i, edge in enumerate(edges):
                    if isinstance(edge, CellEdge) and edge.instance == name:
                        if id(edge) not in replaced:
                            replaced[id(edge)] = rebind(edge)
                        plan.append((edges, i, replaced[id(edge)]))
        for i, check in enumerate(sta.graph.checks):
            if check.instance == name:
                key = (check.arc.related_pin, check.arc.pin,
                       check.arc.timing_type)
                new_arc = arc_map.get(key)
                if new_arc is None:
                    raise TimingError(
                        f"swap on {name} changed the constraint arcs; "
                        "full rebuild needed"
                    )
                plan.append((
                    sta.graph.checks, i,
                    type(check)(
                        instance=name,
                        data_pin=check.data_pin,
                        clock_pin=check.clock_pin,
                        arc=new_arc,
                    ),
                ))
        return plan

    @staticmethod
    def _apply_instance_edges(plan: "_Plan") -> None:
        for container, index, replacement in plan:
            container[index] = replacement

    def _downstream_cone(self, seeds: Set[PinRef]) -> Set[PinRef]:
        affected: Set[PinRef] = set(seeds)
        queue = deque(seeds)
        while queue:
            ref = queue.popleft()
            for edge in self.sta.graph.out_edges.get(ref, []):
                dst = edge.sink if isinstance(edge, NetEdge) else edge.dst
                if dst not in affected:
                    affected.add(dst)
                    queue.append(dst)
        return affected

    def _build_report(self) -> TimingReport:
        sta = self.sta
        return TimingReport(
            setup=sta._setup_endpoints() + sta._output_endpoints(),
            hold=sta._hold_endpoints(),
            slew_violations=sta._slew_violations(),
            scenario=sta.library.name,
        )

    def _rebuild_report(self) -> TimingReport:
        report = self._build_report()
        self.sta.report = report
        return report
