"""Hierarchical signoff: ETM extraction sharded across worker processes.

The paper's §4 names block-level abstraction (extracted timing models /
interface logic models) as the closure lever that keeps SoC signoff
turnaround flat while design sizes grow: extract each physical block
once, in parallel, then run top-level timing against the small boundary
models instead of the flat netlist. This module implements that flow:

1. :class:`HierScheduler` derives per-block constraints from the top
   constraint set, extracts an :class:`~repro.sta.etm.ExtractedTimingModel`
   per block instance in supervised worker processes (deduplicated by
   design/constraint fingerprint and served from a shared
   :class:`~repro.sta.scheduler.ScenarioResultCache`),
2. :func:`build_stub_cell` / :func:`build_stub_view` turn each ETM into
   a Liberty stub cell — slew/load-indexed boundary constraint arcs,
   clock->out launch arcs, feedthrough arcs — and assemble the top-level
   stub design,
3. the existing :class:`~repro.sta.scheduler.SignoffScheduler` signs off
   the stub design per scenario; block-internal WNS merges in from the
   extraction step.

Time-base algebra (why the stub reproduces the flat run *exactly* on
anchored blocks): ETM budget tables record latest/earliest OK arrivals
on the block's absolute time base, so the stub constraint value must
cancel everything the consuming engine adds around it.  With ``T`` the
clock period, ``L`` the source latency, ``u``/``m`` the uncertainty and
flat margin, and ``delta`` the stub-view wire delay from the top clock
port to the stub CK pin, the engine computes

    required = T + (L + delta) - setup(ds, cs) - u - m

and we need ``required == B(ds)`` (the recorded budget), hence

    setup(ds, cs) = T + L + delta - u - m - B(ds).

Hold is the mirror image; clock->out launch arcs shift by ``-delta``
because the recorded arrival already includes ``L`` but the engine
re-adds ``L + delta`` at the CK pin.  ``delta`` depends on the stub
cell's own CK pin cap, so :func:`build_stub_view` builds twice: once
with ``delta = 0`` to measure the clock nets, once with the measured
values baked in.

Scope: exact agreement holds for flat (non-AOCV) derates on the data
network; clock->out and feedthrough arcs additionally assume unit clock
derate factors (the harness and CLI default).  AOCV's depth dependence
cannot be tabulated at a boundary and is out of scope here.
"""

from __future__ import annotations

import copy
import math
import os
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.beol.corners import conventional_corners
from repro.beol.stack import BeolStack, default_stack
from repro.errors import TimingError
from repro.liberty.arcs import ArcTiming, TimingArc, TimingSense, TimingType
from repro.liberty.cell import Cell, Pin, PinDirection
from repro.liberty.library import Library
from repro.liberty.tables import LookupTable2D
from repro.netlist.design import Design, PinRef, PortDirection
from repro.netlist.hierarchy import HierarchicalDesign
from repro.obs import metrics as obs_metrics
from repro.obs import tracing as obs_tracing
from repro.parasitics.synthesis import ParasiticExtractor
from repro.runtime.supervisor import (
    RetryPolicy,
    SupervisedExecutor,
    SupervisedTask,
    TaskStatus,
)
from repro.sta.analysis import STA
from repro.sta.constraints import ClockSpec, Constraints
from repro.sta.etm import CSLEW_AXIS, ExtractedTimingModel, extract_etm
from repro.sta.mcmm import Scenario
from repro.sta.propagation import Derates
from repro.sta.required import pin_slack, required_times
from repro.sta.scheduler import (
    ScenarioResultCache,
    SignoffOutcome,
    SignoffScheduler,
    TracedResult,
    design_fingerprint,
    scenario_fingerprint,
)

#: Fallback axes for constant (scalar-derived) stub tables.
_FALLBACK_SLEW_AXIS = (1.0, 300.0)
_FALLBACK_LOAD_AXIS = (0.5, 250.0)


# ---------------------------------------------------------------------- #
# per-block constraints


def block_constraints(top: Constraints, clock: ClockSpec,
                      clock_port: str = "clk") -> Constraints:
    """The standalone constraint set a block is extracted under.

    The block sees its own clock (the top spec re-rooted at the block's
    local clock port) and inherits the top's slew defaults and flat
    margins. Input delays stay empty — the extractor requires budgets
    measured from the bare clock edge.
    """
    spec = replace(clock, port=clock_port)
    return Constraints(
        clocks={clock.name: spec},
        default_input_slew=top.default_input_slew,
        max_transition=top.max_transition,
        flat_setup_margin=top.flat_setup_margin,
        flat_hold_margin=top.flat_hold_margin,
    )


# ---------------------------------------------------------------------- #
# extraction worker


def _extract_etm_job(job, attempt: int = 1):
    """Module-level ETM extraction worker (process pools pickle it).

    Runs exactly one full STA per extraction: :func:`extract_etm` reads
    the analysis' retained ``sta.report`` instead of re-running. The
    ``etm_extract`` span records the worker pid so tests (and the trace
    summary) can prove the fan-out actually crossed process boundaries.
    """
    (block, design, library, constraints, stack, corner_name, temp_c,
     derates, isolate, trace) = job
    corner = conventional_corners(stack)[corner_name]
    if not trace:
        if isolate:
            design = copy.deepcopy(design)
        sta = STA(design, library, constraints, stack=stack,
                  beol_corner=corner, temp_c=temp_c, derates=derates)
        sta.run()
        return extract_etm(sta)

    local = obs_tracing.Tracer()
    with obs_tracing.use(local):
        with local.span("etm_extract", block=block, pid=os.getpid(),
                        attempt=attempt, isolated=isolate):
            if isolate:
                design = copy.deepcopy(design)
            sta = STA(design, library, constraints, stack=stack,
                      beol_corner=corner, temp_c=temp_c, derates=derates)
            with local.span("sta_run", block=block):
                sta.run()
            with local.span("etm_tabulate", block=block):
                etm = extract_etm(sta)
    return TracedResult(value=etm, spans=local.spans())


# ---------------------------------------------------------------------- #
# stub cell / stub view construction


def _const_table(axis1, axis2, value: float) -> LookupTable2D:
    rows = [[value] * len(axis2) for _ in axis1]
    return LookupTable2D(axis1, axis2, rows)


def build_stub_cell(
    block_name: str,
    etm: ExtractedTimingModel,
    clock: ClockSpec,
    constraints: Constraints,
    delta: float = 0.0,
    strict: bool = True,
) -> Cell:
    """One Liberty stub cell for one block instance.

    ``clock`` is the *top-level* spec driving this instance (its
    uncertainties and the constraint set's flat margins must match the
    ones the ETM was extracted under — :func:`block_constraints`
    guarantees that). ``delta`` is the stub-view clock insertion delay
    from the top clock port to this cell's CK pin; see the module
    docstring for the algebra.
    """
    cell = Cell(
        name=f"ETM_{block_name}", footprint="etm", size=1.0,
        vt_flavor="etm", area=0.0, leakage=0.0, is_sequential=True,
    )
    ck_cap = etm.clock_caps.get(etm.clock_port, 0.0)
    cell.pins["CK"] = Pin("CK", PinDirection.INPUT, capacitance=ck_cap,
                          is_clock=True)

    c_setup = (clock.period + clock.source_latency + delta
               - clock.uncertainty_setup - constraints.flat_setup_margin)
    c_hold = (clock.source_latency + delta + clock.uncertainty_hold
              + constraints.flat_hold_margin)
    launch_shift = -(clock.source_latency + delta)
    # Pure feedthrough sources carry no register budgets of their own;
    # their timing lives in the feedthrough arc and the checks behind
    # the destination port, so the strict gate must not demand tables.
    ft_sources = {ft.from_port for ft in etm.feedthroughs}

    for port, entry in sorted(etm.ports.items()):
        is_input = entry.setup_budget is not None or \
            entry.input_cap is not None
        if is_input:
            cell.pins[port] = Pin(port, PinDirection.INPUT,
                                  capacitance=entry.pin_cap or 0.0)
        else:
            cell.pins[port] = Pin(port, PinDirection.OUTPUT)

        if entry.setup_budget is not None and \
                (entry.setup_budget_tables or port not in ft_sources):
            setup_c: Dict[str, LookupTable2D] = {}
            hold_c: Dict[str, LookupTable2D] = {}
            if entry.setup_budget_tables:
                for d, t in entry.setup_budget_tables.items():
                    setup_c[d] = LookupTable2D(
                        t.index_1, t.index_2, c_setup - t.values)
                for d, t in entry.hold_budget_tables.items():
                    hold_c[d] = LookupTable2D(
                        t.index_1, t.index_2, t.values - c_hold)
            elif strict:
                raise TimingError(
                    f"block {etm.block_name!r} port {port!r} has no budget "
                    "tables (is the interface anchored?); pass "
                    "strict=False to fall back to scalar budgets"
                )
            else:
                for d in ("rise", "fall"):
                    setup_c[d] = _const_table(
                        _FALLBACK_SLEW_AXIS, CSLEW_AXIS,
                        c_setup - entry.setup_budget)
                    hold_c[d] = _const_table(
                        _FALLBACK_SLEW_AXIS, CSLEW_AXIS,
                        (entry.hold_budget or 0.0) - c_hold)
            cell.arcs.append(TimingArc(
                related_pin="CK", pin=port,
                timing_type=TimingType.SETUP_RISING,
                sense=TimingSense.NON_UNATE, constraint=setup_c,
            ))
            if hold_c:
                cell.arcs.append(TimingArc(
                    related_pin="CK", pin=port,
                    timing_type=TimingType.HOLD_RISING,
                    sense=TimingSense.NON_UNATE, constraint=hold_c,
                ))

        if entry.clock_to_out is not None:
            timing: Dict[str, ArcTiming] = {}
            if entry.clock_to_out_timing:
                for d, at in entry.clock_to_out_timing.items():
                    # Recorded arrivals already exclude the source
                    # latency; the engine re-adds L + delta at CK.
                    timing[d] = ArcTiming(delay=at.delay.shifted(-delta),
                                          slew=at.slew)
            elif strict:
                raise TimingError(
                    f"block {etm.block_name!r} output {port!r} has no "
                    "clock->out tables (is the interface anchored?); "
                    "pass strict=False to fall back to scalars"
                )
            else:
                for d in ("rise", "fall"):
                    timing[d] = ArcTiming(
                        delay=_const_table(
                            CSLEW_AXIS, _FALLBACK_LOAD_AXIS,
                            entry.clock_to_out + launch_shift),
                        slew=_const_table(
                            CSLEW_AXIS, _FALLBACK_LOAD_AXIS,
                            entry.out_slew or 20.0),
                    )
            cell.arcs.append(TimingArc(
                related_pin="CK", pin=port,
                timing_type=TimingType.RISING_EDGE,
                sense=TimingSense.NON_UNATE, timing=timing,
            ))

    for ft in etm.feedthroughs:
        # Feedthrough tables are stored underived; the consuming engine
        # applies its own data derates, so they stay exact for any flat
        # derate setting.
        cell.arcs.append(TimingArc(
            related_pin=ft.from_port, pin=ft.to_port,
            timing_type=TimingType.COMBINATIONAL,
            sense=ft.sense, timing=dict(ft.timing),
        ))
    return cell


def build_stub_design(hier: HierarchicalDesign,
                      cells: Dict[str, Cell]) -> Design:
    """The top netlist with every block replaced by its stub instance.

    Shares :meth:`~repro.netlist.hierarchy.HierarchicalDesign.boundary_nets`
    and ``top_ports`` with ``flatten()``, so boundary wiring — net names,
    port names, stub instance locations (the block origins, where the
    anchors sit) — is identical between the flat and hierarchical views.
    """
    top = Design(f"{hier.name}__etm")
    for name in hier.blocks:
        top.add_port(f"clk_{name}", PortDirection.INPUT)
    for port, direction in hier.top_ports():
        top.add_port(port, direction)
    net_of = hier.boundary_nets()
    for name, block in hier.blocks.items():
        cell = cells[name]
        conns = {"CK": f"clk_{name}"}
        for port in block.design.ports:
            if port == block.clock_port:
                continue
            if port in cell.pins:
                conns[port] = net_of[(name, port)]
        top.add_instance(f"sb_{name}", cell.name, conns,
                         location=block.origin)
    return top


def _clock_deltas(design: Design, library: Library, stack: BeolStack,
                  corner, temp_c: float,
                  blocks: Sequence[str]) -> Dict[str, float]:
    """Wire delay from each top clock port to its stub CK pin."""
    design.bind(library)
    para = ParasiticExtractor(design, library, stack, corner,
                              temp_c=temp_c)
    out = {}
    for name in blocks:
        net = para.extract(f"clk_{name}")
        ck_cap = library.cell(f"ETM_{name}").pin("CK").capacitance
        out[name] = net.wire_delay(PinRef(f"sb_{name}", "CK"), ck_cap)
    return out


def build_stub_view(
    hier: HierarchicalDesign,
    etms: Dict[str, ExtractedTimingModel],
    scenario: Scenario,
    stack: BeolStack,
    strict: bool = True,
) -> Tuple[Design, Library]:
    """Stub design + stub library for one scenario.

    Two passes: the stub clock insertion delay ``delta`` depends on the
    stub cell's own CK pin cap and placement, so pass 1 builds with
    ``delta = 0``, measures the clock nets, and pass 2 re-bakes the
    tables with the measured values.
    """
    corner = conventional_corners(stack)[scenario.beol_corner_name]
    temp_c = (scenario.temp_c if scenario.temp_c is not None
              else scenario.library.temp_c)
    deltas = {name: 0.0 for name in hier.blocks}
    design: Optional[Design] = None
    library: Optional[Library] = None
    for _ in range(2):
        cells = {}
        for name, block in hier.blocks.items():
            spec = scenario.constraints.clocks[f"clk_{name}"]
            cells[name] = build_stub_cell(
                name, etms[name], spec, scenario.constraints,
                delta=deltas[name], strict=strict,
            )
        library = Library(
            name=f"{scenario.library.name}__etm",
            vdd=scenario.library.vdd,
            temp_c=scenario.library.temp_c,
            process=scenario.library.process,
            default_max_transition=scenario.library.default_max_transition,
            cells=dict(scenario.library.cells),
        )
        for cell in cells.values():
            library.add_cell(cell)
        design = build_stub_design(hier, cells)
        deltas = _clock_deltas(design, library, stack, corner, temp_c,
                               list(hier.blocks))
    return design, library


# ---------------------------------------------------------------------- #
# the hierarchical scheduler


@dataclass
class BlockExtraction:
    """Supervision bookkeeping for one block extraction."""

    block: str
    scenario: str
    status: str  # "ok" | "cached" | "retried" | "degraded" | "shared"
    attempts: int = 1
    error: Optional[str] = None


@dataclass
class HierSignoffOutcome:
    """One hierarchical signoff pass.

    ``top`` is the stub-design signoff outcome (None when every scenario
    lost a block extraction); block-internal slacks merge in through
    :meth:`merged_wns`, so a hierarchical verdict never silently drops
    violations buried inside a block.
    """

    top: Optional[SignoffOutcome]
    etms: Dict[Tuple[str, str], ExtractedTimingModel]  # (scenario, block)
    extractions: List[BlockExtraction] = field(default_factory=list)
    degraded: List[str] = field(default_factory=list)  # scenario names
    worker_pids: Set[int] = field(default_factory=set)
    etm_cache_hits: int = 0
    etm_computed: int = 0
    wall_time_s: float = 0.0
    events: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.degraded and self.top is not None and self.top.ok

    def block_wns(self, scenario: str, mode: str = "setup") -> float:
        worst = math.inf
        for (scen, _), etm in self.etms.items():
            if scen != scenario:
                continue
            internal = (etm.internal_wns if mode == "setup"
                        else etm.internal_hold_wns)
            worst = min(worst, internal)
        return worst

    def merged_wns(self, mode: str = "setup") -> float:
        """Worst slack anywhere: top boundary paths + block internals."""
        worst = math.inf
        if self.top is not None:
            for report in self.top.reports.values():
                worst = min(worst, report.wns(mode))
        for etm in self.etms.values():
            internal = (etm.internal_wns if mode == "setup"
                        else etm.internal_hold_wns)
            worst = min(worst, internal)
        return worst

    @property
    def has_violations(self) -> bool:
        return self.merged_wns("setup") < 0 or self.merged_wns("hold") < 0

    def render(self, mode: str = "setup") -> str:
        lines: List[str] = []
        if self.top is not None:
            lines.append(self.top.render(mode))
        scenarios = sorted({scen for scen, _ in self.etms})
        if scenarios:
            lines.append(f"block-internal WNS ({mode}):")
            for scen in scenarios:
                blocks = sorted(b for s, b in self.etms if s == scen)
                worst = self.block_wns(scen, mode)
                worst_block = min(
                    blocks,
                    key=lambda b: (self.etms[(scen, b)].internal_wns
                                   if mode == "setup" else
                                   self.etms[(scen, b)].internal_hold_wns),
                )
                lines.append(f"  {scen:<24} {worst:10.3f}  "
                             f"(worst block: {worst_block})")
        pids = sorted(self.worker_pids)
        lines.append(
            f"ETM extractions: {self.etm_computed} computed / "
            f"{self.etm_cache_hits} cached"
            + (f" across {len(pids)} worker pid(s)" if pids else "")
        )
        lines.append(f"hier merged WNS ({mode}): "
                     f"{self.merged_wns(mode):.3f}")
        if self.degraded:
            lines.append(
                f"DEGRADED: {len(self.degraded)} scenario(s) lost a "
                f"block extraction: {', '.join(sorted(self.degraded))}"
            )
        return "\n".join(lines)


class HierScheduler:
    """Hierarchical signoff: parallel ETM extraction, then top-level
    signoff over stub models.

    Extraction fans out through a
    :class:`~repro.runtime.supervisor.SupervisedExecutor` (default: a
    process pool — block STA is CPU-bound), deduplicated by
    (design fingerprint, block-constraint fingerprint): two instances of
    the same block under the same clock extract once. Extracted models
    are cached in a :class:`~repro.sta.scheduler.ScenarioResultCache`
    keyed the same way, so a re-signoff with untouched blocks skips
    extraction entirely. The top-level pass reuses
    :class:`~repro.sta.scheduler.SignoffScheduler` unchanged — the stub
    design is just another design.

    Args:
        hier: the hierarchical design.
        scenarios: top-level MCMM views; each must define one clock
            ``clk_<block>`` per block instance (see
            :meth:`HierarchicalDesign.top_constraints`).
        jobs/executor: extraction fan-out width and pool flavor.
        etm_cache: shared cache for extracted models (optional).
        signoff_cache: passed to the top-level scheduler (optional).
        strict: True refuses blocks whose interfaces could not be
            tabulated (un-anchored ports); False falls back to scalar
            budgets for those ports (conservative, not exact).
    """

    def __init__(
        self,
        hier: HierarchicalDesign,
        scenarios: Sequence[Scenario],
        stack: Optional[BeolStack] = None,
        jobs: int = 2,
        executor: str = "process",
        etm_cache: Optional[ScenarioResultCache] = None,
        signoff_cache: Optional[ScenarioResultCache] = None,
        policy: Optional[RetryPolicy] = None,
        allow_fallback: bool = True,
        strict: bool = True,
        engine: str = "reference",
    ):
        if not scenarios:
            raise TimingError("hierarchical signoff needs at least one "
                              "scenario")
        names = [s.name for s in scenarios]
        if len(set(names)) != len(names):
            raise TimingError("scenario names must be unique")
        if not hier.blocks:
            raise TimingError(f"design {hier.name!r} has no blocks")
        for s in scenarios:
            for name in hier.blocks:
                if f"clk_{name}" not in s.constraints.clocks:
                    raise TimingError(
                        f"scenario {s.name!r} defines no clock "
                        f"clk_{name} for block {name!r}"
                    )
        self.hier = hier
        self.scenarios = list(scenarios)
        self.stack = stack or default_stack()
        self.jobs = jobs
        self.executor = executor
        self.etm_cache = etm_cache
        self.signoff_cache = signoff_cache
        self.policy = policy or RetryPolicy()
        self.allow_fallback = allow_fallback
        self.strict = strict
        self.engine = engine
        #: Block STA extractions actually performed (cache misses after
        #: dedup); the call counter the regression tests assert against.
        self.extraction_runs = 0

    def signoff(self) -> HierSignoffOutcome:
        with obs_tracing.span(
            "hier_signoff", design=self.hier.name,
            blocks=len(self.hier.blocks), scenarios=len(self.scenarios),
            jobs=self.jobs, executor=self.executor,
        ):
            return self._signoff_traced()

    # ------------------------------------------------------------------ #

    def _plan(self):
        """Deduplicated extraction plan.

        key -> (payload prototype, [(scenario_name, block_name), ...]).
        The key is (block design name, design fingerprint, block-level
        scenario fingerprint) — the same triple the ETM cache uses — with
        the block-scenario *name* pinned to "etm" so two top scenarios
        differing only in name share one extraction.
        """
        plan: Dict[tuple, dict] = {}
        for s in self.scenarios:
            for name, block in self.hier.blocks.items():
                spec = s.constraints.clocks[f"clk_{name}"]
                bc = block_constraints(s.constraints, spec,
                                       block.clock_port)
                bscen = Scenario(
                    name="etm", library=s.library, constraints=bc,
                    beol_corner_name=s.beol_corner_name,
                    temp_c=s.temp_c, derates=s.derates,
                )
                key = (block.design.name,
                       design_fingerprint(block.design),
                       scenario_fingerprint(bscen))
                entry = plan.setdefault(
                    key, {"block": name, "scenario": bscen,
                          "design": block.design, "consumers": []})
                entry["consumers"].append((s.name, name))
        return plan

    def _signoff_traced(self) -> HierSignoffOutcome:
        tracer = obs_tracing.active_tracer()
        t0 = time.perf_counter()
        events: List[str] = []
        etms: Dict[Tuple[str, str], ExtractedTimingModel] = {}
        extractions: List[BlockExtraction] = []
        worker_pids: Set[int] = set()
        degraded_scenarios: Set[str] = set()

        plan = self._plan()
        cache_hits = 0
        todo_keys = []
        for key, entry in plan.items():
            cached = (self.etm_cache.lookup(*key)
                      if self.etm_cache is not None else None)
            if cached is not None:
                cache_hits += len(entry["consumers"])
                for scen, block in entry["consumers"]:
                    etms[(scen, block)] = cached
                    extractions.append(BlockExtraction(
                        block=block, scenario=scen, status="cached"))
            else:
                todo_keys.append(key)

        isolate = (self.policy.timeout_s is not None
                   or (self.jobs > 1 and len(todo_keys) > 1
                       and self.executor != "serial"))
        supervisor = SupervisedExecutor(
            jobs=self.jobs, executor=self.executor, policy=self.policy,
            allow_fallback=self.allow_fallback, on_event=events.append,
        )
        with obs_tracing.span("etm_fanout", count=len(todo_keys),
                              isolated=isolate) as fanout_span:
            executions = supervisor.run([
                SupervisedTask(
                    name=(f"etm:{plan[key]['consumers'][0][0]}:"
                          f"{plan[key]['block']}"),
                    fn=_extract_etm_job,
                    payload=(
                        plan[key]["block"],
                        plan[key]["design"],
                        plan[key]["scenario"].library,
                        plan[key]["scenario"].constraints,
                        self.stack,
                        plan[key]["scenario"].beol_corner_name,
                        plan[key]["scenario"].temp_c,
                        plan[key]["scenario"].derates,
                        isolate,
                        tracer is not None,
                    ),
                )
                for key in todo_keys
            ])
        self.extraction_runs += len(todo_keys)

        for key, execution in zip(todo_keys, executions):
            consumers = plan[key]["consumers"]
            if execution.status is TaskStatus.DEGRADED:
                error = (f"{type(execution.error).__name__}: "
                         f"{execution.error}")
                for scen, block in consumers:
                    degraded_scenarios.add(scen)
                    extractions.append(BlockExtraction(
                        block=block, scenario=scen, status="degraded",
                        attempts=execution.attempts, error=error))
                continue
            result = execution.result
            if isinstance(result, TracedResult):
                if tracer is not None:
                    tracer.ingest(result.spans,
                                  parent_id=fanout_span.span_id)
                for span in result.spans:
                    if span.name == "etm_extract":
                        pid = span.attrs.get("pid")
                        if pid is not None:
                            worker_pids.add(pid)
                result = result.value
            if self.etm_cache is not None:
                self.etm_cache.store(*key, result)
            status = ("ok" if execution.status is TaskStatus.OK
                      else "retried")
            for i, (scen, block) in enumerate(consumers):
                etms[(scen, block)] = result
                extractions.append(BlockExtraction(
                    block=block, scenario=scen,
                    status=status if i == 0 else "shared",
                    attempts=execution.attempts))

        obs_metrics.inc("hier.extractions", len(todo_keys))
        obs_metrics.inc("hier.cache.hits", cache_hits)
        obs_metrics.inc("hier.degraded", len(degraded_scenarios))

        live = [s for s in self.scenarios
                if s.name not in degraded_scenarios]
        top_outcome: Optional[SignoffOutcome] = None
        if live:
            stub_design: Optional[Design] = None
            stub_scenarios: List[Scenario] = []
            with obs_tracing.span("stub_build", scenarios=len(live)):
                for s in live:
                    per_block = {b: etms[(s.name, b)]
                                 for b in self.hier.blocks}
                    design, library = build_stub_view(
                        self.hier, per_block, s, self.stack,
                        strict=self.strict,
                    )
                    if stub_design is None:
                        stub_design = design
                    stub_scenarios.append(Scenario(
                        name=s.name, library=library,
                        constraints=s.constraints,
                        beol_corner_name=s.beol_corner_name,
                        temp_c=s.temp_c, derates=s.derates,
                    ))
                    if s.derates != Derates():
                        events.append(
                            f"scenario {s.name}: non-unit derates — "
                            "ETM clock->out/feedthrough arcs assume "
                            "unit clock derate factors"
                        )
            # The stub design is tiny (one instance per block); thread
            # fan-out is plenty and avoids re-pickling stub libraries.
            top = SignoffScheduler(
                stub_scenarios, stack=self.stack,
                jobs=min(self.jobs, len(stub_scenarios)),
                executor="thread" if self.executor == "process"
                else self.executor,
                cache=self.signoff_cache, policy=self.policy,
                keep_going=True, allow_fallback=self.allow_fallback,
                engine=self.engine,
            )
            top_outcome = top.signoff(stub_design)
            degraded_scenarios.update(top_outcome.degraded)

        outcome = HierSignoffOutcome(
            top=top_outcome,
            etms=etms,
            extractions=extractions,
            degraded=sorted(degraded_scenarios),
            worker_pids=worker_pids,
            etm_cache_hits=cache_hits,
            etm_computed=len(todo_keys),
            wall_time_s=time.perf_counter() - t0,
            events=events,
        )
        return outcome


# ---------------------------------------------------------------------- #
# ETM-vs-flat agreement harness


@dataclass
class AgreementRow:
    """One endpoint compared between the flat and hierarchical views."""

    scenario: str
    block: str
    endpoint: str
    kind: str  # "setup" | "hold" | "output"
    flat: float
    hier: float

    @property
    def divergence(self) -> float:
        return abs(self.flat - self.hier)


@dataclass
class AgreementReport:
    """ETM-vs-flat agreement over every boundary endpoint.

    The gate for the hierarchical flow: ``ok`` requires every compared
    endpoint within ``bound`` picoseconds and no degraded scenario.
    """

    rows: List[AgreementRow]
    bound: float = 1.0
    flat_wall_s: float = 0.0
    hier_wall_s: float = 0.0
    extraction_jobs: int = 1
    degraded: List[str] = field(default_factory=list)

    @property
    def max_divergence(self) -> float:
        return max((r.divergence for r in self.rows), default=math.inf)

    @property
    def ok(self) -> bool:
        return (not self.degraded and bool(self.rows)
                and self.max_divergence <= self.bound)

    def worst_rows(self, n: int = 5) -> List[AgreementRow]:
        return sorted(self.rows, key=lambda r: -r.divergence)[:n]

    def render(self) -> str:
        lines = [
            f"{'scenario':<16} {'block':<8} {'endpoint':<28} "
            f"{'kind':<7} {'flat':>10} {'hier':>10} {'diff':>8}"
        ]
        for r in sorted(self.rows,
                        key=lambda r: (r.scenario, r.block, r.endpoint,
                                       r.kind)):
            lines.append(
                f"{r.scenario:<16} {r.block:<8} {r.endpoint:<28} "
                f"{r.kind:<7} {r.flat:10.3f} {r.hier:10.3f} "
                f"{r.divergence:8.3f}"
            )
        lines.append(
            f"{len(self.rows)} endpoint(s), max divergence "
            f"{self.max_divergence:.3f} ps (bound {self.bound:.3f} ps): "
            f"{'OK' if self.ok else 'FAIL'}"
        )
        if self.flat_wall_s > 0 and self.hier_wall_s > 0:
            lines.append(
                f"flat {self.flat_wall_s:.3f}s vs hier "
                f"{self.hier_wall_s:.3f}s "
                f"({self.extraction_jobs} extraction job(s))"
            )
        if self.degraded:
            lines.append(f"DEGRADED: {', '.join(self.degraded)}")
        return "\n".join(lines)


def _block_of_endpoint(hier: HierarchicalDesign, port_name: str) -> str:
    best = ""
    for name in hier.blocks:
        if port_name.startswith(f"{name}_") and len(name) > len(best):
            best = name
    return best or "?"


def compare_hier_vs_flat(
    hier: HierarchicalDesign,
    scenarios: Sequence[Scenario],
    stack: Optional[BeolStack] = None,
    jobs: int = 2,
    executor: str = "thread",
    bound: float = 1.0,
    etm_cache: Optional[ScenarioResultCache] = None,
    strict: bool = True,
) -> AgreementReport:
    """Run both views and compare every boundary endpoint.

    Compared per scenario and block:

    - every tabulated input port: the stub's setup/hold check slack at
      the stub pin vs the flat per-pin slack at the ETM's recorded
      anchor pin (``required_times`` backward pass);
    - every top-level output port: the stub report's output endpoint
      slack vs the flat report's (also covers feedthrough chains).
    """
    stack = stack or default_stack()
    flat = hier.flatten()

    t0 = time.perf_counter()
    flat_view: Dict[str, tuple] = {}
    for s in scenarios:
        corner = conventional_corners(stack)[s.beol_corner_name]
        sta = STA(flat, s.library, s.constraints, stack=stack,
                  beol_corner=corner, temp_c=s.temp_c, derates=s.derates)
        report = sta.run()
        report.scenario = s.name
        flat_view[s.name] = (sta, report,
                             required_times(sta, "late"),
                             required_times(sta, "early"))
    flat_wall = time.perf_counter() - t0

    t1 = time.perf_counter()
    scheduler = HierScheduler(
        hier, scenarios, stack=stack, jobs=jobs, executor=executor,
        etm_cache=etm_cache, strict=strict,
    )
    outcome = scheduler.signoff()
    hier_wall = time.perf_counter() - t1

    rows: List[AgreementRow] = []
    if outcome.top is not None:
        for s in scenarios:
            if s.name not in outcome.top.reports:
                continue
            stub_report = outcome.top.reports[s.name]
            sta, flat_report, req_late, req_early = flat_view[s.name]
            for name in hier.blocks:
                etm = outcome.etms[(s.name, name)]
                for port, entry in etm.ports.items():
                    anchor = etm.boundary_pins.get(port)
                    if anchor is None or "/" not in anchor:
                        continue
                    inst, pin = anchor.split("/", 1)
                    flat_ref = PinRef(f"{name}_{inst}", pin)
                    stub_ref = PinRef(f"sb_{name}", port)
                    if entry.setup_budget_tables:
                        rows.append(AgreementRow(
                            scenario=s.name, block=name,
                            endpoint=str(stub_ref), kind="setup",
                            flat=pin_slack(sta, req_late, flat_ref,
                                           "late"),
                            hier=stub_report.slack_of(stub_ref, "setup"),
                        ))
                    if entry.hold_budget_tables:
                        rows.append(AgreementRow(
                            scenario=s.name, block=name,
                            endpoint=str(stub_ref), kind="hold",
                            flat=pin_slack(sta, req_early, flat_ref,
                                           "early"),
                            hier=stub_report.slack_of(stub_ref, "hold"),
                        ))
            for ep in stub_report.endpoints("setup"):
                if ep.kind != "output":
                    continue
                rows.append(AgreementRow(
                    scenario=s.name,
                    block=_block_of_endpoint(hier, ep.endpoint.pin),
                    endpoint=str(ep.endpoint), kind="output",
                    flat=flat_report.slack_of(ep.endpoint, "setup"),
                    hier=ep.slack,
                ))

    return AgreementReport(
        rows=rows,
        bound=bound,
        flat_wall_s=flat_wall,
        hier_wall_s=hier_wall,
        extraction_jobs=jobs,
        degraded=list(outcome.degraded),
    )
