"""The pin-level timing graph.

Nodes are pins (:class:`repro.netlist.design.PinRef`); edges are either
*net* edges (driver pin -> sink pin, carrying wire delay) or *cell* edges
(input pin -> output pin, carrying a library timing arc). Flip-flops break
the graph into a DAG: their D pins are data endpoints, their CK->Q arcs are
launch edges, and setup/hold constraint arcs become *checks* rather than
edges.

The clock network (pins reachable from a clock root without passing
through a data pin) is marked so propagation can apply clock-specific
derates and CPPR can identify common clock segments.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import TimingError
from repro.liberty.arcs import TimingArc, TimingType
from repro.liberty.cell import PinDirection
from repro.liberty.library import Library
from repro.netlist.design import Design, PinRef
from repro.sta.constraints import Constraints


@dataclass(frozen=True)
class NetEdge:
    """Driver pin -> sink pin through a net."""

    net_name: str
    driver: PinRef
    sink: PinRef


@dataclass(frozen=True)
class CellEdge:
    """Input pin -> output pin through a library delay arc."""

    instance: str
    arc: TimingArc

    @property
    def src(self) -> PinRef:
        return PinRef(self.instance, self.arc.related_pin)

    @property
    def dst(self) -> PinRef:
        return PinRef(self.instance, self.arc.pin)


@dataclass(frozen=True)
class TimingCheck:
    """A setup or hold check at a flop: (data pin, clock pin, arc)."""

    instance: str
    data_pin: PinRef
    clock_pin: PinRef
    arc: TimingArc

    @property
    def is_setup(self) -> bool:
        return self.arc.timing_type is TimingType.SETUP_RISING


class TimingGraph:
    """The levelized timing graph of one design against one library."""

    def __init__(self, design: Design, library: Library,
                 constraints: Constraints):
        self.design = design
        self.library = library
        self.constraints = constraints
        self.in_edges: Dict[PinRef, List[object]] = {}
        self.out_edges: Dict[PinRef, List[object]] = {}
        self.checks: List[TimingCheck] = []
        self.clock_pins: Set[PinRef] = set()
        self.clock_roots: List[PinRef] = []
        self._build()
        self.topo_order: List[PinRef] = self._levelize()
        self._mark_clock_network()
        self.data_depth: Dict[PinRef, int] = self._stage_depths()

    # ------------------------------------------------------------------ #
    # construction

    def _add_edge(self, edge, src: PinRef, dst: PinRef) -> None:
        self.out_edges.setdefault(src, []).append(edge)
        self.in_edges.setdefault(dst, []).append(edge)
        self.in_edges.setdefault(src, self.in_edges.get(src, []))
        self.out_edges.setdefault(dst, self.out_edges.get(dst, []))

    def _build(self) -> None:
        design, library = self.design, self.library
        for net in design.nets.values():
            if net.driver is None:
                continue
            for sink in net.loads:
                self._add_edge(NetEdge(net.name, net.driver, sink),
                               net.driver, sink)
        for inst in design.instances.values():
            cell = library.cell(inst.cell_name)
            for arc in cell.arcs:
                if arc.timing_type.is_delay:
                    edge = CellEdge(inst.name, arc)
                    self._add_edge(edge, edge.src, edge.dst)
                else:
                    self.checks.append(
                        TimingCheck(
                            instance=inst.name,
                            data_pin=PinRef(inst.name, arc.pin),
                            clock_pin=PinRef(inst.name, arc.related_pin),
                            arc=arc,
                        )
                    )
        for clock in self.constraints.clocks.values():
            root = PinRef("", clock.port)
            if clock.port not in design.ports:
                raise TimingError(
                    f"clock {clock.name} enters at unknown port {clock.port!r}"
                )
            self.clock_roots.append(root)

    def _levelize(self) -> List[PinRef]:
        """Kahn topological order; raises on combinational loops."""
        indegree: Dict[PinRef, int] = {
            ref: len(edges) for ref, edges in self.in_edges.items()
        }
        for ref in self.out_edges:
            indegree.setdefault(ref, 0)
        queue = deque(sorted(
            (ref for ref, deg in indegree.items() if deg == 0), key=str
        ))
        order: List[PinRef] = []
        while queue:
            ref = queue.popleft()
            order.append(ref)
            for edge in self.out_edges.get(ref, []):
                dst = edge.sink if isinstance(edge, NetEdge) else edge.dst
                indegree[dst] -= 1
                if indegree[dst] == 0:
                    queue.append(dst)
        if len(order) != len(indegree):
            remaining = [str(r) for r, d in indegree.items() if d > 0]
            raise TimingError(
                "combinational loop detected involving: "
                + ", ".join(sorted(remaining)[:8])
            )
        return order

    def _mark_clock_network(self) -> None:
        """BFS from clock roots through net edges and *buffering* cells
        (buf/inv) — data cells stop clock propagation."""
        queue = deque(self.clock_roots)
        seen: Set[PinRef] = set(self.clock_roots)
        while queue:
            ref = queue.popleft()
            self.clock_pins.add(ref)
            for edge in self.out_edges.get(ref, []):
                if isinstance(edge, NetEdge):
                    nxt = edge.sink
                else:
                    cell = self.library.cell(
                        self.design.instance(edge.instance).cell_name
                    )
                    if cell.footprint not in ("buf", "inv"):
                        continue  # clock stops at data gates and flops
                    nxt = edge.dst
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)

    def _stage_depths(self) -> Dict[PinRef, int]:
        """Cell-arc count from any startpoint — AOCV's path-depth proxy."""
        depth: Dict[PinRef, int] = {}
        for ref in self.topo_order:
            best = 0
            for edge in self.in_edges.get(ref, []):
                if isinstance(edge, NetEdge):
                    best = max(best, depth.get(edge.driver, 0))
                else:
                    best = max(best, depth.get(edge.src, 0) + 1)
            depth[ref] = best
        return depth

    # ------------------------------------------------------------------ #
    # queries

    def startpoints(self) -> List[PinRef]:
        """Pins with no fanin: ports and undriven pins."""
        return [r for r in self.topo_order if not self.in_edges.get(r)]

    def setup_checks(self) -> List[TimingCheck]:
        return [c for c in self.checks if c.is_setup]

    def hold_checks(self) -> List[TimingCheck]:
        return [c for c in self.checks if not c.is_setup]

    def output_port_refs(self) -> List[PinRef]:
        return [PinRef("", p) for p in self.design.output_ports()]

    def load_pin_refs(self, net_name: str) -> List[PinRef]:
        return list(self.design.get_net(net_name).loads)

    def instance_of(self, ref: PinRef):
        if ref.is_port:
            raise TimingError(f"{ref} is a port, not an instance pin")
        return self.design.instance(ref.instance)

    def cell_of(self, ref: PinRef):
        return self.library.cell(self.instance_of(ref).cell_name)

    def stats(self) -> Dict[str, int]:
        n_cell = sum(
            1
            for edges in self.out_edges.values()
            for e in edges
            if isinstance(e, CellEdge)
        )
        n_net = sum(
            1
            for edges in self.out_edges.values()
            for e in edges
            if isinstance(e, NetEdge)
        )
        return {
            "pins": len(self.topo_order),
            "cell_edges": n_cell,
            "net_edges": n_net,
            "checks": len(self.checks),
            "clock_pins": len(self.clock_pins),
        }
