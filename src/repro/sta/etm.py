"""Extracted timing models (ETM) for hierarchical analysis.

Section 4, comment 3: "flat vs ETM-based/hierarchical analysis and
optimization" is one of the schedule/QOR levers of SOC design closure.
An ETM abstracts a closed block to its boundary:

- per data-input port: the *arrival budget* (latest top-level arrival
  that still meets every internal setup check) and a hold budget;
- per output port: the worst clock-to-output delay and slew;
- per input port: the capacitance the top level must drive.

Budgets are read directly off the backward required-time pass
(:mod:`repro.sta.required`), so an ETM check is exact for paths through
the boundary — which the tests verify against flat analysis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import TimingError
from repro.netlist.design import PinRef
from repro.sta.analysis import STA
from repro.sta.propagation import DIRECTIONS
from repro.sta.required import pin_slack, required_times


@dataclass
class EtmPort:
    """Boundary timing data for one port."""

    name: str
    setup_budget: Optional[float] = None  # latest OK arrival, ps
    hold_budget: Optional[float] = None  # earliest OK arrival, ps
    clock_to_out: Optional[float] = None  # worst output delay, ps
    out_slew: Optional[float] = None
    input_cap: Optional[float] = None


@dataclass
class ExtractedTimingModel:
    """A block abstracted to its boundary."""

    block_name: str
    clock_port: str
    period: float
    ports: Dict[str, EtmPort] = field(default_factory=dict)
    internal_wns: float = math.inf  # WNS of purely-internal paths

    def input_ports(self) -> List[str]:
        return [p for p, d in self.ports.items() if d.setup_budget is not None]

    def output_ports(self) -> List[str]:
        return [p for p, d in self.ports.items() if d.clock_to_out is not None]

    def setup_slack_for_arrival(self, port: str, arrival: float) -> float:
        """Top-level setup slack for data arriving at ``arrival`` ps after
        the clock edge at this input port."""
        data = self.ports.get(port)
        if data is None or data.setup_budget is None:
            raise TimingError(f"ETM has no setup budget for port {port!r}")
        return data.setup_budget - arrival

    def hold_slack_for_arrival(self, port: str, arrival: float) -> float:
        data = self.ports.get(port)
        if data is None or data.hold_budget is None:
            raise TimingError(f"ETM has no hold budget for port {port!r}")
        return arrival - data.hold_budget

    def check(self, arrivals: Dict[str, float]) -> float:
        """Merged WNS for a set of top-level input arrivals: the min of
        the internal WNS and every boundary setup slack."""
        wns = self.internal_wns
        for port, arrival in arrivals.items():
            wns = min(wns, self.setup_slack_for_arrival(port, arrival))
        return wns


def extract_etm(sta: STA) -> ExtractedTimingModel:
    """Extract the block's ETM from a completed STA run.

    The run must use zero input delays so budgets are absolute (the
    extractor asserts this).
    """
    if sta.prop is None:
        raise TimingError("run() must be called before ETM extraction")
    constraints = sta.constraints
    if any(v != 0.0 for v in constraints.input_delays.values()):
        raise TimingError("extract the ETM with zero input delays")
    clock = constraints.the_clock()

    etm = ExtractedTimingModel(
        block_name=sta.design.name,
        clock_port=clock.port,
        period=clock.period,
    )

    req_late = required_times(sta, "late")
    req_early = required_times(sta, "early")

    clock_ports = {c.port for c in constraints.clocks.values()}
    for port in sta.design.input_ports():
        if port in clock_ports:
            continue
        ref = PinRef("", port)
        setup_budget = pin_slack(sta, req_late, ref, "late")
        hold_slack = pin_slack(sta, req_early, ref, "early")
        entry = etm.ports.setdefault(port, EtmPort(name=port))
        if not math.isinf(setup_budget):
            # Arrival was 0, so the slack IS the remaining budget.
            entry.setup_budget = setup_budget
        if not math.isinf(hold_slack):
            entry.hold_budget = -hold_slack  # earliest allowed arrival
        entry.input_cap = sta.parasitics.extract(port).driver_load(
            sta.parasitics.pin_caps_total(port)
        )

    report = sta.report if hasattr(sta, "report") and sta.report else None
    if report is None:
        report = sta.run()
    for endpoint in report.endpoints("setup"):
        if endpoint.kind == "output":
            port = endpoint.endpoint.pin
            entry = etm.ports.setdefault(port, EtmPort(name=port))
            entry.clock_to_out = endpoint.arrival
            direction = endpoint.data_direction
            arr = sta.prop.at(endpoint.endpoint, direction)
            entry.out_slew = arr.slew_late

    # Internal WNS: flop-to-flop paths that never cross the boundary.
    # Conservative: endpoints whose worst path starts at a clock root.
    internal = math.inf
    for endpoint in report.endpoints("setup"):
        if endpoint.kind != "setup":
            continue
        path = sta.worst_path(endpoint)
        if path.startpoint.is_port and path.startpoint.pin in clock_ports:
            internal = min(internal, endpoint.slack)
    etm.internal_wns = internal
    return etm


def render_etm(etm: ExtractedTimingModel) -> str:
    """Human-readable ETM summary."""
    lines = [
        f"ETM for block {etm.block_name!r} "
        f"(clock {etm.clock_port}, period {etm.period} ps)",
        f"internal WNS: {etm.internal_wns:.2f} ps",
        f"{'port':<12} {'setup budget':>13} {'hold budget':>12} "
        f"{'clk->out':>9} {'cap (fF)':>9}",
    ]
    for name in sorted(etm.ports):
        p = etm.ports[name]
        fmt = lambda v: f"{v:9.2f}" if v is not None else "        -"
        lines.append(
            f"{name:<12} {fmt(p.setup_budget):>13} "
            f"{fmt(p.hold_budget):>12} {fmt(p.clock_to_out):>9} "
            f"{fmt(p.input_cap):>9}"
        )
    return "\n".join(lines)
