"""Extracted timing models (ETM) for hierarchical analysis.

Section 4, comment 3: "flat vs ETM-based/hierarchical analysis and
optimization" is one of the schedule/QOR levers of SOC design closure.
An ETM abstracts a closed block to its boundary:

- per data-input port: the *arrival budget* (latest top-level arrival
  that still meets every internal setup check) and a hold budget;
- per output port: the worst clock-to-output delay and slew, kept
  separate from pure input->output *feedthrough* arcs (which launch
  from a data port, not the clock);
- per input port: the capacitance the top level must drive.

Scalar budgets are read directly off the backward required-time pass
(:mod:`repro.sta.required`), so an ETM check is exact for paths through
the boundary — which the tests verify against flat analysis.

On top of the scalars, :func:`extract_etm` tabulates slew/load-indexed
boundary arcs in the shape Li & Schlichtmann (arXiv 1705.04976) describe:
setup/hold budgets as functions of the boundary data slew, clock->out
delay/slew as functions of the boundary load, and feedthrough arcs as
full (slew, load) tables. Tabulation requires the *anchored interface*
discipline (see :func:`repro.netlist.hierarchy.with_boundary_anchors`):
each data input drives exactly one combinational anchor cell whose
fanout is flop data pins, and each output is driven by a combinational
anchor. Ports that do not satisfy it keep scalar-only data.

Budget tables are stored on the block's own absolute time base (clock
source latency included); :mod:`repro.sta.hier` applies the affine
shifts that turn them into stub-cell constraint/delay tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import TimingError
from repro.liberty.arcs import ArcTiming, TimingSense
from repro.liberty.tables import LookupTable2D
from repro.netlist.design import PinRef
from repro.sta.analysis import STA
from repro.sta.propagation import DIRECTIONS, driver_load
from repro.sta.required import pin_slack, required_times

#: Degenerate clock-slew axis for budget tables: the budget depends on
#: the boundary data slew only (the capture-clock slew inside the block
#: is fixed by its clock tree), so tables are constant along this axis.
CSLEW_AXIS = (1.0, 300.0)


@dataclass
class EtmClock:
    """A clock the block was extracted under (mirrors ClockSpec)."""

    name: str
    port: str
    period: float
    uncertainty_setup: float
    uncertainty_hold: float
    source_latency: float
    slew: float


@dataclass
class EtmFeedthroughArc:
    """A combinational input->output arc through the block."""

    from_port: str
    to_port: str
    sense: TimingSense
    #: output direction -> delay/slew tables over (input slew, output load),
    #: underived (the consuming engine applies its own derate factors).
    timing: Dict[str, ArcTiming] = field(default_factory=dict)
    slew_validity: Optional[Tuple[float, float]] = None
    load_validity: Optional[Tuple[float, float]] = None


@dataclass
class EtmPort:
    """Boundary timing data for one port."""

    name: str
    setup_budget: Optional[float] = None  # latest OK arrival, ps
    hold_budget: Optional[float] = None  # earliest OK arrival, ps
    clock_to_out: Optional[float] = None  # worst output delay, ps
    out_slew: Optional[float] = None
    input_cap: Optional[float] = None  # legacy: wire + pin load, fF
    # -- extended, slew/load-indexed data -------------------------------- #
    clock: Optional[str] = None  # governing clock name, if unique
    pin_cap: Optional[float] = None  # boundary anchor pin cap, fF
    feedthrough_delay: Optional[float] = None  # worst in->out arrival, ps
    feedthrough_from: Optional[str] = None  # launching input port
    #: data direction -> latest OK arrival vs (data slew, clock slew)
    setup_budget_tables: Dict[str, LookupTable2D] = field(default_factory=dict)
    #: data direction -> earliest OK arrival vs (data slew, clock slew)
    hold_budget_tables: Dict[str, LookupTable2D] = field(default_factory=dict)
    #: output direction -> clock->out arrival/slew vs (clock slew, load);
    #: arrivals are measured from the clock edge at the block clock port
    #: (source latency removed).
    clock_to_out_timing: Dict[str, ArcTiming] = field(default_factory=dict)
    slew_validity: Optional[Tuple[float, float]] = None
    load_validity: Optional[Tuple[float, float]] = None


@dataclass
class ExtractedTimingModel:
    """A block abstracted to its boundary."""

    block_name: str
    clock_port: str
    period: float
    ports: Dict[str, EtmPort] = field(default_factory=dict)
    internal_wns: float = math.inf  # setup WNS of purely-internal paths
    internal_hold_wns: float = math.inf
    #: Every clock the block was extracted under, by name.
    clocks: Dict[str, EtmClock] = field(default_factory=dict)
    #: clock port -> total pin cap its net drives, fF (for stub CK pins).
    clock_caps: Dict[str, float] = field(default_factory=dict)
    #: port -> flat anchor pin ("inst/pin") the tables are referenced to.
    boundary_pins: Dict[str, str] = field(default_factory=dict)
    feedthroughs: List[EtmFeedthroughArc] = field(default_factory=list)
    flat_setup_margin: float = 0.0
    flat_hold_margin: float = 0.0

    def input_ports(self) -> List[str]:
        return [p for p, d in self.ports.items() if d.setup_budget is not None]

    def output_ports(self) -> List[str]:
        return [p for p, d in self.ports.items() if d.clock_to_out is not None]

    def feedthrough_ports(self) -> List[str]:
        return [p for p, d in self.ports.items()
                if d.feedthrough_delay is not None]

    def setup_slack_for_arrival(self, port: str, arrival: float) -> float:
        """Top-level setup slack for data arriving at ``arrival`` ps after
        the clock edge at this input port."""
        data = self.ports.get(port)
        if data is None or data.setup_budget is None:
            raise TimingError(f"ETM has no setup budget for port {port!r}")
        return data.setup_budget - arrival

    def hold_slack_for_arrival(self, port: str, arrival: float) -> float:
        data = self.ports.get(port)
        if data is None or data.hold_budget is None:
            raise TimingError(f"ETM has no hold budget for port {port!r}")
        return arrival - data.hold_budget

    def check(self, arrivals: Dict[str, float]) -> float:
        """Merged WNS for a set of top-level input arrivals: the min of
        the internal WNS and every boundary setup slack."""
        wns = self.internal_wns
        for port, arrival in arrivals.items():
            wns = min(wns, self.setup_slack_for_arrival(port, arrival))
        return wns


def extract_etm(sta: STA, tables: bool = True) -> ExtractedTimingModel:
    """Extract the block's ETM from a completed STA run.

    The run must use zero input delays so budgets are absolute (the
    extractor asserts this). Reuses the retained report of the completed
    run — a second full analysis is only paid if ``run()`` was never
    called. ``tables=False`` skips the slew/load-indexed boundary arcs
    and extracts scalars only.
    """
    if sta.prop is None:
        raise TimingError("run() must be called before ETM extraction")
    constraints = sta.constraints
    if any(v != 0.0 for v in constraints.input_delays.values()):
        raise TimingError("extract the ETM with zero input delays")
    primary = constraints.primary_clock()

    etm = ExtractedTimingModel(
        block_name=sta.design.name,
        clock_port=primary.port,
        period=primary.period,
        flat_setup_margin=constraints.flat_setup_margin,
        flat_hold_margin=constraints.flat_hold_margin,
    )
    for name, spec in constraints.clocks.items():
        etm.clocks[name] = EtmClock(
            name=spec.name, port=spec.port, period=spec.period,
            uncertainty_setup=spec.uncertainty_setup,
            uncertainty_hold=spec.uncertainty_hold,
            source_latency=spec.source_latency, slew=spec.slew,
        )
        etm.clock_caps[spec.port] = sta.parasitics.pin_caps_total(spec.port)

    req_late = required_times(sta, "late")
    req_early = required_times(sta, "early")

    clock_ports = {c.port for c in constraints.clocks.values()}
    for port in sta.design.input_ports():
        if port in clock_ports:
            continue
        ref = PinRef("", port)
        setup_budget = pin_slack(sta, req_late, ref, "late")
        hold_slack = pin_slack(sta, req_early, ref, "early")
        entry = etm.ports.setdefault(port, EtmPort(name=port))
        if not math.isinf(setup_budget):
            # Arrival was 0, so the slack IS the remaining budget.
            entry.setup_budget = setup_budget
        if not math.isinf(hold_slack):
            entry.hold_budget = -hold_slack  # earliest allowed arrival
        entry.input_cap = sta.parasitics.extract(port).driver_load(
            sta.parasitics.pin_caps_total(port)
        )

    report = sta.report
    if report is None:
        report = sta.run()
    for endpoint in report.endpoints("setup"):
        if endpoint.kind != "output":
            continue
        port = endpoint.endpoint.pin
        entry = etm.ports.setdefault(port, EtmPort(name=port))
        direction = endpoint.data_direction
        arr = sta.prop.at(endpoint.endpoint, direction)
        if endpoint.launched_from_clock:
            entry.clock_to_out = endpoint.arrival
            entry.out_slew = arr.slew_late
        else:
            # Feedthrough: the worst path launches from a data input at
            # arrival 0, so this is an in->out delay, not clock-to-out.
            entry.feedthrough_delay = endpoint.arrival
            start = endpoint.startpoint
            if start is not None and start.is_port:
                entry.feedthrough_from = start.pin
            if entry.out_slew is None:
                entry.out_slew = arr.slew_late

    # Internal WNS: flop-to-flop paths that never cross the boundary.
    # Conservative: endpoints whose worst path starts at a clock root.
    internal = math.inf
    for endpoint in report.endpoints("setup"):
        if endpoint.kind != "setup":
            continue
        if endpoint.launched_from_clock:
            internal = min(internal, endpoint.slack)
    etm.internal_wns = internal
    internal_hold = math.inf
    for endpoint in report.endpoints("hold"):
        if endpoint.launched_from_clock:
            internal_hold = min(internal_hold, endpoint.slack)
    etm.internal_hold_wns = internal_hold

    if tables:
        _extract_input_tables(sta, etm, clock_ports)
        _extract_output_tables(sta, etm, clock_ports)
    return etm


# ---------------------------------------------------------------------- #
# slew/load-indexed boundary arcs


def _densify(points) -> List[float]:
    """Sorted unique points plus midpoints (interpolation headroom)."""
    pts = sorted({float(p) for p in points})
    if len(pts) < 2:
        pts = pts + [pts[0] + 1.0] if pts else [1.0, 2.0]
    out: List[float] = []
    for a, b in zip(pts, pts[1:]):
        out.append(a)
        out.append(0.5 * (a + b))
    out.append(pts[-1])
    return out


def _budget_table(axis: List[float], values: List[float]) -> LookupTable2D:
    """A (data slew x clock slew) table constant along the clock axis."""
    return LookupTable2D(
        tuple(axis), CSLEW_AXIS, [[v, v] for v in values]
    )


def _anchor_of_input(sta: STA, port: str):
    """(anchor input ref, its single delay arc) or None.

    The anchored-interface discipline: the port net has exactly one
    load, a combinational cell pin with exactly one delay arc.
    """
    net = sta.design.nets.get(port)
    if net is None or len(net.loads) != 1:
        return None
    anchor_in = net.loads[0]
    if anchor_in.is_port:
        return None
    cell = sta.graph.cell_of(anchor_in)
    if cell.is_sequential:
        return None
    arcs = [a for a in cell.arcs
            if a.related_pin == anchor_in.pin and a.timing_type.is_delay]
    if len(arcs) != 1:
        return None
    return anchor_in, arcs[0]


def _extract_input_tables(sta: STA, etm: ExtractedTimingModel,
                          clock_ports) -> None:
    constraints = sta.constraints
    setup_by_pin = {c.data_pin: c for c in sta.graph.setup_checks()}
    hold_by_pin = {c.data_pin: c for c in sta.graph.hold_checks()}
    for port in sta.design.input_ports():
        if port in clock_ports:
            continue
        anchored = _anchor_of_input(sta, port)
        if anchored is None:
            continue
        anchor_in, arc = anchored
        inst = sta.design.instances[anchor_in.instance]
        out_net_name = inst.connections.get(arc.pin)
        if out_net_name is None:
            continue
        a_out = PinRef(anchor_in.instance, arc.pin)
        sinks = list(sta.design.nets[out_net_name].loads)
        if not sinks or any(
            s.is_port or s not in setup_by_pin or s not in hold_by_pin
            for s in sinks
        ):
            # Registered-immediately-in discipline violated: the anchor
            # must fan out to flop data pins only. Scalars still apply.
            continue
        load = sta.prop.loads.get(a_out)
        if load is None:
            load = driver_load(sta.graph, sta.parasitics, a_out)
        para = sta.parasitics.extract(out_net_name)
        depth = sta.graph.data_depth.get(a_out, 1)
        is_clock = anchor_in in sta.graph.clock_pins
        f_late = sta.derates.factor(is_clock, "late", depth,
                                    anchor_in.instance)
        f_early = sta.derates.factor(is_clock, "early", depth,
                                     anchor_in.instance)

        axis = _densify(
            x for t in arc.timing.values() for x in t.delay.index_1
        )
        entry = etm.ports.setdefault(port, EtmPort(name=port))
        clocks_seen = set()
        ok = True
        for d_in in DIRECTIONS:
            setup_col: List[float] = []
            hold_col: List[float] = []
            for s in axis:
                latest = math.inf
                earliest = -math.inf
                for d_out in arc.sense.output_directions(d_in):
                    if d_out not in arc.timing:
                        continue
                    delay, out_slew = arc.delay_and_slew(d_out, s, load)
                    for sink in sinks:
                        cap = sta.graph.cell_of(sink).pin(
                            sink.pin).capacitance
                        wire = para.wire_delay(sink, cap)
                        sink_slew = out_slew + para.slew_degradation(
                            sink, cap)
                        sc = setup_by_pin[sink]
                        hc = hold_by_pin[sink]
                        clk = sta.prop.at(sc.clock_pin, "rise")
                        if not clk.valid:
                            ok = False
                            break
                        spec = sta._clock_of_check(sc)
                        if spec is None:
                            ok = False
                            break
                        clocks_seen.add(spec.name)
                        lat = constraints.clock_latency.get(sc.instance, 0.0)
                        setup = sc.arc.constraint_value(
                            d_out, sink_slew, clk.slew_late)
                        latest = min(
                            latest,
                            spec.period + clk.early + lat - setup
                            - spec.uncertainty_setup
                            - constraints.flat_setup_margin
                            - (delay * f_late + wire),
                        )
                        hold = hc.arc.constraint_value(
                            d_out, sink_slew, clk.slew_late)
                        earliest = max(
                            earliest,
                            clk.late + lat + hold + spec.uncertainty_hold
                            + constraints.flat_hold_margin
                            - (delay * f_early + wire),
                        )
                    if not ok:
                        break
                if not ok or math.isinf(latest) or math.isinf(earliest):
                    ok = False
                    break
                setup_col.append(latest)
                hold_col.append(earliest)
            if not ok:
                break
            entry.setup_budget_tables[d_in] = _budget_table(axis, setup_col)
            entry.hold_budget_tables[d_in] = _budget_table(axis, hold_col)
        if not ok:
            entry.setup_budget_tables.clear()
            entry.hold_budget_tables.clear()
            continue
        entry.pin_cap = sta.graph.cell_of(anchor_in).pin(
            anchor_in.pin).capacitance
        entry.slew_validity = (axis[0], axis[-1])
        if len(clocks_seen) == 1:
            entry.clock = next(iter(clocks_seen))
        etm.boundary_pins[port] = str(anchor_in)


def _trace_feedthrough_chain(sta: STA, a_in: PinRef):
    """Walk upstream from an output anchor's input pin to a launch point.

    Returns ("port", input port name, stages) for a feedthrough chain —
    stages ordered source->sink as (instance, arc, out_ref, in_ref) —
    ("reg", None, None) for a flop-launched cone, or (None, None, None)
    when the structure is ambiguous (reconvergence, non-unate stages).
    """
    stages = []
    cur = a_in
    for _ in range(64):
        net_name = None
        if cur.is_port:
            return "port", cur.pin, list(reversed(stages))
        inst = sta.design.instances.get(cur.instance)
        if inst is None:
            return None, None, None
        net_name = inst.connections.get(cur.pin)
        if net_name is None:
            return None, None, None
        driver = sta.design.nets[net_name].driver
        if driver is None:
            return None, None, None
        if driver.is_port:
            return "port", driver.pin, list(reversed(stages))
        cell = sta.graph.cell_of(driver)
        if cell.is_sequential:
            return "reg", None, None
        arcs = [a for a in cell.arcs
                if a.pin == driver.pin and a.timing_type.is_delay]
        if len(arcs) != 1 or arcs[0].sense is TimingSense.NON_UNATE:
            return None, None, None
        stages.append((driver.instance, arcs[0], driver,
                       PinRef(driver.instance, arcs[0].related_pin)))
        cur = PinRef(driver.instance, arcs[0].related_pin)
    return None, None, None


def _extract_output_tables(sta: STA, etm: ExtractedTimingModel,
                           clock_ports) -> None:
    for port in sta.design.output_ports():
        net = sta.design.nets.get(port)
        if net is None or net.driver is None or net.driver.is_port:
            continue
        driver = net.driver
        cell = sta.graph.cell_of(driver)
        if cell.is_sequential:
            continue  # unanchored flop->port output: scalar only
        arcs = [a for a in cell.arcs
                if a.pin == driver.pin and a.timing_type.is_delay]
        if len(arcs) != 1:
            continue
        arc = arcs[0]
        a_in = PinRef(driver.instance, arc.related_pin)
        kind, from_port, stages = _trace_feedthrough_chain(sta, a_in)
        anchor_stage = (driver.instance, arc, driver, a_in)
        if kind == "reg":
            _tabulate_clock_to_out(sta, etm, port, anchor_stage)
        elif kind == "port" and from_port not in clock_ports:
            _tabulate_feedthrough(
                sta, etm, port, from_port, stages + [anchor_stage])


def _tabulate_clock_to_out(sta: STA, etm: ExtractedTimingModel, port: str,
                           anchor_stage) -> None:
    """Clock->out arrival/slew at the output anchor as f(load).

    Arrivals at the anchor input come from the completed propagation
    (they bake in the whole launch path); only the final stage is
    re-evaluated per load sample. Bilinear interpolation at fixed slew
    is linear in load, so sampling the arc's own load axis is exact.
    """
    inst_name, arc, a_out, a_in = anchor_stage
    spec_name = None
    origin = None
    for d in DIRECTIONS:
        if sta.prop.has(a_in, d):
            origin = sta._origin(a_in, d, "late")
            break
    if origin is not None and origin.is_port:
        spec = sta.constraints.clock_for_port(origin.pin)
        if spec is not None:
            spec_name = spec.name
    if spec_name is None:
        return
    spec = sta.constraints.clocks[spec_name]
    depth = sta.graph.data_depth.get(a_out, 1)
    is_clock = a_in in sta.graph.clock_pins
    f_late = sta.derates.factor(is_clock, "late", depth, inst_name)

    axis = _densify(
        x for t in arc.timing.values() for x in t.delay.index_2
    )
    entry = etm.ports.setdefault(port, EtmPort(name=port))
    for d_out in DIRECTIONS:
        if d_out not in arc.timing:
            continue
        delays: List[float] = []
        slews: List[float] = []
        for load in axis:
            worst = -math.inf
            worst_slew = 0.0
            for d_in in DIRECTIONS:
                if not sta.prop.has(a_in, d_in):
                    continue
                if d_out not in arc.sense.output_directions(d_in):
                    continue
                arr = sta.prop.at(a_in, d_in)
                delay, slew = arc.delay_and_slew(
                    d_out, arr.slew_late, load)
                worst = max(worst, arr.late + delay * f_late)
                worst_slew = max(worst_slew, slew)
            if math.isinf(worst):
                return
            delays.append(worst - spec.source_latency)
            slews.append(worst_slew)
        entry.clock_to_out_timing[d_out] = ArcTiming(
            delay=LookupTable2D(CSLEW_AXIS, tuple(axis),
                                [delays, delays]),
            slew=LookupTable2D(CSLEW_AXIS, tuple(axis),
                               [slews, slews]),
        )
    if entry.clock_to_out_timing:
        entry.clock = spec_name
        entry.load_validity = (axis[0], axis[-1])
        etm.boundary_pins[port] = str(a_out)


def _tabulate_feedthrough(sta: STA, etm: ExtractedTimingModel, port: str,
                          from_port: str, stages) -> None:
    """Compose a port->port combinational chain into (slew, load) tables.

    Intermediate stage loads and wire delays are frozen at their values
    in the completed run; the first-stage input slew and last-stage load
    are the table axes. Single-stage chains (the anchored discipline)
    are an exact re-sampling of the anchor's own arc.
    """
    slew_axis = _densify(
        x for t in stages[0][1].timing.values() for x in t.delay.index_1
    )
    load_axis = _densify(
        x for t in stages[-1][1].timing.values() for x in t.delay.index_2
    )
    timing: Dict[str, ArcTiming] = {}
    sense_flips = sum(
        1 for _, a, _, _ in stages if a.sense is TimingSense.NEGATIVE_UNATE
    )
    sense = (TimingSense.POSITIVE_UNATE if sense_flips % 2 == 0
             else TimingSense.NEGATIVE_UNATE)
    for d0 in DIRECTIONS:
        delays: List[List[float]] = []
        slews: List[List[float]] = []
        final_dir = d0
        for s in slew_axis:
            row_d: List[float] = []
            row_s: List[float] = []
            for load in load_axis:
                t = 0.0
                cur_dir, cur_slew = d0, s
                for i, (inst, arc, out_ref, in_ref) in enumerate(stages):
                    outs = arc.sense.output_directions(cur_dir)
                    if len(outs) != 1 or outs[0] not in arc.timing:
                        return
                    d_out = outs[0]
                    last = i == len(stages) - 1
                    stage_load = load if last else sta.prop.loads.get(
                        out_ref)
                    if stage_load is None:
                        return
                    delay, out_slew = arc.delay_and_slew(
                        d_out, cur_slew, stage_load)
                    t += delay
                    cur_slew = out_slew
                    cur_dir = d_out
                    if not last:
                        nxt = stages[i + 1][3]
                        net_name = sta.design.instances[
                            inst].connections[arc.pin]
                        para = sta.parasitics.extract(net_name)
                        cap = sta.graph.cell_of(nxt).pin(
                            nxt.pin).capacitance
                        t += para.wire_delay(nxt, cap)
                        cur_slew += para.slew_degradation(nxt, cap)
                row_d.append(t)
                row_s.append(cur_slew)
                final_dir = cur_dir
            delays.append(row_d)
            slews.append(row_s)
        timing[final_dir] = ArcTiming(
            delay=LookupTable2D(tuple(slew_axis), tuple(load_axis), delays),
            slew=LookupTable2D(tuple(slew_axis), tuple(load_axis), slews),
        )
    etm.feedthroughs.append(EtmFeedthroughArc(
        from_port=from_port,
        to_port=port,
        sense=sense,
        timing=timing,
        slew_validity=(slew_axis[0], slew_axis[-1]),
        load_validity=(load_axis[0], load_axis[-1]),
    ))
    # The stub cell needs the launching port's sink pin cap even when the
    # port has no register budgets (a pure feedthrough input).
    first_in = stages[0][3]
    entry = etm.ports.setdefault(from_port, EtmPort(name=from_port))
    if entry.pin_cap is None:
        entry.pin_cap = sta.graph.cell_of(first_in).pin(
            first_in.pin).capacitance
    etm.boundary_pins.setdefault(from_port, str(first_in))
    etm.boundary_pins.setdefault(port, str(stages[-1][2]))


def render_etm(etm: ExtractedTimingModel) -> str:
    """Human-readable ETM summary."""
    lines = [
        f"ETM for block {etm.block_name!r} "
        f"(clock {etm.clock_port}, period {etm.period} ps)",
        f"internal WNS: {etm.internal_wns:.2f} ps",
        f"{'port':<12} {'setup budget':>13} {'hold budget':>12} "
        f"{'clk->out':>9} {'cap (fF)':>9}",
    ]
    for name in sorted(etm.ports):
        p = etm.ports[name]
        fmt = lambda v: f"{v:9.2f}" if v is not None else "        -"
        lines.append(
            f"{name:<12} {fmt(p.setup_budget):>13} "
            f"{fmt(p.hold_budget):>12} {fmt(p.clock_to_out):>9} "
            f"{fmt(p.input_cap):>9}"
        )
    n_tabled = sum(1 for p in etm.ports.values()
                   if p.setup_budget_tables or p.clock_to_out_timing)
    if n_tabled or etm.feedthroughs:
        lines.append(
            f"tabulated boundary arcs: {n_tabled} port(s), "
            f"{len(etm.feedthroughs)} feedthrough(s)"
        )
    return "\n".join(lines)
