"""Parallel multi-corner signoff engine with content-addressed caching.

The paper's Section 2.3 "corner super-explosion" makes serial signoff the
dominant turnaround cost: scenario count grows multiplicatively with
modes, RC corners and voltage domains while each scenario is an
independent STA run. This module attacks both axes:

- **Parallelism** — :class:`SignoffScheduler` fans scenarios out over a
  ``concurrent.futures`` pool (thread or process, with a serial
  fallback). Scenarios are independent and deterministic, so parallel
  and serial runs produce *identical* reports; results are keyed by
  scenario name, never by completion order.

- **Caching** — :class:`ScenarioResultCache` memoizes per-scenario
  :class:`~repro.sta.reports.TimingReport` objects under a content hash
  of (netlist, constraints, corner parameters). Re-signoff after an ECO
  only recomputes scenarios whose inputs actually changed; the
  incremental timer (:mod:`repro.sta.incremental`) notifies registered
  caches when it edits a design so stale snapshots are dropped eagerly.

The same executor batches Monte Carlo sample evaluation
(:func:`parallel_map` with per-sample spawned seeds — see
:mod:`repro.spice.montecarlo`), keeping parallel and serial sampling
bit-identical.
"""

from __future__ import annotations

import copy
import dataclasses
import enum
import hashlib
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.beol.stack import BeolStack, default_stack
from repro.errors import TimingError
from repro.netlist.design import Design
from repro.sta.constraints import Constraints
from repro.sta.reports import TimingReport

EXECUTORS = ("serial", "thread", "process")


# ---------------------------------------------------------------------- #
# content fingerprints


def _feed(h, obj) -> None:
    """Feed one object into a hash, stably across processes and runs.

    Handles the value types that appear in designs, constraints and
    scenario parameters; dict iteration order is normalized by sorting,
    floats by fixed-precision formatting.
    """
    if obj is None:
        h.update(b"~")
    elif isinstance(obj, bool):
        h.update(b"T" if obj else b"F")
    elif isinstance(obj, (int, str, bytes)):
        h.update(repr(obj).encode() if not isinstance(obj, bytes) else obj)
    elif isinstance(obj, float):
        h.update(f"{obj:.12g}".encode())
    elif isinstance(obj, enum.Enum):
        _feed(h, obj.value)
    elif isinstance(obj, np.ndarray):
        h.update(str(obj.shape).encode())
        h.update(np.ascontiguousarray(obj).tobytes())
    elif isinstance(obj, (list, tuple)):
        h.update(b"[")
        for item in obj:
            _feed(h, item)
            h.update(b",")
        h.update(b"]")
    elif isinstance(obj, dict):
        h.update(b"{")
        for key in sorted(obj, key=str):
            _feed(h, key)
            h.update(b":")
            _feed(h, obj[key])
            h.update(b",")
        h.update(b"}")
    elif dataclasses.is_dataclass(obj):
        h.update(type(obj).__name__.encode())
        for f in dataclasses.fields(obj):
            _feed(h, getattr(obj, f.name))
    else:
        h.update(repr(obj).encode())


def _digest(*parts) -> str:
    h = hashlib.sha256()
    for part in parts:
        _feed(h, part)
    return h.hexdigest()


def design_fingerprint(design: Design) -> str:
    """Content hash of a netlist: ports, instances, connectivity, nets.

    Only *source* content is hashed — instance cells and pin-to-net
    connections, ports, and non-derivable net attributes (NDR promotion,
    bookkeeping cap). Net driver/load lists are derived by
    :meth:`~repro.netlist.design.Design.bind` and deliberately excluded,
    so the fingerprint is identical before and after binding.
    """
    h = hashlib.sha256()
    _feed(h, design.name)
    _feed(h, {name: d for name, d in design.ports.items()})
    for name in sorted(design.instances):
        inst = design.instances[name]
        _feed(h, (name, inst.cell_name, inst.connections, inst.location,
                  inst.dont_touch))
    for name in sorted(design.nets):
        net = design.nets[name]
        _feed(h, (name, net.ndr, net.extra_cap))
    return h.hexdigest()


def constraints_fingerprint(constraints: Constraints) -> str:
    """Content hash of an SDC-lite constraint set."""
    return _digest(constraints)


def library_fingerprint(library) -> str:
    """Content hash of a library: condition metadata plus cell tables.

    Every cell is hashed in full (pins, arcs, lookup tables), not just
    counted, so a library mutated in place — cells added, removed or
    re-characterized — changes the fingerprint and misses the cache. No
    assumption about where the library came from is needed.
    """
    h = hashlib.sha256()
    _feed(h, (library.name, library.process, library.vdd, library.temp_c,
              library.default_max_transition))
    for name in sorted(library.cells):
        _feed(h, library.cells[name])
    return h.hexdigest()


def scenario_fingerprint(scenario) -> str:
    """Content hash of one scenario's corner parameters.

    Covers the library content (condition metadata and full cell timing
    tables — see :func:`library_fingerprint`), the BEOL corner, analysis
    temperature, derates and the mode constraints.
    """
    return _digest(
        library_fingerprint(scenario.library),
        scenario.beol_corner_name,
        scenario.temp_c,
        scenario.derates,
        constraints_fingerprint(scenario.constraints),
    )


# ---------------------------------------------------------------------- #
# result cache


@dataclass
class CacheStats:
    """Counters exposed for tests and reporting."""

    hits: int = 0
    misses: int = 0
    evaluations: int = 0
    invalidations: int = 0

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ScenarioResultCache:
    """LRU cache of per-scenario timing reports.

    Keys are ``(design_name, design_fp, scenario_fp)``: the content hash
    guarantees correctness (any netlist/constraint/corner change misses),
    while the design *name* supports eager invalidation — an ECO on a
    live design drops every snapshot taken of it, old content never
    recurs.
    """

    def __init__(self, max_entries: int = 512):
        if max_entries < 1:
            raise TimingError("cache needs at least one entry")
        self.max_entries = max_entries
        self._store: "OrderedDict[Tuple[str, str, str], TimingReport]" = \
            OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._store)

    def lookup(self, design_name: str, design_fp: str,
               scenario_fp: str) -> Optional[TimingReport]:
        key = (design_name, design_fp, scenario_fp)
        report = self._store.get(key)
        if report is None:
            self.stats.misses += 1
            return None
        self._store.move_to_end(key)
        self.stats.hits += 1
        return report

    def store(self, design_name: str, design_fp: str, scenario_fp: str,
              report: TimingReport) -> None:
        key = (design_name, design_fp, scenario_fp)
        self._store[key] = report
        self._store.move_to_end(key)
        while len(self._store) > self.max_entries:
            self._store.popitem(last=False)

    def invalidate_design(self, design_name: str) -> int:
        """Drop every cached report of the named design (ECO hygiene)."""
        stale = [k for k in self._store if k[0] == design_name]
        for key in stale:
            del self._store[key]
        self.stats.invalidations += len(stale)
        return len(stale)

    def clear(self) -> None:
        self.stats.invalidations += len(self._store)
        self._store.clear()


# ---------------------------------------------------------------------- #
# executor


def _run_scenario_job(job):
    """Module-level worker so process pools can pickle it.

    ``isolate`` makes the worker analyze a private deep copy of the
    design. Running STA *mutates* the design — :class:`~repro.sta.analysis.STA`
    calls :meth:`Design.bind`, which rebuilds every net's driver/load
    lists — so thread-pool workers sharing one Design object race:
    one worker's re-bind momentarily nulls ``net.driver`` while another
    is mid-propagation, crashing or silently corrupting slacks. Process
    pools get this isolation for free from pickling; threads must copy.
    """
    scenario, design, stack, isolate = job
    if isolate:
        design = copy.deepcopy(design)
    return scenario.run(design, stack)


def parallel_map(fn: Callable, items: Iterable, jobs: int = 1,
                 executor: str = "thread") -> List:
    """Map ``fn`` over ``items``, preserving order, optionally in a pool.

    ``jobs <= 1`` (or a single item, or ``executor="serial"``) runs
    serially in-process. Results are returned in input order regardless
    of completion order, so callers see identical output for any job
    count. ``executor="process"`` requires ``fn`` and the items to be
    picklable.
    """
    if executor not in EXECUTORS:
        raise TimingError(
            f"unknown executor {executor!r}; pick from {EXECUTORS}"
        )
    work = list(items)
    if jobs <= 1 or len(work) <= 1 or executor == "serial":
        return [fn(item) for item in work]
    pool_cls = ProcessPoolExecutor if executor == "process" \
        else ThreadPoolExecutor
    with pool_cls(max_workers=min(jobs, len(work))) as pool:
        return list(pool.map(fn, work))


# ---------------------------------------------------------------------- #
# the scheduler


@dataclass
class SignoffOutcome:
    """One signoff pass: merged results plus scheduling bookkeeping."""

    reports: Dict[str, TimingReport]
    cache_hits: List[str]
    recomputed: List[str]
    jobs: int
    wall_time_s: float = 0.0

    @property
    def result(self):
        from repro.sta.mcmm import McmmResult

        return McmmResult(reports=self.reports)

    def render(self, mode: str = "setup") -> str:
        """Deterministic signoff table — byte-identical for any job
        count or cache state (wall time deliberately excluded)."""
        lines = [f"{'scenario':<24} {'WNS':>10} {'TNS':>12} {'viol':>6}"]
        for name in sorted(self.reports):
            report = self.reports[name]
            lines.append(
                f"{name:<24} {report.wns(mode):10.3f} "
                f"{report.tns(mode):12.3f} "
                f"{report.violation_count(mode):6d}"
            )
        result = self.result
        lines.append(
            f"{'merged':<24} {result.merged_wns(mode):10.3f} "
            f"{result.merged_tns(mode):12.3f}"
        )
        lines.append(f"worst scenario: {result.worst_scenario(mode)}")
        return "\n".join(lines)


class SignoffScheduler:
    """Runs an MCMM scenario set in parallel with result caching.

    Args:
        scenarios: the MCMM views to sign off (unique names).
        stack: BEOL stack shared by all scenarios.
        jobs: worker count; 1 = serial.
        executor: "thread" (default), "process", or "serial".
        cache: a shared :class:`ScenarioResultCache`; None disables
            caching (every scenario recomputes every pass).
    """

    def __init__(
        self,
        scenarios: Sequence,
        stack: Optional[BeolStack] = None,
        jobs: int = 1,
        executor: str = "thread",
        cache: Optional[ScenarioResultCache] = None,
    ):
        if not scenarios:
            raise TimingError("signoff needs at least one scenario")
        names = [s.name for s in scenarios]
        if len(set(names)) != len(names):
            raise TimingError("scenario names must be unique")
        if jobs < 1:
            raise TimingError("jobs must be >= 1")
        if executor not in EXECUTORS:
            raise TimingError(
                f"unknown executor {executor!r}; pick from {EXECUTORS}"
            )
        self.scenarios = list(scenarios)
        self.stack = stack or default_stack()
        self.jobs = jobs
        self.executor = executor
        self.cache = cache
        #: Scenario STA evaluations actually performed (cache misses);
        #: the call counter the regression tests assert against.
        self.evaluations = 0

    def signoff(self, design: Design) -> SignoffOutcome:
        """Run (or reuse) every scenario and merge the results."""
        t0 = time.perf_counter()
        design_fp = design_fingerprint(design)
        reports: Dict[str, TimingReport] = {}
        hits: List[str] = []
        todo = []
        for scenario in self.scenarios:
            fp = scenario_fingerprint(scenario)
            cached = None
            if self.cache is not None:
                cached = self.cache.lookup(design.name, design_fp, fp)
            if cached is not None:
                reports[scenario.name] = cached
                hits.append(scenario.name)
            else:
                todo.append((scenario, fp))

        # Thread-pool workers share this process's Design object, and STA
        # mutates it (bind rebuilds net driver/load lists) — give each
        # worker its own copy. Serial and process paths need no copy.
        isolate = (self.executor == "thread" and self.jobs > 1
                   and len(todo) > 1)
        fresh = parallel_map(
            _run_scenario_job,
            [(scenario, design, self.stack, isolate) for scenario, _ in todo],
            jobs=self.jobs,
            executor=self.executor,
        )
        self.evaluations += len(todo)
        for (scenario, fp), report in zip(todo, fresh):
            reports[scenario.name] = report
            if self.cache is not None:
                self.cache.store(design.name, design_fp, fp, report)
                self.cache.stats.evaluations += 1

        ordered = {s.name: reports[s.name] for s in self.scenarios}
        return SignoffOutcome(
            reports=ordered,
            cache_hits=hits,
            recomputed=[s.name for s, _ in todo],
            jobs=self.jobs,
            wall_time_s=time.perf_counter() - t0,
        )

    def run(self, design: Design):
        """McmmResult-only convenience wrapper over :meth:`signoff`."""
        return self.signoff(design).result
