"""Parallel multi-corner signoff engine with content-addressed caching.

The paper's Section 2.3 "corner super-explosion" makes serial signoff the
dominant turnaround cost: scenario count grows multiplicatively with
modes, RC corners and voltage domains while each scenario is an
independent STA run. This module attacks both axes:

- **Parallelism** — :class:`SignoffScheduler` fans scenarios out over a
  ``concurrent.futures`` pool (thread or process, with a serial
  fallback). Scenarios are independent and deterministic, so parallel
  and serial runs produce *identical* reports; results are keyed by
  scenario name, never by completion order.

- **Caching** — :class:`ScenarioResultCache` memoizes per-scenario
  :class:`~repro.sta.reports.TimingReport` objects under a content hash
  of (netlist, constraints, corner parameters). Re-signoff after an ECO
  only recomputes scenarios whose inputs actually changed; the
  incremental timer (:mod:`repro.sta.incremental`) notifies registered
  caches when it edits a design so stale snapshots are dropped eagerly.

The same executor batches Monte Carlo sample evaluation
(:func:`parallel_map` with per-sample spawned seeds — see
:mod:`repro.spice.montecarlo`), keeping parallel and serial sampling
bit-identical.
"""

from __future__ import annotations

import copy
import dataclasses
import enum
import hashlib
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.beol.stack import BeolStack, default_stack
from repro.errors import SignoffError, TimingError
from repro.netlist.design import Design
from repro.obs import metrics as obs_metrics
from repro.obs import tracing as obs_tracing
from repro.runtime.journal import RunJournal
from repro.runtime.supervisor import (
    RetryPolicy,
    SupervisedExecutor,
    SupervisedTask,
    TaskStatus,
)
from repro.sta.constraints import Constraints
from repro.sta.kernel import (
    ENGINES,
    CornerSpec,
    KernelCompileError,
    compile_kernel,
    kernel_full_run,
)
from repro.sta.reports import TimingReport

EXECUTORS = ("serial", "thread", "process")


# ---------------------------------------------------------------------- #
# content fingerprints


def _feed(h, obj) -> None:
    """Feed one object into a hash, stably across processes and runs.

    Handles the value types that appear in designs, constraints and
    scenario parameters; dict iteration order is normalized by sorting,
    floats by fixed-precision formatting.
    """
    if obj is None:
        h.update(b"~")
    elif isinstance(obj, bool):
        h.update(b"T" if obj else b"F")
    elif isinstance(obj, (int, str, bytes)):
        h.update(repr(obj).encode() if not isinstance(obj, bytes) else obj)
    elif isinstance(obj, float):
        h.update(f"{obj:.12g}".encode())
    elif isinstance(obj, enum.Enum):
        _feed(h, obj.value)
    elif isinstance(obj, np.ndarray):
        h.update(str(obj.shape).encode())
        h.update(np.ascontiguousarray(obj).tobytes())
    elif isinstance(obj, (list, tuple)):
        h.update(b"[")
        for item in obj:
            _feed(h, item)
            h.update(b",")
        h.update(b"]")
    elif isinstance(obj, dict):
        h.update(b"{")
        for key in sorted(obj, key=str):
            _feed(h, key)
            h.update(b":")
            _feed(h, obj[key])
            h.update(b",")
        h.update(b"}")
    elif dataclasses.is_dataclass(obj):
        h.update(type(obj).__name__.encode())
        for f in dataclasses.fields(obj):
            _feed(h, getattr(obj, f.name))
    else:
        h.update(repr(obj).encode())


def _digest(*parts) -> str:
    h = hashlib.sha256()
    for part in parts:
        _feed(h, part)
    return h.hexdigest()


def design_fingerprint(design: Design) -> str:
    """Content hash of a netlist: ports, instances, connectivity, nets.

    Only *source* content is hashed — instance cells and pin-to-net
    connections, ports, and non-derivable net attributes (NDR promotion,
    bookkeeping cap). Net driver/load lists are derived by
    :meth:`~repro.netlist.design.Design.bind` and deliberately excluded,
    so the fingerprint is identical before and after binding.
    """
    h = hashlib.sha256()
    _feed(h, design.name)
    _feed(h, {name: d for name, d in design.ports.items()})
    for name in sorted(design.instances):
        inst = design.instances[name]
        _feed(h, (name, inst.cell_name, inst.connections, inst.location,
                  inst.dont_touch))
    for name in sorted(design.nets):
        net = design.nets[name]
        _feed(h, (name, net.ndr, net.extra_cap))
    return h.hexdigest()


def constraints_fingerprint(constraints: Constraints) -> str:
    """Content hash of an SDC-lite constraint set."""
    return _digest(constraints)


def library_fingerprint(library) -> str:
    """Content hash of a library: condition metadata plus cell tables.

    Every cell is hashed in full (pins, arcs, lookup tables), not just
    counted, so a library mutated in place — cells added, removed or
    re-characterized — changes the fingerprint and misses the cache. No
    assumption about where the library came from is needed.
    """
    h = hashlib.sha256()
    _feed(h, (library.name, library.process, library.vdd, library.temp_c,
              library.default_max_transition))
    for name in sorted(library.cells):
        _feed(h, library.cells[name])
    return h.hexdigest()


def scenario_fingerprint(scenario) -> str:
    """Content hash of one scenario's corner parameters.

    Covers the library content (condition metadata and full cell timing
    tables — see :func:`library_fingerprint`), the BEOL corner, analysis
    temperature, derates and the mode constraints.
    """
    return _digest(
        library_fingerprint(scenario.library),
        scenario.beol_corner_name,
        scenario.temp_c,
        scenario.derates,
        constraints_fingerprint(scenario.constraints),
    )


class FingerprintMemo:
    """Token-validated memo for content fingerprints.

    The daemon memoizes scenario fingerprints (libraries are bound once
    for its lifetime) and session overlays memoize their design
    fingerprint (valid until the commit version moves). Both are the
    same pattern — cache the digest next to a validity token, recompute
    only when the token changes — so both share this helper instead of
    carrying their own ``_fp``/``_fp_version`` field pairs.

    ``get`` compares tokens by equality, so a commit counter, a bind
    timestamp or ``None`` (compute-once) all work. The scheduler's
    per-run recomputation is deliberately *not* routed through a memo:
    a library mutated in place must miss the result cache, which only
    works if its fingerprint is re-hashed every run.
    """

    def __init__(self):
        self._entries: Dict[object, Tuple[object, str]] = {}
        self.hits = 0
        self.misses = 0

    def get(self, key, token, compute) -> str:
        """The fingerprint for ``key``, recomputed iff ``token`` moved."""
        entry = self._entries.get(key)
        if entry is not None and entry[0] == token:
            self.hits += 1
            return entry[1]
        self.misses += 1
        fp = compute()
        self._entries[key] = (token, fp)
        return fp

    def invalidate(self, key=None) -> None:
        """Drop one entry, or every entry when ``key`` is omitted."""
        if key is None:
            self._entries.clear()
        else:
            self._entries.pop(key, None)

    def __len__(self) -> int:
        return len(self._entries)


# ---------------------------------------------------------------------- #
# result cache


@dataclass
class CacheStats:
    """Counters exposed for tests and reporting."""

    hits: int = 0
    misses: int = 0
    evaluations: int = 0
    invalidations: int = 0
    #: entries dropped because their content digest no longer matched
    #: (in-place corruption caught by ``verify=True``).
    corruptions: int = 0

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class _CacheEntry:
    report: TimingReport
    digest: Optional[str] = None  # content digest at store time


class ScenarioResultCache:
    """LRU cache of per-scenario timing reports.

    Keys are ``(design_name, design_fp, scenario_fp)``: the content hash
    guarantees correctness (any netlist/constraint/corner change misses),
    while the design *name* supports eager invalidation — an ECO on a
    live design drops every snapshot taken of it, old content never
    recurs.

    Recency is true LRU: both :meth:`store` and :meth:`lookup` refresh
    an entry's position, so the entry evicted at ``max_entries`` is the
    least recently *used*, not merely the oldest stored.

    ``verify=True`` arms integrity checking: each report's content
    digest is taken at store time and re-checked at lookup time; a
    mismatch (a cached object mutated behind the cache's back) drops the
    entry and reports a miss instead of serving corrupt timing.
    """

    def __init__(self, max_entries: int = 512, verify: bool = False):
        if max_entries < 1:
            raise TimingError("cache needs at least one entry")
        self.max_entries = max_entries
        self.verify = verify
        self._store: "OrderedDict[Tuple[str, str, str], _CacheEntry]" = \
            OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._store)

    def keys(self) -> List[Tuple[str, str, str]]:
        """Cached keys from least to most recently used."""
        return list(self._store)

    def lookup(self, design_name: str, design_fp: str,
               scenario_fp: str) -> Optional[TimingReport]:
        key = (design_name, design_fp, scenario_fp)
        entry = self._store.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        if self.verify and entry.digest is not None \
                and entry.report.content_digest() != entry.digest:
            del self._store[key]
            self.stats.corruptions += 1
            self.stats.misses += 1
            return None
        self._store.move_to_end(key)
        self.stats.hits += 1
        return entry.report

    def store(self, design_name: str, design_fp: str, scenario_fp: str,
              report: TimingReport) -> None:
        key = (design_name, design_fp, scenario_fp)
        digest = report.content_digest() if self.verify else None
        self._store[key] = _CacheEntry(report=report, digest=digest)
        self._store.move_to_end(key)
        while len(self._store) > self.max_entries:
            self._store.popitem(last=False)

    def invalidate_design(self, design_name: str) -> int:
        """Drop every cached report of the named design (ECO hygiene)."""
        stale = [k for k in self._store if k[0] == design_name]
        for key in stale:
            del self._store[key]
        self.stats.invalidations += len(stale)
        return len(stale)

    def clear(self) -> None:
        self.stats.invalidations += len(self._store)
        self._store.clear()


# ---------------------------------------------------------------------- #
# warm incremental timers (ECO-loop signoff)


class ScenarioTimerPool:
    """One registered :class:`~repro.sta.incremental.IncrementalTimer`
    per scenario, kept warm across ECO iterations.

    Re-signoff inside a closure loop used to re-bind a fresh STA per
    scenario per iteration — full graph construction, parasitic
    extraction and propagation every time. The pool instead keeps each
    scenario's timer alive: a footprint-preserving edit set re-times only
    its downstream cone, a topology-changing edit set (or an edit the
    timer cannot absorb) falls back to the timer's honest
    :meth:`~repro.sta.incremental.IncrementalTimer.full_update`.

    Cache invalidation is keyed to the actual edit set: registered
    :class:`ScenarioResultCache` objects are attached to every timer, and
    the timers only invalidate them when an update really edits the
    design — a no-op pass (empty edit list) leaves cached scenario
    reports intact.

    The pool is a *serial* engine by design: timers hold live STA state
    bound to the shared design, which is exactly the thing PR 1 had to
    deep-copy to make thread workers safe. Warm-starting and fan-out are
    different trades; the closure loop wants the former.
    """

    def __init__(self, engine: str = "reference", fault_injector=None):
        from repro.sta.incremental import IncrementalTimer  # noqa: F401

        if engine not in ENGINES:
            raise TimingError(
                f"unknown engine {engine!r}; pick from {ENGINES}"
            )
        self.engine = engine
        #: Optional :class:`repro.testing.faults.FaultInjector` whose
        #: kernel-scoped faults fire at vector-kernel compile time, so
        #: chaos plans exercise the reference fallback on warm pools.
        self.fault_injector = fault_injector
        self._timers: Dict[str, "IncrementalTimer"] = {}
        self._caches: List[ScenarioResultCache] = []
        #: Retime calls served by a warm timer's cone-limited update.
        self.incremental_retimes = 0
        #: Retime calls that re-ran fully (topology change or fallback).
        self.full_retimes = 0
        #: Fresh STA constructions (first signoff of a scenario).
        self.builds = 0
        #: Incremental attempts the timer refused (arc-set change) that
        #: were transparently downgraded to a full update.
        self.fallbacks = 0

    def register_cache(self, cache: ScenarioResultCache) -> None:
        """Attach a result cache to every current and future timer."""
        self._caches.append(cache)
        for timer in self._timers.values():
            timer.register_cache(cache)

    def get(self, name: str):
        """The warm timer for ``name``, or None before its first build."""
        return self._timers.get(name)

    def names(self) -> List[str]:
        return sorted(self._timers)

    def adopt(self, name: str, sta) -> "IncrementalTimer":
        """Register an already-run STA as scenario ``name``'s timer."""
        from repro.sta.incremental import IncrementalTimer

        timer = IncrementalTimer(sta, engine=self.engine)
        for cache in self._caches:
            timer.register_cache(cache)
        self._timers[name] = timer
        return timer

    def discard(self, name: str) -> None:
        self._timers.pop(name, None)

    @property
    def retimes(self) -> int:
        return self.incremental_retimes + self.full_retimes

    @property
    def reuse_ratio(self) -> float:
        """Fraction of retimes served cone-limited by a warm timer."""
        total = self.retimes
        return self.incremental_retimes / total if total else 0.0

    def retime(
        self,
        name: str,
        edited_instances: Sequence[str] = (),
        topology_changed: bool = False,
        build: Optional[Callable[[], object]] = None,
    ) -> TimingReport:
        """Re-time scenario ``name`` after an ECO edit set.

        ``edited_instances`` names the footprint-preserved instances the
        pass touched; ``topology_changed`` forces the full path. A
        scenario without a warm timer needs ``build`` (a zero-arg
        callable returning a constructed-but-not-necessarily-run STA);
        its first retime is a full build, later ones warm-start.
        """
        timer = self._timers.get(name)
        if timer is None:
            if build is None:
                raise TimingError(
                    f"no warm timer for scenario {name!r} and no build "
                    "callable supplied"
                )
            with obs_tracing.span("sta_build", scenario=name):
                sta = build()
                if sta.prop is None or sta.report is None:
                    sta.report = self._full_run(sta, name)
            self.adopt(name, sta)
            self.builds += 1
            return sta.report
        if topology_changed:
            self.full_retimes += 1
            return timer.full_update()
        try:
            report = timer.update_cells(edited_instances)
        except TimingError:
            # The edit outran the cone update (arc set changed); the
            # timer is untouched, so the honest fallback still applies.
            self.fallbacks += 1
            self.full_retimes += 1
            return timer.full_update()
        self.incremental_retimes += 1
        return report

    def _full_run(self, sta, name: str) -> TimingReport:
        """Run a fresh STA through the pool's engine (vector falls back
        to the reference run when the scenario will not compile)."""
        if self.engine == "vector":
            try:
                if self.fault_injector is not None:
                    self.fault_injector.fire_kernel(name)
                report, _ = kernel_full_run(sta)
                return report
            except KernelCompileError as exc:
                obs_metrics.inc("kernel.fallbacks")
                with obs_tracing.span("kernel_fallback", scenario=name,
                                      error=str(exc)):
                    pass
        return sta.run()


# ---------------------------------------------------------------------- #
# executor


@dataclass
class TracedResult:
    """A worker result plus the spans recorded while computing it.

    Workers run in threads or separate processes, so their spans cannot
    be appended to the coordinator's tracer directly; they travel back
    with the result (pickled across process pools) and are
    :meth:`~repro.obs.tracing.Tracer.ingest`-ed afterwards. Spans of
    *failed* attempts die with the attempt — only the succeeding
    attempt's spans reach the trace.
    """

    value: object
    spans: List[obs_tracing.Span] = field(default_factory=list)


def _run_scenario_job(job, attempt: int = 1):
    """Module-level worker so process pools can pickle it.

    ``isolate`` makes the worker analyze a private deep copy of the
    design. Running STA *mutates* the design — :class:`~repro.sta.analysis.STA`
    calls :meth:`Design.bind`, which rebuilds every net's driver/load
    lists — so thread-pool workers sharing one Design object race:
    one worker's re-bind momentarily nulls ``net.driver`` while another
    is mid-propagation, crashing or silently corrupting slacks. Process
    pools get this isolation for free from pickling; threads must copy.
    Abandoned (timed-out) attempts are a third overlap source: the hung
    worker may still be binding when the retry starts, so supervision
    with timeouts also forces isolation.

    ``injector`` (a :class:`repro.testing.faults.FaultInjector`) fires
    planned faults at (scenario, attempt) coordinates before analysis —
    the hook the chaos suite drives crash/hang/pool-death recovery with.

    ``trace`` arms per-worker tracing: the attempt records into a
    private tracer (thread-local, so parallel workers never interleave)
    and returns a :class:`TracedResult` carrying its spans home.
    """
    scenario, design, stack, isolate, injector, trace = job
    if not trace:
        if injector is not None:
            injector.fire(scenario.name, attempt)
        if isolate:
            design = copy.deepcopy(design)
        return scenario.run(design, stack)

    local = obs_tracing.Tracer()
    with obs_tracing.use(local):
        with local.span("scenario", scenario=scenario.name,
                        attempt=attempt, isolated=isolate):
            if injector is not None:
                injector.fire(scenario.name, attempt)
            if isolate:
                with local.span("isolate_design", design=design.name):
                    design = copy.deepcopy(design)
            with local.span("sta_run", scenario=scenario.name):
                report = scenario.run(design, stack)
    return TracedResult(value=report, spans=local.spans())


def parallel_map(fn: Callable, items: Iterable, jobs: int = 1,
                 executor: str = "thread") -> List:
    """Map ``fn`` over ``items``, preserving order, optionally in a pool.

    ``jobs <= 1`` (or a single item, or ``executor="serial"``) runs
    serially in-process. Results are returned in input order regardless
    of completion order, so callers see identical output for any job
    count. ``executor="process"`` requires ``fn`` and the items to be
    picklable.
    """
    if executor not in EXECUTORS:
        raise TimingError(
            f"unknown executor {executor!r}; pick from {EXECUTORS}"
        )
    work = list(items)
    if jobs <= 1 or len(work) <= 1 or executor == "serial":
        return [fn(item) for item in work]
    pool_cls = ProcessPoolExecutor if executor == "process" \
        else ThreadPoolExecutor
    with pool_cls(max_workers=min(jobs, len(work))) as pool:
        return list(pool.map(fn, work))


# ---------------------------------------------------------------------- #
# the scheduler


class ScenarioStatus(enum.Enum):
    """How one scenario's report came to be (or failed to)."""

    OK = "ok"              # computed first try
    CACHED = "cached"      # served from the in-memory result cache
    JOURNALED = "journaled"  # restored from the on-disk checkpoint journal
    RETRIED = "retried"    # computed after at least one failed attempt
    DEGRADED = "degraded"  # quarantined: every attempt failed


@dataclass
class ScenarioRecord:
    """Supervision bookkeeping for one scenario of one signoff pass."""

    name: str
    status: ScenarioStatus
    attempts: int = 1
    fingerprint: str = ""
    error: Optional[str] = None  # "ErrorClass: message" when DEGRADED
    error_chain: List[str] = field(default_factory=list)


@dataclass
class SignoffOutcome:
    """One signoff pass: merged results plus scheduling bookkeeping.

    ``reports`` holds only *successful* scenarios; quarantined ones
    appear in ``degraded`` (and in ``records`` with their structured
    error). A clean pass has ``degraded == []``.
    """

    reports: Dict[str, TimingReport]
    cache_hits: List[str]
    recomputed: List[str]
    jobs: int
    wall_time_s: float = 0.0
    records: Dict[str, ScenarioRecord] = field(default_factory=dict)
    degraded: List[str] = field(default_factory=list)
    journal_hits: List[str] = field(default_factory=list)
    executor_used: str = ""
    fallbacks: List[str] = field(default_factory=list)
    events: List[str] = field(default_factory=list)
    #: This pass's cache activity (None when the scheduler runs
    #: uncached): the shared cache's counters at pass end minus their
    #: values at pass start, so a warm re-signoff reads "N hits / 0
    #: misses" even though the cache object is long-lived.
    cache_stats: Optional[CacheStats] = None

    @property
    def ok(self) -> bool:
        return not self.degraded

    @property
    def result(self):
        from repro.sta.mcmm import McmmResult

        if not self.reports:
            raise SignoffError(
                "no scenario succeeded; nothing to merge",
                degraded=list(self.degraded),
            )
        return McmmResult(reports=self.reports)

    def _status_label(self, name: str) -> str:
        record = self.records.get(name)
        return record.status.value.upper() if record else "OK"

    def render(self, mode: str = "setup") -> str:
        """Deterministic signoff table — byte-identical for any job
        count (wall time deliberately excluded). Degraded scenarios show
        their structured error instead of slacks."""
        lines = [f"{'scenario':<24} {'status':<10} {'WNS':>10} "
                 f"{'TNS':>12} {'viol':>6}"]
        for name in sorted(set(self.reports) | set(self.degraded)):
            status = self._status_label(name)
            if name in self.reports:
                report = self.reports[name]
                lines.append(
                    f"{name:<24} {status:<10} {report.wns(mode):10.3f} "
                    f"{report.tns(mode):12.3f} "
                    f"{report.violation_count(mode):6d}"
                )
            else:
                record = self.records[name]
                lines.append(
                    f"{name:<24} {status:<10} {'-':>10} {'-':>12} {'-':>6}  "
                    f"{record.error or 'unknown failure'}"
                )
        if self.reports:
            result = self.result
            lines.append(
                f"{'merged':<24} {'':<10} {result.merged_wns(mode):10.3f} "
                f"{result.merged_tns(mode):12.3f}"
            )
            lines.append(f"worst scenario: {result.worst_scenario(mode)}")
        else:
            lines.append("no scenario succeeded; nothing to merge")
        if self.degraded:
            lines.append(
                f"DEGRADED: {len(self.degraded)}/{len(self.records)} "
                f"scenario(s) quarantined"
            )
        if self.cache_stats is not None:
            stats = self.cache_stats
            lines.append(
                f"cache: {stats.hits} hit(s) / {stats.misses} miss(es) "
                f"({stats.hit_rate():.0%} hit rate), "
                f"{stats.evaluations} evaluation(s), "
                f"{stats.invalidations} invalidation(s)"
            )
        return "\n".join(lines)


class SignoffScheduler:
    """Runs an MCMM scenario set in parallel with result caching.

    Beyond fan-out and caching, the scheduler is *supervised*: scenario
    attempts that crash or exceed ``policy.timeout_s`` are retried with
    exponential backoff; a scenario that exhausts its attempts is
    quarantined as DEGRADED (reported with its structured error) instead
    of aborting the batch; a dead worker pool falls back
    process -> thread -> serial; and an optional on-disk journal
    checkpoints each completed scenario so a killed run resumes from
    where it died.

    Args:
        scenarios: the MCMM views to sign off (unique names).
        stack: BEOL stack shared by all scenarios.
        jobs: worker count; 1 = serial.
        executor: "thread" (default), "process", or "serial".
        cache: a shared :class:`ScenarioResultCache`; None disables
            caching (every scenario recomputes every pass).
        policy: retry/timeout policy; default = 2 retries, no timeout.
        journal: a :class:`~repro.runtime.journal.RunJournal` for
            checkpoint/resume; None disables journaling.
        keep_going: False raises :class:`~repro.errors.SignoffError`
            after the batch if any scenario degraded (the journal still
            records every success first, so a re-run resumes).
        fault_injector: a :class:`repro.testing.faults.FaultInjector`
            firing planned faults inside workers (chaos testing).
        allow_fallback: permit executor downgrade on pool death.
        engine: "reference" walks the object graph per scenario (the
            oracle); "vector" batches all scenarios of a mode through
            one compiled :class:`~repro.sta.kernel.CompiledKernel`.
            Plans with worker-scoped faults (crash/hang/pool death)
            force the reference path — the supervisor owns
            retry/quarantine semantics there — while kernel-scoped
            faults ride the vector path to chaos-test the
            compile-failure fallback ladder.
    """

    def __init__(
        self,
        scenarios: Sequence,
        stack: Optional[BeolStack] = None,
        jobs: int = 1,
        executor: str = "thread",
        cache: Optional[ScenarioResultCache] = None,
        policy: Optional[RetryPolicy] = None,
        journal: Optional[RunJournal] = None,
        keep_going: bool = True,
        fault_injector=None,
        allow_fallback: bool = True,
        engine: str = "reference",
    ):
        if not scenarios:
            raise TimingError("signoff needs at least one scenario")
        names = [s.name for s in scenarios]
        if len(set(names)) != len(names):
            raise TimingError("scenario names must be unique")
        if jobs < 1:
            raise TimingError("jobs must be >= 1")
        if executor not in EXECUTORS:
            raise TimingError(
                f"unknown executor {executor!r}; pick from {EXECUTORS}"
            )
        if engine not in ENGINES:
            raise TimingError(
                f"unknown engine {engine!r}; pick from {ENGINES}"
            )
        self.scenarios = list(scenarios)
        self.stack = stack or default_stack()
        self.jobs = jobs
        self.executor = executor
        self.cache = cache
        self.policy = policy or RetryPolicy()
        self.journal = journal
        self.keep_going = keep_going
        self.fault_injector = fault_injector
        self.allow_fallback = allow_fallback
        self.engine = engine
        #: Scenario STA evaluations actually performed (cache misses);
        #: the call counter the regression tests assert against.
        self.evaluations = 0
        #: Individual attempts, including failed ones (>= evaluations).
        self.attempts = 0

    def _needs_isolation(self, todo_count: int) -> bool:
        """Must workers analyze private design copies?

        STA mutates the design it analyzes (bind rebuilds net
        driver/load lists), so isolation is required whenever two
        analyses can overlap in this process: parallel thread workers,
        or an abandoned (timed-out / hung) attempt still running while
        its retry starts. The process executor is included too because
        pool death falls it back to threads.
        """
        if self.policy.timeout_s is not None or \
                self.fault_injector is not None:
            return True
        return self.jobs > 1 and todo_count > 1 and self.executor != "serial"

    def signoff(self, design: Design) -> SignoffOutcome:
        """Run (or reuse) every scenario and merge the results."""
        with obs_tracing.span(
            "signoff", design=design.name, scenarios=len(self.scenarios),
            jobs=self.jobs, executor=self.executor,
        ) as signoff_span:
            return self._signoff_traced(design, signoff_span)

    def _pass_cache_stats(self, before: CacheStats) -> CacheStats:
        """This pass's cache counter deltas (the cache is long-lived)."""
        now = self.cache.stats
        return CacheStats(
            hits=now.hits - before.hits,
            misses=now.misses - before.misses,
            evaluations=now.evaluations - before.evaluations,
            invalidations=now.invalidations - before.invalidations,
            corruptions=now.corruptions - before.corruptions,
        )

    def _signoff_traced(self, design: Design,
                        signoff_span) -> SignoffOutcome:
        tracer = obs_tracing.active_tracer()
        t0 = time.perf_counter()
        stats_before = (copy.copy(self.cache.stats)
                        if self.cache is not None else None)
        design_fp = design_fingerprint(design)
        reports: Dict[str, TimingReport] = {}
        records: Dict[str, ScenarioRecord] = {}
        hits: List[str] = []
        journal_hits: List[str] = []
        todo = []
        with obs_tracing.span("cache_triage",
                              scenarios=len(self.scenarios)):
            for scenario in self.scenarios:
                fp = scenario_fingerprint(scenario)
                key = (design.name, design_fp, fp)
                cached = None
                if self.cache is not None:
                    cached = self.cache.lookup(*key)
                if cached is not None:
                    reports[scenario.name] = cached
                    hits.append(scenario.name)
                    records[scenario.name] = ScenarioRecord(
                        name=scenario.name, status=ScenarioStatus.CACHED,
                        fingerprint=fp,
                    )
                    with obs_tracing.span("scenario",
                                          scenario=scenario.name,
                                          source="cache"):
                        pass
                    continue
                if self.journal is not None:
                    entry = self.journal.lookup("scenario", key)
                    if entry is not None:
                        reports[scenario.name] = entry
                        journal_hits.append(scenario.name)
                        records[scenario.name] = ScenarioRecord(
                            name=scenario.name,
                            status=ScenarioStatus.JOURNALED,
                            fingerprint=fp,
                        )
                        if self.cache is not None:
                            self.cache.store(*key, entry)
                        with obs_tracing.span("scenario",
                                              scenario=scenario.name,
                                              source="journal"):
                            pass
                        continue
                todo.append((scenario, fp))

        events: List[str] = []
        recomputed: List[str] = []
        degraded: List[str] = []

        def absorb(scenario, fp, report, status, attempts=1,
                   error_chain=()):
            """Record one freshly computed scenario (either engine)."""
            key = (design.name, design_fp, fp)
            reports[scenario.name] = report
            recomputed.append(scenario.name)
            records[scenario.name] = ScenarioRecord(
                name=scenario.name, status=status, attempts=attempts,
                fingerprint=fp, error_chain=list(error_chain),
            )
            if self.cache is not None:
                self.cache.store(*key, report)
                self.cache.stats.evaluations += 1
            if self.journal is not None:
                was_available = self.journal.available
                if not self.journal.record("scenario", key, report) \
                        and was_available:
                    # First journal IO failure: the run continues, but
                    # the checkpoint is gone — surface it, loudly.
                    events.append(
                        "checkpoint unavailable: "
                        f"{self.journal.last_error or 'journal IO error'}"
                    )
                    obs_metrics.inc("runtime.journal.io_errors")

        ref_todo = list(todo)
        # Worker-scoped faults (crash/hang/pool death) need the
        # per-scenario fan-out where the supervisor owns retry and
        # quarantine; kernel-scoped faults deliberately ride the vector
        # path so chaos plans exercise the compile-failure fallback.
        vector_chaos_ok = (
            self.fault_injector is None
            or not self.fault_injector.plan.worker_faults()
        )
        if self.engine == "vector" and vector_chaos_ok and todo:
            # Batch whole modes: scenarios sharing a constraint set
            # become corner lanes of one compiled kernel. A mode that
            # fails to compile (e.g. libraries with incongruent arc
            # sets) falls back to the reference fan-out below.
            ref_todo = []
            modes: "OrderedDict[str, list]" = OrderedDict()
            for scenario, fp in todo:
                modes.setdefault(
                    constraints_fingerprint(scenario.constraints), []
                ).append((scenario, fp))
            with obs_tracing.span("vector_signoff", modes=len(modes),
                                  scenarios=len(todo)):
                for group in modes.values():
                    try:
                        if self.fault_injector is not None:
                            for scenario, _ in group:
                                self.fault_injector.fire_kernel(
                                    scenario.name
                                )
                        specs = [CornerSpec.from_scenario(s, self.stack)
                                 for s, _ in group]
                        kernel = compile_kernel(
                            design, group[0][0].constraints, specs,
                            stack=self.stack,
                        )
                        kernel.run()
                    except KernelCompileError as exc:
                        obs_metrics.inc("kernel.fallbacks")
                        events.append(
                            "vector engine fell back to reference for "
                            f"{len(group)} scenario(s): {exc}"
                        )
                        for scenario, _ in group:
                            with obs_tracing.span(
                                "kernel_fallback",
                                scenario=scenario.name,
                                error=str(exc),
                            ):
                                pass
                        ref_todo.extend(group)
                        continue
                    for ci, (scenario, fp) in enumerate(group):
                        report = kernel.report(ci)
                        report.scenario = scenario.name
                        with obs_tracing.span("scenario",
                                              scenario=scenario.name,
                                              source="vector"):
                            pass
                        self.attempts += 1
                        absorb(scenario, fp, report, ScenarioStatus.OK)

        isolate = self._needs_isolation(len(ref_todo))
        supervisor = SupervisedExecutor(
            jobs=self.jobs,
            executor=self.executor,
            policy=self.policy,
            allow_fallback=self.allow_fallback,
            on_event=events.append,
        )
        with obs_tracing.span("scenario_fanout", count=len(ref_todo),
                              isolated=isolate) as fanout_span:
            executions = supervisor.run([
                SupervisedTask(
                    name=scenario.name,
                    fn=_run_scenario_job,
                    payload=(scenario, design, self.stack, isolate,
                             self.fault_injector, tracer is not None),
                )
                for scenario, _ in ref_todo
            ])
        self.evaluations += len(todo)

        for (scenario, fp), execution in zip(ref_todo, executions):
            self.attempts += execution.attempts
            if execution.status is TaskStatus.DEGRADED:
                degraded.append(scenario.name)
                records[scenario.name] = ScenarioRecord(
                    name=scenario.name, status=ScenarioStatus.DEGRADED,
                    attempts=execution.attempts, fingerprint=fp,
                    error=(f"{type(execution.error).__name__}: "
                           f"{execution.error}"),
                    error_chain=list(execution.error_chain),
                )
                continue
            report = execution.result
            if isinstance(report, TracedResult):
                # Worker spans come home with the result; adopt them
                # under the fan-out span in submission order, so span
                # ids stay deterministic for any jobs count and the
                # summary's self-time attribution stays additive.
                if tracer is not None:
                    tracer.ingest(report.spans,
                                  parent_id=fanout_span.span_id)
                report = report.value
            status = (ScenarioStatus.OK
                      if execution.status is TaskStatus.OK
                      else ScenarioStatus.RETRIED)
            absorb(scenario, fp, report, status,
                   attempts=execution.attempts,
                   error_chain=execution.error_chain)

        obs_metrics.inc("signoff.passes")
        obs_metrics.inc("signoff.cache.hits", len(hits))
        obs_metrics.inc("signoff.cache.misses",
                        len(self.scenarios) - len(hits))
        obs_metrics.inc("signoff.journal.hits", len(journal_hits))
        obs_metrics.inc("signoff.evaluations", len(todo))
        obs_metrics.inc("signoff.degraded", len(degraded))
        if self.cache is not None:
            obs_metrics.set_gauge("signoff.cache.entries", len(self.cache))

        ordered = {
            s.name: reports[s.name] for s in self.scenarios
            if s.name in reports
        }
        outcome = SignoffOutcome(
            reports=ordered,
            cache_hits=hits,
            recomputed=recomputed,
            jobs=self.jobs,
            wall_time_s=time.perf_counter() - t0,
            records=records,
            degraded=degraded,
            journal_hits=journal_hits,
            executor_used=supervisor.executor_used,
            fallbacks=list(supervisor.fallbacks),
            events=events,
            cache_stats=(self._pass_cache_stats(stats_before)
                         if self.cache is not None else None),
        )
        if degraded and not self.keep_going:
            # Every success is already cached and journaled, so the
            # aborted batch resumes from here.
            raise SignoffError(
                f"{len(degraded)} scenario(s) degraded and "
                "keep_going is disabled",
                scenarios=sorted(degraded),
            )
        return outcome

    def run(self, design: Design):
        """McmmResult-only convenience wrapper over :meth:`signoff`."""
        return self.signoff(design).result
