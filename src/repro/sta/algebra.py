"""Pluggable timing-value algebras.

Every quantity the engine propagates — arrival, required time, slack —
used to be a bare ``float``. This module abstracts it behind a small
:class:`TimingAlgebra` protocol (``add / sub / max / min / le /
to_scalar`` plus the delay-lifting hook :meth:`TimingAlgebra.arc_delay`)
so alternate value domains plug into the *same* propagation, required-
time, PBA and CPPR code:

- :class:`ScalarAlgebra` — the drop-in default. Every operation is the
  native float operation with identical expression grouping, so the
  refactored engine is bit-compatible with the pre-algebra code (the
  1e-9 oracle suites pass unchanged, reference and vector engines).
- :class:`CanonicalAlgebra` — first-order canonical forms
  ``a0 + sum_i(a_i * dX_i) + a_r * dR_a`` (Visweswariah-style) built
  from the LVF/POCV sigma tables (:mod:`repro.liberty.lvf`), with
  Clark's moment-matched statistical max/min. This is the SSTA engine
  (:mod:`repro.sta.ssta`).
- :class:`MonteCarloAlgebra` — values are numpy sample *vectors*
  (:class:`Samples`): one pass through the reference propagation
  evaluates every Monte-Carlo sample at once, the same batching trick
  the vectorized kernel uses across corners. The MC validation harness
  that gates SSTA is therefore itself just another algebra instance.

Design notes for the engine refactor:

- Unset sentinels stay the floats ``+/-inf`` in every algebra, so
  ``Arrival`` defaults and ``math.isinf`` guards need no special cases.
- Non-scalar values (:class:`CanonicalForm`, :class:`Samples`) are
  *operator-complete*: ``+ - *`` combine means/coefficients/samples and
  comparisons order by mean. Plain arithmetic in the engine therefore
  works on any algebra's values; code goes through the algebra object
  exactly where the semantics genuinely differ — statistical max/min
  merging, delay lifting, and scalarization.
- Slews stay plain floats (mean slews) in every algebra: NLDM lookups
  are evaluated at the mean, which is the standard first-order POCV
  simplification and keeps canonical and MC propagation consistent.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

INF = math.inf

_SQRT_2PI = math.sqrt(2.0 * math.pi)


def _phi(x: float) -> float:
    """Standard normal density."""
    return math.exp(-0.5 * x * x) / _SQRT_2PI


def _Phi(x: float) -> float:
    """Standard normal CDF."""
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


def scalar_of(value) -> float:
    """The deterministic center (mean) of any algebra value."""
    return float(value)


def sigma_of(value) -> float:
    """The standard deviation of an algebra value (0 for plain floats)."""
    sigma = getattr(value, "sigma", None)
    if callable(sigma):
        return float(sigma())
    return 0.0


# ---------------------------------------------------------------------- #
# variation model


@dataclass(frozen=True)
class VariationModel:
    """How per-arc LVF sigma decomposes into shared and private variation.

    Each arc's total sigma splits into a correlated part ``rho * sigma``
    riding on one of ``n_sources`` global sources (chip-wide process
    knobs; an arc's source is chosen by a stable hash of its cell
    footprint, so all instances of a cell type shift together) and a
    private part ``sqrt(1 - rho^2) * sigma`` riding on one of
    ``n_private`` hashed per-arc slots.

    Both decomposition terms are *explicit* coordinates of the canonical
    form's sensitivity vector (length ``n_sources + n_private``), so
    correlation through shared path prefixes — the reconvergence that
    RSS-aggregated "independent" terms lose — is tracked exactly, and
    Clark's max is the only approximation separating the canonical
    algebra from the Monte-Carlo algebra. Slot collisions between
    unrelated arcs introduce a tiny spurious correlation; ``n_private``
    bounds it. The Monte-Carlo algebra draws the identical
    decomposition sample-wise, which is what makes the 5%
    canonical-vs-MC agreement gate meaningful.
    """

    n_sources: int = 4
    n_private: int = 512
    rho: float = 0.45
    seed: int = 20260808

    @property
    def dim(self) -> int:
        """Total sensitivity dimensions (global + private slots)."""
        return self.n_sources + self.n_private

    def source_of(self, cell_name: str) -> int:
        return zlib.crc32(cell_name.encode()) % self.n_sources

    def slot_of(self, instance: str, related: str, pin: str,
                out_dir: str) -> int:
        """Private-variation slot of an arc (offset past the globals).

        Shared across early/late modes: one die draws one process point
        per arc, it is only the sensitivity (sigma) that differs by
        mode.
        """
        key = f"{instance}|{related}|{pin}|{out_dir}"
        return self.n_sources + zlib.crc32(key.encode()) % self.n_private


# ---------------------------------------------------------------------- #
# the protocol


class TimingAlgebra:
    """Protocol for timing-value domains.

    ``add``/``sub``/``scale`` are provided generically (values are
    operator-complete); subclasses supply the merge/order/lift
    semantics.
    """

    name = "abstract"
    statistical = False

    def lift(self, x: float):
        """A deterministic constant as an algebra value."""
        return x

    def add(self, a, b):
        return a + b

    def sub(self, a, b):
        return a - b

    def scale(self, a, k: float):
        return a * k

    def max(self, a, b):
        raise NotImplementedError

    def min(self, a, b):
        raise NotImplementedError

    def le(self, a, b) -> bool:
        """Deterministic ordering by center value."""
        return scalar_of(a) <= scalar_of(b)

    def to_scalar(self, v) -> float:
        return scalar_of(v)

    def arc_delay(self, edge, out_dir: str, in_slew: float, load: float,
                  mode: str, value: float):
        """Lift a looked-up NLDM delay into an algebra value.

        ``value`` is the deterministic table delay; statistical algebras
        attach the arc's LVF sigma here. The default is the identity.
        """
        return value


class ScalarAlgebra(TimingAlgebra):
    """Plain floats — bit-compatible with the pre-algebra engine."""

    name = "scalar"

    def max(self, a, b):
        return a if a >= b else b

    def min(self, a, b):
        return a if a <= b else b

    def le(self, a, b) -> bool:
        return a <= b

    def to_scalar(self, v) -> float:
        return v


#: The module-level default; engine entry points use this when no
#: algebra is passed, making the refactor invisible to scalar callers.
SCALAR = ScalarAlgebra()


# ---------------------------------------------------------------------- #
# canonical first-order forms


class CanonicalForm:
    """``a0 + sum_i(a_i * dX_i) + indep * dR`` over the model's sources.

    ``coeffs`` are sensitivities to the model's explicit dimensions
    (global sources plus hashed per-arc private slots); ``indep`` is the
    residual variance Clark's moment-matched max generates beyond its
    linear blend. All dX/dR are independent standard normals. Operators
    combine means and sensitivities; comparisons order by mean so
    canonical values flow through code written for floats (sorting,
    ``> -inf`` guards, f-string formatting).
    """

    __slots__ = ("mean", "coeffs", "indep")

    def __init__(self, mean: float, coeffs: np.ndarray, indep: float = 0.0):
        self.mean = float(mean)
        self.coeffs = coeffs
        self.indep = float(indep)

    # -- moments ------------------------------------------------------- #

    def variance(self) -> float:
        return float(self.coeffs @ self.coeffs) + self.indep * self.indep

    def sigma(self) -> float:
        return math.sqrt(self.variance())

    def covariance(self, other: "CanonicalForm") -> float:
        return float(self.coeffs @ other.coeffs)

    def sample(self, z_global: np.ndarray, z_private: np.ndarray) -> np.ndarray:
        """Evaluate on draws: ``z_global`` is (N, dim), ``z_private``
        (N,) for the Clark-residual term."""
        return self.mean + z_global @ self.coeffs + self.indep * z_private

    # -- arithmetic ---------------------------------------------------- #

    def _coerce(self, other) -> Optional["CanonicalForm"]:
        if isinstance(other, CanonicalForm):
            return other
        if isinstance(other, (int, float)):
            return CanonicalForm(float(other), np.zeros_like(self.coeffs))
        return None

    def __add__(self, other):
        if isinstance(other, (int, float)):
            return CanonicalForm(self.mean + other, self.coeffs, self.indep)
        if isinstance(other, CanonicalForm):
            return CanonicalForm(
                self.mean + other.mean,
                self.coeffs + other.coeffs,
                math.hypot(self.indep, other.indep),
            )
        return NotImplemented

    __radd__ = __add__

    def __sub__(self, other):
        if isinstance(other, (int, float)):
            return CanonicalForm(self.mean - other, self.coeffs, self.indep)
        if isinstance(other, CanonicalForm):
            return CanonicalForm(
                self.mean - other.mean,
                self.coeffs - other.coeffs,
                math.hypot(self.indep, other.indep),
            )
        return NotImplemented

    def __rsub__(self, other):
        if isinstance(other, (int, float)):
            return CanonicalForm(other - self.mean, -self.coeffs, self.indep)
        return NotImplemented

    def __mul__(self, k):
        if isinstance(k, (int, float)):
            return CanonicalForm(self.mean * k, self.coeffs * k,
                                 abs(self.indep * k))
        return NotImplemented

    __rmul__ = __mul__

    def __neg__(self):
        return CanonicalForm(-self.mean, -self.coeffs, self.indep)

    # -- ordering by mean ---------------------------------------------- #

    def __float__(self) -> float:
        return self.mean

    def __format__(self, spec: str) -> str:
        return format(self.mean, spec)

    def __lt__(self, other):
        return self.mean < float(other)

    def __le__(self, other):
        return self.mean <= float(other)

    def __gt__(self, other):
        return self.mean > float(other)

    def __ge__(self, other):
        return self.mean >= float(other)

    def __eq__(self, other):
        if isinstance(other, (CanonicalForm, int, float)):
            return self.mean == float(other)
        return NotImplemented

    def __hash__(self):
        return hash(self.mean)

    def __repr__(self):
        return f"CanonicalForm(mean={self.mean:.4f}, sigma={self.sigma():.4f})"


class CanonicalAlgebra(TimingAlgebra):
    """First-order canonical SSTA with Clark's moment-matched max."""

    name = "canonical"
    statistical = True

    def __init__(self, design, model: Optional[VariationModel] = None):
        self.design = design
        self.model = model or VariationModel()
        self._zeros = np.zeros(self.model.dim)

    # -- lifting ------------------------------------------------------- #

    def lift(self, x: float) -> CanonicalForm:
        return CanonicalForm(x, self._zeros)

    def _form(self, v) -> CanonicalForm:
        if isinstance(v, CanonicalForm):
            return v
        return CanonicalForm(float(v), self._zeros)

    def arc_delay(self, edge, out_dir: str, in_slew: float, load: float,
                  mode: str, value: float):
        sigma = edge.arc.sigma(out_dir, in_slew, load, mode)
        if not sigma:
            return value
        model = self.model
        cell_name = self.design.instance(edge.instance).cell_name
        coeffs = np.zeros(model.dim)
        coeffs[model.source_of(cell_name)] = model.rho * sigma
        slot = model.slot_of(edge.instance, edge.arc.related_pin,
                             edge.arc.pin, out_dir)
        coeffs[slot] += math.sqrt(max(1.0 - model.rho ** 2, 0.0)) * sigma
        return CanonicalForm(value, coeffs)

    # -- merge --------------------------------------------------------- #

    def max(self, a, b):
        # Infinite means are the engine's unset sentinels: pass through.
        fa, fb = float(a), float(b)
        if math.isinf(fa):
            return b if fa < 0 else a
        if math.isinf(fb):
            return a if fb < 0 else b
        A, B = self._form(a), self._form(b)
        va, vb = A.variance(), B.variance()
        if va == 0.0 and vb == 0.0:
            return A if A.mean >= B.mean else B
        theta_sq = va + vb - 2.0 * A.covariance(B)
        theta = math.sqrt(max(theta_sq, 0.0))
        if theta < 1e-12:
            # Perfectly correlated: the larger mean dominates everywhere.
            return A if A.mean >= B.mean else B
        alpha = (A.mean - B.mean) / theta
        p = _Phi(alpha)
        q = 1.0 - p
        t = _phi(alpha)
        mean = A.mean * p + B.mean * q + theta * t
        # Moment-matched sensitivities (Clark / Visweswariah): linear
        # terms blend by tightness probability.
        coeffs = A.coeffs * p + B.coeffs * q
        second = ((va + A.mean * A.mean) * p
                  + (vb + B.mean * B.mean) * q
                  + (A.mean + B.mean) * theta * t)
        var = max(second - mean * mean, 0.0)
        lin_var = float(coeffs @ coeffs)
        indep = math.sqrt(max(var - lin_var, 0.0))
        return CanonicalForm(mean, coeffs, indep)

    def min(self, a, b):
        fa, fb = float(a), float(b)
        if math.isinf(fa):
            return b if fa > 0 else a
        if math.isinf(fb):
            return a if fb > 0 else b
        return -self.max(-self._form(a), -self._form(b))


# ---------------------------------------------------------------------- #
# Monte-Carlo sample vectors


class Samples:
    """A vector of per-sample values for one timing quantity.

    Arithmetic is elementwise; ordering (for engine control flow and
    report sorting) is by sample mean.
    """

    __slots__ = ("vec",)

    def __init__(self, vec: np.ndarray):
        self.vec = vec

    def mean(self) -> float:
        return float(self.vec.mean())

    def sigma(self) -> float:
        return float(self.vec.std())

    def _data(self, other):
        if isinstance(other, Samples):
            return other.vec
        if isinstance(other, (int, float)):
            return other
        return None

    def __add__(self, other):
        data = self._data(other)
        if data is None:
            return NotImplemented
        return Samples(self.vec + data)

    __radd__ = __add__

    def __sub__(self, other):
        data = self._data(other)
        if data is None:
            return NotImplemented
        return Samples(self.vec - data)

    def __rsub__(self, other):
        if isinstance(other, (int, float)):
            return Samples(other - self.vec)
        return NotImplemented

    def __mul__(self, k):
        if isinstance(k, (int, float)):
            return Samples(self.vec * k)
        return NotImplemented

    __rmul__ = __mul__

    def __neg__(self):
        return Samples(-self.vec)

    def __float__(self) -> float:
        return self.mean()

    def __format__(self, spec: str) -> str:
        return format(self.mean(), spec)

    def __lt__(self, other):
        return self.mean() < float(other)

    def __le__(self, other):
        return self.mean() <= float(other)

    def __gt__(self, other):
        return self.mean() > float(other)

    def __ge__(self, other):
        return self.mean() >= float(other)

    def __eq__(self, other):
        if isinstance(other, (Samples, int, float)):
            return self.mean() == float(other)
        return NotImplemented

    def __hash__(self):
        return hash(self.mean())

    def __repr__(self):
        return f"Samples(n={len(self.vec)}, mean={self.mean():.4f})"


class MonteCarloAlgebra(TimingAlgebra):
    """Every value is a vector of MC samples; one propagation pass
    evaluates all of them (the corner-batching trick, applied to dies).

    Draws are deterministic: global sources come from the model seed,
    each arc's private draw from a CRC of its identity, so two runs —
    or the canonical sampler and this algebra — see the same dies.
    """

    name = "monte-carlo"
    statistical = True

    def __init__(self, design, model: Optional[VariationModel] = None,
                 n_samples: int = 2000):
        self.design = design
        self.model = model or VariationModel()
        self.n_samples = n_samples
        rng = np.random.default_rng(self.model.seed)
        #: (N, dim) draws of every model dimension (globals + slots).
        self.z = rng.standard_normal((n_samples, self.model.dim))

    def arc_delay(self, edge, out_dir: str, in_slew: float, load: float,
                  mode: str, value: float):
        sigma = edge.arc.sigma(out_dir, in_slew, load, mode)
        if not sigma:
            return value
        model = self.model
        cell_name = self.design.instance(edge.instance).cell_name
        source = model.source_of(cell_name)
        slot = model.slot_of(edge.instance, edge.arc.related_pin,
                             edge.arc.pin, out_dir)
        rho = model.rho
        z = (rho * self.z[:, source]
             + math.sqrt(max(1.0 - rho * rho, 0.0)) * self.z[:, slot])
        return Samples(value + sigma * z)

    def max(self, a, b):
        fa, fb = float(a), float(b)
        if math.isinf(fa):
            return b if fa < 0 else a
        if math.isinf(fb):
            return a if fb < 0 else b
        if not isinstance(a, Samples) and not isinstance(b, Samples):
            return a if a >= b else b
        av = a.vec if isinstance(a, Samples) else a
        bv = b.vec if isinstance(b, Samples) else b
        return Samples(np.maximum(av, bv))

    def min(self, a, b):
        fa, fb = float(a), float(b)
        if math.isinf(fa):
            return b if fa > 0 else a
        if math.isinf(fb):
            return a if fb > 0 else b
        if not isinstance(a, Samples) and not isinstance(b, Samples):
            return a if a <= b else b
        av = a.vec if isinstance(a, Samples) else a
        bv = b.vec if isinstance(b, Samples) else b
        return Samples(np.minimum(av, bv))

    def samples_of(self, value) -> np.ndarray:
        """A value's sample vector (constants broadcast)."""
        if isinstance(value, Samples):
            return value.vec
        return np.full(self.n_samples, float(value))
