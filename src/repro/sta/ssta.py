"""Statistical STA with post-silicon tunable (PST) clock buffers.

The paper's Section 3 arc: corner proliferation stops scaling, margining
goes statistical. This module runs the *unchanged* reference engine under
the canonical-form algebra (:class:`repro.sta.algebra.CanonicalAlgebra`)
to get per-endpoint slack *distributions*, then derives the quantities a
statistical signoff flow reports:

- timing yield at the target period (and at any shifted period — setup
  slack is linear in the period, so a sampled slack matrix answers the
  whole period sweep);
- per-endpoint criticalities — the probability an endpoint is the
  chip's worst — which sum to 1 by construction (argmin counting on a
  shared sample set);
- instance criticalities, endpoint criticality attributed along worst
  paths (the edge/path criticality used to place tuning buffers).

On top sits the PST model of Li & Schlichtmann (arXiv 1705.04986,
1705.04979): a tunable buffer on a capture flop's clock pin adds a
post-silicon shift ``s in [0, tau]`` to the capture clock. Folded into
the capture-side canonical form, a tuned endpoint passes on a die iff
its setup slack sample can be lifted by at most ``tau`` without breaking
the flop's hold slack by the same shift — the graph-transformation
trick reduces per-die tuning to a per-flop interval-feasibility test,
so yield-with-tuning is computed on the same sampled slack matrices.
:func:`tune_to_yield` then greedily picks minimal insertion points —
"tune instead of resize" as a closure alternative.

Everything here is gated by a Monte-Carlo harness
(:func:`monte_carlo_ssta`) that runs the same engine under the
sample-vector algebra on the same LVF tables and variation model.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import TimingError
from repro.liberty.lvf import has_lvf
from repro.sta.algebra import (
    CanonicalAlgebra,
    CanonicalForm,
    MonteCarloAlgebra,
    Samples,
    VariationModel,
    scalar_of,
    sigma_of,
)
from repro.sta.analysis import STA
from repro.sta.reports import EndpointResult


def _phi_cdf(x: float) -> float:
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


# ---------------------------------------------------------------------- #
# the SSTA run


@dataclass
class SstaEndpoint:
    """Distributional view of one timing endpoint."""

    endpoint: object
    kind: str  # "setup" | "output" | "hold"
    mean: float
    sigma: float
    #: Analytic P(slack < 0) from the canonical form.
    fail_prob: float
    #: P(this endpoint is the chip's worst setup slack); hold endpoints
    #: report 0. Sums to 1 over setup endpoints.
    criticality: float = 0.0
    #: Capture flop instance ("" for output-port endpoints).
    flop: str = ""


class SstaRun:
    """One canonical-SSTA analysis plus its sampled slack matrices.

    Sampling is deterministic (model seed + endpoint-name CRCs): global
    source draws are shared across all endpoints, so the matrices carry
    the cross-endpoint correlation that yield and criticality need.
    """

    def __init__(self, sta: STA, model: VariationModel,
                 n_samples: int = 4000):
        if not isinstance(sta.algebra, CanonicalAlgebra):
            raise TimingError("SstaRun needs an STA run under "
                              "CanonicalAlgebra")
        if sta.report is None:
            raise TimingError("run() must complete before SSTA extraction")
        self.sta = sta
        self.model = model
        self.report = sta.report
        self.n_samples = n_samples
        self.period = sta.constraints.primary_clock().period

        self.setup_results: List[EndpointResult] = list(self.report.setup)
        self.hold_results: List[EndpointResult] = list(self.report.hold)

        rng = np.random.default_rng(model.seed)
        z_global = rng.standard_normal((n_samples, model.dim))
        self.setup_slacks = self._sample_matrix(
            self.setup_results, z_global, "setup")
        self.hold_slacks = self._sample_matrix(
            self.hold_results, z_global, "hold")

        crit = self._criticalities()
        self.endpoints: List[SstaEndpoint] = []
        for i, e in enumerate(self.setup_results):
            self.endpoints.append(SstaEndpoint(
                endpoint=e.endpoint,
                kind=e.kind,
                mean=scalar_of(e.slack),
                sigma=sigma_of(e.slack),
                fail_prob=self._fail_prob(e.slack),
                criticality=crit[i],
                flop=e.check.instance if e.check is not None else "",
            ))
        self.hold_endpoints: List[SstaEndpoint] = [
            SstaEndpoint(
                endpoint=e.endpoint,
                kind="hold",
                mean=scalar_of(e.slack),
                sigma=sigma_of(e.slack),
                fail_prob=self._fail_prob(e.slack),
                flop=e.check.instance if e.check is not None else "",
            )
            for e in self.hold_results
        ]

    # ------------------------------------------------------------------ #

    def _sample_matrix(self, results: Sequence[EndpointResult],
                       z_global: np.ndarray, tag: str) -> np.ndarray:
        """(n_samples, n_endpoints) slack draws on shared global sources."""
        n = z_global.shape[0]
        cols = []
        for e in results:
            slack = e.slack
            if isinstance(slack, CanonicalForm):
                key = f"{tag}|{e.endpoint}"
                rng = np.random.default_rng(
                    (self.model.seed, zlib.crc32(key.encode()))
                )
                cols.append(slack.sample(z_global, rng.standard_normal(n)))
            else:
                cols.append(np.full(n, float(slack)))
        if not cols:
            return np.zeros((n, 0))
        return np.column_stack(cols)

    @staticmethod
    def _fail_prob(slack) -> float:
        mean, sigma = scalar_of(slack), sigma_of(slack)
        if sigma <= 0.0:
            return 1.0 if mean < 0.0 else 0.0
        return _phi_cdf(-mean / sigma)

    def _criticalities(self) -> np.ndarray:
        if self.setup_slacks.shape[1] == 0:
            return np.zeros(0)
        worst = np.argmin(self.setup_slacks, axis=1)
        counts = np.bincount(worst, minlength=self.setup_slacks.shape[1])
        return counts / float(self.setup_slacks.shape[0])

    # ------------------------------------------------------------------ #
    # yield

    def timing_yield(self, period: Optional[float] = None) -> float:
        """P(every setup and hold check passes) at ``period``.

        Setup/output slack is linear in the period (required time is
        ``T + ...``), so a period shift moves every setup sample by the
        same delta; hold checks are same-edge and unaffected.
        """
        shift = 0.0 if period is None else period - self.period
        ok = np.ones(self.n_samples, dtype=bool)
        if self.setup_slacks.shape[1]:
            ok &= (self.setup_slacks + shift >= 0.0).all(axis=1)
        if self.hold_slacks.shape[1]:
            ok &= (self.hold_slacks >= 0.0).all(axis=1)
        return float(ok.mean())

    def yield_vs_period(self, deltas: Sequence[float]) -> List[Tuple[float, float]]:
        return [(self.period + d, self.timing_yield(self.period + d))
                for d in deltas]

    # ------------------------------------------------------------------ #
    # criticality attribution

    def instance_criticality(self) -> Dict[str, float]:
        """Endpoint criticality attributed along worst paths.

        Each instance accumulates the criticality of every endpoint
        whose worst (mean) path passes through it — the edge/path
        criticality map that guides where tuning or sizing pays off.
        """
        out: Dict[str, float] = {}
        for ep, result in zip(self.endpoints, self.setup_results):
            if ep.criticality <= 0.0:
                continue
            path = self.sta.worst_path(result)
            seen = set()
            for point in path.points:
                inst = point.ref.instance
                if inst and inst not in seen:
                    seen.add(inst)
                    out[inst] = out.get(inst, 0.0) + ep.criticality
        return out

    # ------------------------------------------------------------------ #
    # rendering

    def render(self, limit: int = 10) -> str:
        lines = [
            f"ssta report ({len(self.endpoints)} setup endpoints, "
            f"{len(self.hold_endpoints)} hold, "
            f"{self.n_samples} samples, rho={self.model.rho})",
            f"  period {self.period:.1f} ps -> "
            f"timing yield {self.timing_yield():.4f}",
            f"  {'endpoint':<30} {'mean':>9} {'sigma':>8} "
            f"{'P(fail)':>8} {'crit':>6}",
        ]
        ranked = sorted(self.endpoints, key=lambda e: -e.criticality)
        for e in ranked[:limit]:
            lines.append(
                f"  {str(e.endpoint):<30} {e.mean:9.2f} {e.sigma:8.2f} "
                f"{e.fail_prob:8.4f} {e.criticality:6.3f}"
            )
        return "\n".join(lines)


def run_ssta(
    design,
    library,
    constraints,
    model: Optional[VariationModel] = None,
    n_samples: int = 4000,
    **sta_kwargs,
) -> SstaRun:
    """Run the reference engine under canonical forms and sample it."""
    if not has_lvf(library):
        raise TimingError(
            "SSTA needs LVF sigma tables on every delay arc "
            "(library has none or was stripped)"
        )
    model = model or VariationModel()
    sta = STA(design, library, constraints,
              algebra=CanonicalAlgebra(design, model), **sta_kwargs)
    sta.run()
    return SstaRun(sta, model, n_samples=n_samples)


# ---------------------------------------------------------------------- #
# Monte-Carlo validation


@dataclass
class McResult:
    """Moments from a sample-vector (Monte-Carlo) engine run."""

    n_samples: int
    #: endpoint str -> (mean, sigma) of setup slack
    setup_moments: Dict[str, Tuple[float, float]]
    timing_yield: float


def monte_carlo_ssta(
    design,
    library,
    constraints,
    model: Optional[VariationModel] = None,
    n_samples: int = 2000,
    **sta_kwargs,
) -> McResult:
    """The independent oracle: the same engine, same LVF tables and same
    variation model, but propagating concrete sample vectors — exact
    per-sample max/min instead of Clark's moment matching."""
    model = model or VariationModel()
    alg = MonteCarloAlgebra(design, model, n_samples=n_samples)
    sta = STA(design, library, constraints, algebra=alg, **sta_kwargs)
    report = sta.run()

    moments: Dict[str, Tuple[float, float]] = {}
    ok = np.ones(n_samples, dtype=bool)
    for e in report.setup:
        vec = alg.samples_of(e.slack)
        moments[str(e.endpoint)] = (float(vec.mean()), float(vec.std()))
        ok &= vec >= 0.0
    for e in report.hold:
        ok &= alg.samples_of(e.slack) >= 0.0
    return McResult(
        n_samples=n_samples,
        setup_moments=moments,
        timing_yield=float(ok.mean()),
    )


# ---------------------------------------------------------------------- #
# PST clock-buffer tuning


@dataclass
class TuneResult:
    """Outcome of the greedy PST insertion pass."""

    tune_range: float
    target_yield: float
    baseline_yield: float
    tuned_yield: float
    #: Flop instances that received a PST buffer, in insertion order.
    selected: List[str] = field(default_factory=list)
    #: Yield after each insertion (parallel to ``selected``).
    steps: List[float] = field(default_factory=list)

    @property
    def achieved(self) -> bool:
        return self.tuned_yield >= self.target_yield

    @property
    def yield_gain(self) -> float:
        return self.tuned_yield - self.baseline_yield

    def render(self) -> str:
        lines = [
            f"pst tuning: range {self.tune_range:.1f} ps, "
            f"target yield {self.target_yield:.4f}",
            f"  baseline yield {self.baseline_yield:.4f} -> "
            f"tuned {self.tuned_yield:.4f} "
            f"({len(self.selected)} buffers, "
            f"{'target met' if self.achieved else 'target missed'})",
        ]
        for flop, y in zip(self.selected, self.steps):
            lines.append(f"    + {flop:<24} yield {y:.4f}")
        return "\n".join(lines)


class _PstEvaluator:
    """Vectorized per-die feasibility for a set of tuned flops.

    A PST buffer on flop ``f`` shifts its capture clock by
    ``s in [-tau, +tau]`` (a trombone delay line tuned around its
    nominal center tap): positive shift buys setup slack, negative
    shift buys hold slack. On die ``d`` the flop's checks are all
    satisfiable iff the shift interval intersects the slack window:

        max(need_f(d), -tau_f) <= min(tau_f, head_f(d))

    where ``need = max(-setup slack)`` over f's setup endpoints (the
    smallest shift that rescues setup) and ``head = min(hold slack)``
    (the largest shift hold tolerates). Untuned flops are the
    ``tau = 0`` case. Endpoints with no capture flop (output ports)
    simply need nonnegative slack.

    Shifts are applied at the clock leaf (capture side only) — the
    launch-side effect of a mid-tree buffer is ignored, the standard
    endpoint-granularity simplification of the graph-transformation
    formulation.
    """

    def __init__(self, run: SstaRun):
        self.run = run
        n = run.n_samples
        setup_by_flop: Dict[str, List[int]] = {}
        fixed_ok = np.ones(n, dtype=bool)
        for i, ep in enumerate(run.endpoints):
            if ep.flop:
                setup_by_flop.setdefault(ep.flop, []).append(i)
            else:
                fixed_ok &= run.setup_slacks[:, i] >= 0.0
        hold_by_flop: Dict[str, List[int]] = {}
        for i, ep in enumerate(run.hold_endpoints):
            if ep.flop:
                hold_by_flop.setdefault(ep.flop, []).append(i)
            else:
                fixed_ok &= run.hold_slacks[:, i] >= 0.0

        self.flops = sorted(set(setup_by_flop) | set(hold_by_flop))
        self.fixed_ok = fixed_ok
        self.need: Dict[str, np.ndarray] = {}
        self.head: Dict[str, np.ndarray] = {}
        for f in self.flops:
            cols = setup_by_flop.get(f, [])
            self.need[f] = (
                np.max(-run.setup_slacks[:, cols], axis=1) if cols
                else np.full(n, -np.inf)
            )
            cols = hold_by_flop.get(f, [])
            self.head[f] = (
                np.min(run.hold_slacks[:, cols], axis=1) if cols
                else np.full(n, np.inf)
            )

    def feasible(self, flop: str, tau: float) -> np.ndarray:
        lo = np.maximum(self.need[flop], -tau)
        return lo <= np.minimum(tau, self.head[flop])

    def yield_for(self, tuned: Dict[str, float]) -> float:
        ok = self.fixed_ok.copy()
        for f in self.flops:
            ok &= self.feasible(f, tuned.get(f, 0.0))
        return float(ok.mean())


def tune_to_yield(
    run: SstaRun,
    target_yield: float = 0.99,
    tune_range: float = 40.0,
    max_buffers: Optional[int] = None,
) -> TuneResult:
    """Greedy minimal PST insertion to reach a yield target.

    Each step inserts the buffer with the largest yield gain; when no
    single insertion moves chip yield (several flops must be tuned
    before any die passes), the expected per-die count of infeasible
    flops is the tie-breaking gradient, then aggregate endpoint
    criticality. Stops when the target is met, the budget is spent, or
    no insertion improves either objective.
    """
    ev = _PstEvaluator(run)
    crit_by_flop: Dict[str, float] = {}
    for ep in run.endpoints:
        if ep.flop:
            crit_by_flop[ep.flop] = crit_by_flop.get(ep.flop, 0.0) \
                + ep.criticality

    feas0 = {f: ev.feasible(f, 0.0) for f in ev.flops}
    feasT = {f: ev.feasible(f, tune_range) for f in ev.flops}
    fail_count = sum((~feas0[f]).astype(np.int32) for f in ev.flops) \
        if ev.flops else np.zeros(run.n_samples, dtype=np.int32)

    baseline = float((ev.fixed_ok & (fail_count == 0)).mean())
    result = TuneResult(
        tune_range=tune_range,
        target_yield=target_yield,
        baseline_yield=baseline,
        tuned_yield=baseline,
    )
    budget = max_buffers if max_buffers is not None else len(ev.flops)
    remaining = set(ev.flops)
    total_fail = int(fail_count.sum())
    while result.tuned_yield < target_yield and remaining \
            and len(result.selected) < budget:
        best_f: Optional[str] = None
        best_score = (-1.0, -float("inf"), -1.0)
        best_fail = total_fail
        for f in sorted(remaining):
            new_fail = fail_count - (~feas0[f]) + (~feasT[f])
            y = float((ev.fixed_ok & (new_fail == 0)).mean())
            nf = int(new_fail.sum())
            score = (y, -nf, crit_by_flop.get(f, 0.0))
            if score > best_score:
                best_score, best_f, best_fail = score, f, nf
        if best_f is None or (best_score[0] <= result.tuned_yield
                              and best_fail >= total_fail):
            break
        fail_count = fail_count - (~feas0[best_f]) + (~feasT[best_f])
        total_fail = best_fail
        remaining.discard(best_f)
        result.selected.append(best_f)
        result.steps.append(best_score[0])
        result.tuned_yield = best_score[0]
    return result


def yield_vs_tuning_range(
    run: SstaRun,
    ranges: Sequence[float],
    target_yield: float = 0.999,
    max_buffers: Optional[int] = None,
) -> List[TuneResult]:
    """The PST recovery curve: tuned yield as the range tau grows."""
    return [
        tune_to_yield(run, target_yield=target_yield, tune_range=tau,
                      max_buffers=max_buffers)
        for tau in ranges
    ]


# ---------------------------------------------------------------------- #
# the PST benchmark block


def pst_benchmark_setup(seed: int = 9, n_gates: int = 160,
                        headroom_sigma: float = 1.0):
    """(design, library, constraints) tuned so nominal timing passes but
    process variation fails an interesting fraction of dies.

    The period is set from a scalar pre-pass: worst mean slack lands at
    ``headroom_sigma`` times the worst endpoint sigma, which puts the
    yield in the recoverable band the PST story needs.
    """
    from repro.liberty.stdcells import make_library
    from repro.netlist.generators import random_logic
    from repro.sta.constraints import Constraints

    design = random_logic(
        name=f"pstblk{seed}",
        n_inputs=12, n_outputs=12,
        n_gates=n_gates, n_levels=max(6, n_gates // 20),
        seed=seed,
    )
    library = make_library()
    constraints = Constraints.single_clock(800.0)

    probe = run_ssta(design, library, constraints, n_samples=256)
    worst = min(probe.endpoints, key=lambda e: e.mean - 3 * e.sigma)
    slack_at_800 = worst.mean
    period = 800.0 - slack_at_800 + headroom_sigma * max(worst.sigma, 1.0)
    return design, library, constraints.with_period(period)
