"""Backward required-time propagation and per-pin slacks.

The forward pass (:mod:`repro.sta.propagation`) computes arrivals; this
module walks the graph backward from the timing endpoints to compute the
latest allowed arrival (late/setup mode) or earliest allowed arrival
(early/hold mode) at *every* pin. Pin slack = required - arrival (late)
or arrival - required (early).

Per-pin slacks power two consumers: the ETM extractor
(:mod:`repro.sta.etm`) reads port budgets off them, and closure fix
guards (e.g. the MinIA fixer's ``slack_of``) read instance criticality.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from repro.errors import TimingError
from repro.netlist.design import PinRef
from repro.sta.algebra import SCALAR
from repro.sta.graph import CellEdge, NetEdge
from repro.sta.propagation import DIRECTIONS, driver_load

INF = math.inf

ReqKey = Tuple[PinRef, str]


def required_times(sta, mode: str = "late") -> Dict[ReqKey, float]:
    """Required time at every (pin, direction).

    ``mode="late"`` gives the latest allowed (setup) arrival; pins with
    no path to an endpoint get +inf. ``mode="early"`` gives the earliest
    allowed (hold) arrival; unconstrained pins get -inf.
    """
    if sta.prop is None:
        raise TimingError("run() must be called before required-time analysis")
    if mode not in ("late", "early"):
        raise TimingError(f"bad mode {mode!r}")
    alg = getattr(sta, "algebra", SCALAR)
    req: Dict[ReqKey, float] = {}
    _seed_endpoints(sta, req, mode, alg)

    better = alg.min if mode == "late" else alg.max
    for ref in reversed(sta.graph.topo_order):
        for edge in sta.graph.out_edges.get(ref, []):
            if isinstance(edge, NetEdge):
                _relax_net_edge(sta, req, edge, mode, better)
            else:
                _relax_cell_edge(sta, req, edge, mode, better)
    return req


def pin_slack(sta, req: Dict[ReqKey, float], ref: PinRef,
              mode: str = "late") -> float:
    """Worst slack at a pin over both directions (inf when unconstrained)."""
    alg = getattr(sta, "algebra", SCALAR)
    worst = INF
    for direction in DIRECTIONS:
        if not sta.prop.has(ref, direction):
            continue
        r = req.get((ref, direction))
        if r is None:
            continue
        arr = sta.prop.at(ref, direction)
        if mode == "late":
            if r == INF:
                continue
            worst = alg.min(worst, r - arr.late)
        else:
            if r == -INF:
                continue
            worst = alg.min(worst, arr.early - r)
    return worst


def instance_slacks(sta, mode: str = "late") -> Dict[str, float]:
    """Worst slack through each instance (min over its pins).

    The natural ``slack_of`` oracle for guarded optimizations (MinIA
    fixing, area recovery): an instance with small slack must not be
    slowed down.
    """
    alg = getattr(sta, "algebra", SCALAR)
    req = required_times(sta, mode)
    out: Dict[str, float] = {}
    for ref in sta.graph.topo_order:
        if ref.is_port:
            continue
        slack = pin_slack(sta, req, ref, mode)
        current = out.get(ref.instance, INF)
        out[ref.instance] = alg.min(current, slack)
    return out


# ---------------------------------------------------------------------- #


def _seed_endpoints(sta, req: Dict[ReqKey, float], mode: str,
                    alg=SCALAR) -> None:
    constraints = sta.constraints
    if not constraints.clocks:
        return
    if mode == "late":
        for check in sta.graph.setup_checks():
            clk = sta.prop.at(check.clock_pin, "rise")
            if not clk.valid:
                continue
            clock = sta._clock_of_check(check)
            if clock is None:
                continue
            clk_early = clk.early + constraints.clock_latency.get(
                check.instance, 0.0
            )
            for direction in DIRECTIONS:
                if not sta.prop.has(check.data_pin, direction):
                    continue
                arr = sta.prop.at(check.data_pin, direction)
                setup = check.arc.constraint_value(
                    direction, arr.slew_late, clk.slew_late
                )
                value = (
                    clock.period + clk_early - setup
                    - clock.uncertainty_setup
                    - constraints.flat_setup_margin
                )
                key = (check.data_pin, direction)
                req[key] = alg.min(req.get(key, INF), value)
        primary = constraints.primary_clock()
        for ref in sta.graph.output_port_refs():
            value = (
                primary.period
                - constraints.output_delays.get(ref.pin, 0.0)
                - primary.uncertainty_setup
            )
            for direction in DIRECTIONS:
                key = (ref, direction)
                req[key] = alg.min(req.get(key, INF), value)
    else:
        for check in sta.graph.hold_checks():
            clk = sta.prop.at(check.clock_pin, "rise")
            if not clk.valid:
                continue
            clock = sta._clock_of_check(check)
            if clock is None:
                continue
            clk_late = clk.late + constraints.clock_latency.get(
                check.instance, 0.0
            )
            for direction in DIRECTIONS:
                if not sta.prop.has(check.data_pin, direction):
                    continue
                arr = sta.prop.at(check.data_pin, direction)
                hold = check.arc.constraint_value(
                    direction, arr.slew_early, clk.slew_late
                )
                value = (
                    clk_late + hold + clock.uncertainty_hold
                    + constraints.flat_hold_margin
                )
                key = (check.data_pin, direction)
                req[key] = alg.max(req.get(key, -INF), value)


def _relax_net_edge(sta, req, edge: NetEdge, mode: str, better) -> None:
    para = sta.parasitics.extract(edge.net_name)
    pin_cap = 2.0
    if not edge.sink.is_port:
        pin_cap = sta.graph.cell_of(edge.sink).pin(edge.sink.pin).capacitance
    delay = para.wire_delay(edge.sink, pin_cap)
    for direction in DIRECTIONS:
        dst_req = req.get((edge.sink, direction))
        if dst_req is None or math.isinf(dst_req):
            continue
        key = (edge.driver, direction)
        candidate = dst_req - delay
        default = INF if mode == "late" else -INF
        req[key] = better(req.get(key, default), candidate)


def _relax_cell_edge(sta, req, edge: CellEdge, mode: str, better) -> None:
    from repro.liberty.arcs import TimingType

    alg = getattr(sta, "algebra", SCALAR)
    load = driver_load(sta.graph, sta.parasitics, edge.dst)
    is_clock = edge.src in sta.graph.clock_pins
    depth = sta.graph.data_depth.get(edge.dst, 1)
    skew = 0.0
    if edge.arc.timing_type is TimingType.RISING_EDGE:
        skew = sta.constraints.clock_latency.get(edge.instance, 0.0)
    for in_dir in DIRECTIONS:
        if not sta.prop.has(edge.src, in_dir):
            continue
        src = sta.prop.at(edge.src, in_dir)
        slew = src.slew_late if mode == "late" else src.slew_early
        for out_dir in edge.arc.sense.output_directions(in_dir):
            if out_dir not in edge.arc.timing:
                continue
            dst_req = req.get((edge.dst, out_dir))
            if dst_req is None or math.isinf(dst_req):
                continue
            delay, _ = edge.arc.delay_and_slew(out_dir, slew, load)
            delay = alg.arc_delay(edge, out_dir, slew, load, mode, delay)
            delay = skew + delay * sta.derates.factor(
                is_clock, mode, depth, edge.instance
            )
            key = (edge.src, in_dir)
            default = INF if mode == "late" else -INF
            req[key] = better(req.get(key, default), dst_req - delay)
