"""Timing constraints: an SDC-lite.

One or more clocks, input/output delays relative to a clock, default input
slews, a global max-transition override, clock uncertainties, and the
flat signoff margins whose selection the paper calls "intended to model
what cannot be modeled" (jitter, IR drop, model error — see
:mod:`repro.core.margins` for the decomposition).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import ConstraintError


@dataclass(frozen=True)
class ClockSpec:
    """A clock definition.

    Attributes:
        name: clock name.
        period: clock period, ps.
        port: the design port (or pin) where the clock enters.
        uncertainty_setup: cycle-to-cycle + jitter margin for setup, ps.
        uncertainty_hold: skew/jitter margin for hold, ps.
        source_latency: modeled latency before the clock root, ps.
        slew: clock edge slew at the root, ps.
    """

    name: str
    period: float
    port: str = "clk"
    uncertainty_setup: float = 10.0
    uncertainty_hold: float = 5.0
    source_latency: float = 0.0
    slew: float = 12.0

    def __post_init__(self):
        if self.period <= 0:
            raise ConstraintError(f"clock {self.name}: period must be positive")


@dataclass
class Constraints:
    """A constraint set (one analysis mode)."""

    clocks: Dict[str, ClockSpec] = field(default_factory=dict)
    input_delays: Dict[str, float] = field(default_factory=dict)  # port -> ps
    output_delays: Dict[str, float] = field(default_factory=dict)
    default_input_slew: float = 25.0
    max_transition: Optional[float] = None  # None = library default
    flat_setup_margin: float = 0.0  # extra signoff margin, ps
    flat_hold_margin: float = 0.0
    #: Per-flop useful-skew adjustment, ps: instance name -> extra clock
    #: latency at that flop (applied to both launch and capture roles).
    clock_latency: Dict[str, float] = field(default_factory=dict)

    @classmethod
    def single_clock(
        cls,
        period: float,
        port: str = "clk",
        name: str = "clk",
        **kwargs,
    ) -> "Constraints":
        """The common case: one clock, default everything else."""
        spec = ClockSpec(name=name, period=period, port=port, **kwargs)
        return cls(clocks={name: spec})

    def the_clock(self) -> ClockSpec:
        """The sole clock of a single-clock constraint set."""
        if len(self.clocks) != 1:
            raise ConstraintError(
                f"expected exactly one clock, have {sorted(self.clocks)}"
            )
        return next(iter(self.clocks.values()))

    def primary_clock(self) -> ClockSpec:
        """The clock that references output-delay checks.

        Single-clock sets return the sole clock (identical to
        ``the_clock()``). With several clocks the one literally named
        ``"clk"`` wins if present, otherwise the lexicographically first
        name — a deterministic stand-in for SDC's explicit
        ``set_output_delay -clock``.
        """
        if not self.clocks:
            raise ConstraintError("no clocks defined")
        if len(self.clocks) == 1:
            return next(iter(self.clocks.values()))
        if "clk" in self.clocks:
            return self.clocks["clk"]
        return self.clocks[min(self.clocks)]

    def clock_for_port(self, port: str) -> Optional[ClockSpec]:
        for spec in self.clocks.values():
            if spec.port == port:
                return spec
        return None

    def with_period(self, period: float) -> "Constraints":
        """A copy with every clock's period replaced (frequency sweep)."""
        from dataclasses import replace

        out = Constraints(
            clocks={
                name: replace(spec, period=period)
                for name, spec in self.clocks.items()
            },
            input_delays=dict(self.input_delays),
            output_delays=dict(self.output_delays),
            default_input_slew=self.default_input_slew,
            max_transition=self.max_transition,
            flat_setup_margin=self.flat_setup_margin,
            flat_hold_margin=self.flat_hold_margin,
            clock_latency=dict(self.clock_latency),
        )
        return out
