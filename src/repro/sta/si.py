"""Signal-integrity (coupling noise) delta delays.

A switching aggressor doubles the effective coupling capacitance seen by
a victim transition (Miller effect). The incremental delay is evaluated
through the victim driver's own NLDM table: delta = delay at
(load + 2*Cc_aligned) minus delay at (load + Cc_aligned), where only an
``alignment_fraction`` of the coupling is assumed to switch adversarially
in the same timing window.

The deltas are consumed by :func:`repro.sta.propagation.propagate`, which
adds them to late wire delays and subtracts them from early ones — the
"noise closure" entry of the paper's old-vs-new table (Fig 2).
"""

from __future__ import annotations

from typing import Dict

from repro.netlist.design import PinRef
from repro.parasitics.synthesis import ParasiticExtractor
from repro.sta.graph import TimingGraph

#: Fraction of coupling capacitance whose aggressors are assumed to align.
DEFAULT_ALIGNMENT = 0.5
#: Representative input slew for the incremental-delay evaluation, ps.
_EVAL_SLEW = 25.0


def net_coupling_delta(
    graph: TimingGraph,
    parasitics: ParasiticExtractor,
    net,
    alignment_fraction: float = DEFAULT_ALIGNMENT,
) -> float:
    """SI delta delay of one net, ps (0.0 when coupling cannot bite).

    Depends on the net's parasitics, its driver cell's arcs and its load
    pin caps — exactly the quantities a footprint-preserving ECO can
    change — so the incremental timer re-evaluates it per touched net.
    """
    if net.driver is None or net.driver.is_port or not net.loads:
        return 0.0
    para = parasitics.extract(net.name)
    cc = para.coupling_cap * alignment_fraction
    if cc <= 0.0:
        return 0.0
    cell = graph.cell_of(net.driver)
    arcs = cell.arcs_to(net.driver.pin)
    if not arcs:
        return 0.0
    base_load = para.driver_load(parasitics.pin_caps_total(net.name))
    worst_delta = 0.0
    for arc in arcs:
        for direction in arc.timing:
            quiet, _ = arc.delay_and_slew(direction, _EVAL_SLEW, base_load)
            noisy, _ = arc.delay_and_slew(
                direction, _EVAL_SLEW, base_load + cc
            )
            worst_delta = max(worst_delta, noisy - quiet)
    return worst_delta


def coupling_deltas(
    graph: TimingGraph,
    parasitics: ParasiticExtractor,
    alignment_fraction: float = DEFAULT_ALIGNMENT,
) -> Dict[str, float]:
    """Per-net SI delta delay (ps), keyed by net name.

    Nets without an instance driver (port-driven) or without coupling get
    no entry.
    """
    deltas: Dict[str, float] = {}
    for net in graph.design.nets.values():
        delta = net_coupling_delta(graph, parasitics, net,
                                   alignment_fraction)
        if delta > 0.0:
            deltas[net.name] = delta
    return deltas


def total_si_impact(deltas: Dict[str, float]) -> float:
    """Aggregate SI pushout across the design, ps (reporting metric)."""
    return sum(deltas.values())
