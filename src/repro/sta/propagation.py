"""Early/late arrival and slew propagation (graph-based analysis).

One forward pass over the levelized graph computes, for every pin and
transition direction, the earliest and latest arrival with the worst
(merged) slews, plus backpointers for path reconstruction. Derating —
flat OCV and/or AOCV stage-count tables — is applied per edge according to
whether the edge lies on the clock or data network.

The worst-slew merging performed here is exactly the pessimism that
path-based analysis (:mod:`repro.sta.pba`) removes by re-propagating
path-specific slews.

Arrival values live in a pluggable timing algebra
(:mod:`repro.sta.algebra`): plain floats by default, canonical forms or
Monte-Carlo sample vectors for statistical analysis. Merging (max/min)
and delay lifting go through the algebra; unset sentinels are float
``+/-inf`` in every mode.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import TimingError
from repro.liberty.aocv import AocvTable
from repro.netlist.design import PinRef
from repro.parasitics.synthesis import ParasiticExtractor
from repro.sta.algebra import SCALAR, TimingAlgebra
from repro.sta.graph import CellEdge, NetEdge, TimingGraph

INF = math.inf

Direction = str  # "rise" | "fall"
DIRECTIONS = ("rise", "fall")


@dataclass
class Derates:
    """Derating configuration.

    Flat factors multiply arc delays (late >= 1 slows the data/clock path,
    early <= 1 speeds it). An optional AOCV table refines the flat factors
    by path depth; ``aocv_distance`` supplies the bounding-box diagonal
    argument (a constant per run, the common simplification).
    ``instance_late``/``instance_early`` overlay per-instance factors —
    used e.g. for per-die derates in 3DIC analysis
    (:mod:`repro.core.threedic`).
    """

    data_late: float = 1.0
    data_early: float = 1.0
    clock_late: float = 1.0
    clock_early: float = 1.0
    aocv: Optional[AocvTable] = None
    aocv_distance: float = 0.0
    instance_late: Dict[str, float] = field(default_factory=dict)
    instance_early: Dict[str, float] = field(default_factory=dict)

    def factor(self, is_clock: bool, mode: str, depth: int,
               instance: str = "") -> float:
        if mode not in ("late", "early"):
            raise TimingError(f"bad derate mode {mode!r}")
        if is_clock:
            flat = self.clock_late if mode == "late" else self.clock_early
        else:
            flat = self.data_late if mode == "late" else self.data_early
        if self.aocv is not None:
            flat *= self.aocv.derate(max(depth, 1), self.aocv_distance, mode)
        if instance:
            table = self.instance_late if mode == "late" else \
                self.instance_early
            flat *= table.get(instance, 1.0)
        return flat


@dataclass
class Arrival:
    """Arrival bookkeeping for one (pin, direction)."""

    late: float = -INF
    early: float = INF
    slew_late: float = 0.0
    slew_early: float = 0.0
    # (edge, source direction) backpointers for path reconstruction.
    pred_late: Optional[Tuple[object, Direction]] = None
    pred_early: Optional[Tuple[object, Direction]] = None

    @property
    def valid(self) -> bool:
        return self.late > -INF

    def offer_late(self, time: float, slew: float,
                   pred: Optional[Tuple[object, Direction]],
                   alg: TimingAlgebra = SCALAR) -> None:
        if not alg.le(time, self.late):
            self.pred_late = pred
        self.late = alg.max(self.late, time)
        self.slew_late = max(self.slew_late, slew)

    def offer_early(self, time: float, slew: float,
                    pred: Optional[Tuple[object, Direction]],
                    alg: TimingAlgebra = SCALAR) -> None:
        if not alg.le(self.early, time):
            self.pred_early = pred
        self.early = alg.min(self.early, time)
        if self.slew_early == 0.0:
            self.slew_early = slew
        else:
            self.slew_early = min(self.slew_early, slew)


class PropagationResult:
    """Arrivals for every (pin, direction), plus per-driver loads."""

    def __init__(self):
        self.arrivals: Dict[Tuple[PinRef, Direction], Arrival] = {}
        self.loads: Dict[PinRef, float] = {}

    def at(self, ref: PinRef, direction: Direction) -> Arrival:
        key = (ref, direction)
        if key not in self.arrivals:
            self.arrivals[key] = Arrival()
        return self.arrivals[key]

    def has(self, ref: PinRef, direction: Direction) -> bool:
        arr = self.arrivals.get((ref, direction))
        return arr is not None and arr.valid

    def worst_late(self, ref: PinRef) -> Tuple[Optional[Direction], float]:
        best_dir, best = None, -INF
        for d in DIRECTIONS:
            if self.has(ref, d) and self.at(ref, d).late > best:
                best, best_dir = self.at(ref, d).late, d
        return best_dir, best

    def best_early(self, ref: PinRef) -> Tuple[Optional[Direction], float]:
        best_dir, best = None, INF
        for d in DIRECTIONS:
            if self.has(ref, d) and self.at(ref, d).early < best:
                best, best_dir = self.at(ref, d).early, d
        return best_dir, best


def propagate(
    graph: TimingGraph,
    parasitics: ParasiticExtractor,
    derates: Derates = Derates(),
    si_delta: Optional[Dict[str, float]] = None,
    algebra: TimingAlgebra = SCALAR,
) -> PropagationResult:
    """Run the forward GBA pass.

    Args:
        graph: the levelized timing graph.
        parasitics: extractor for wire loads/delays.
        derates: flat/AOCV derating configuration.
        si_delta: optional per-net coupling delta delay (ps), added to late
            wire delays and subtracted from early ones
            (:mod:`repro.sta.si` computes it).
        algebra: the timing-value algebra arrivals live in. The scalar
            default reproduces the pre-algebra engine bit-for-bit.

    Returns:
        A :class:`PropagationResult`.
    """
    result = PropagationResult()
    constraints = graph.constraints
    si_delta = si_delta or {}

    # Seed clock roots.
    for clock in constraints.clocks.values():
        root = PinRef("", clock.port)
        for direction in DIRECTIONS:
            arr = result.at(root, direction)
            arr.offer_late(clock.source_latency, clock.slew, None)
            arr.offer_early(clock.source_latency, clock.slew, None)

    # Seed data input ports.
    clock_ports = {c.port for c in constraints.clocks.values()}
    for port in graph.design.input_ports():
        if port in clock_ports:
            continue
        delay = constraints.input_delays.get(port, 0.0)
        ref = PinRef("", port)
        for direction in DIRECTIONS:
            arr = result.at(ref, direction)
            arr.offer_late(delay, constraints.default_input_slew, None)
            arr.offer_early(delay, constraints.default_input_slew, None)

    for ref in graph.topo_order:
        for edge in graph.in_edges.get(ref, []):
            if isinstance(edge, NetEdge):
                _propagate_net_edge(graph, parasitics, result, edge, si_delta,
                                    algebra)
            else:
                _propagate_cell_edge(graph, parasitics, result, edge, derates,
                                     algebra)
    return result


def _propagate_net_edge(graph, parasitics, result, edge: NetEdge,
                        si_delta, alg: TimingAlgebra = SCALAR) -> None:
    para = parasitics.extract(edge.net_name)
    pin_cap = _sink_pin_cap(graph, edge.sink)
    base_delay = para.wire_delay(edge.sink, pin_cap)
    degrade = para.slew_degradation(edge.sink, pin_cap)
    delta = si_delta.get(edge.net_name, 0.0)
    for direction in DIRECTIONS:
        if not result.has(edge.driver, direction):
            continue
        src = result.at(edge.driver, direction)
        dst = result.at(edge.sink, direction)
        if src.late > -INF:
            dst.offer_late(src.late + base_delay + delta,
                           src.slew_late + degrade, (edge, direction), alg)
        if src.early < INF:
            dst.offer_early(src.early + max(base_delay - delta, 0.0),
                            src.slew_early + degrade, (edge, direction), alg)


def _propagate_cell_edge(graph, parasitics, result, edge: CellEdge,
                         derates: Derates,
                         alg: TimingAlgebra = SCALAR) -> None:
    from repro.liberty.arcs import TimingType

    src_ref, dst_ref = edge.src, edge.dst
    load = driver_load(graph, parasitics, dst_ref)
    result.loads[dst_ref] = load
    is_clock = src_ref in graph.clock_pins
    depth = graph.data_depth.get(dst_ref, 1)
    # Useful skew: a launch flop's extra clock latency delays its Q.
    skew = 0.0
    if edge.arc.timing_type is TimingType.RISING_EDGE:
        skew = graph.constraints.clock_latency.get(edge.instance, 0.0)
    for in_dir in DIRECTIONS:
        if not result.has(src_ref, in_dir):
            continue
        src = result.at(src_ref, in_dir)
        for out_dir in edge.arc.sense.output_directions(in_dir):
            if out_dir not in edge.arc.timing:
                continue
            d_late, s_late = edge.arc.delay_and_slew(
                out_dir, src.slew_late, load
            )
            d_early, s_early = edge.arc.delay_and_slew(
                out_dir, src.slew_early, load
            )
            d_late = alg.arc_delay(edge, out_dir, src.slew_late, load,
                                   "late", d_late)
            d_early = alg.arc_delay(edge, out_dir, src.slew_early, load,
                                    "early", d_early)
            dst = result.at(dst_ref, out_dir)
            dst.offer_late(
                src.late + skew
                + d_late * derates.factor(is_clock, "late", depth,
                                          edge.instance),
                s_late,
                (edge, in_dir),
                alg,
            )
            dst.offer_early(
                src.early + skew
                + d_early * derates.factor(is_clock, "early", depth,
                                           edge.instance),
                s_early,
                (edge, in_dir),
                alg,
            )


def driver_load(graph: TimingGraph, parasitics: ParasiticExtractor,
                output_ref: PinRef) -> float:
    """Total load on an output pin: wire cap plus sink pin caps."""
    inst = graph.design.instance(output_ref.instance)
    net_name = inst.net_of(output_ref.pin)
    para = parasitics.extract(net_name)
    return para.driver_load(parasitics.pin_caps_total(net_name))


def _sink_pin_cap(graph: TimingGraph, ref: PinRef) -> float:
    if ref.is_port:
        return 2.0
    cell = graph.cell_of(ref)
    return cell.pin(ref.pin).capacitance
