"""Multi-corner multi-mode (MCMM) scenario management.

A *scenario* is one (mode constraints, library condition, BEOL corner,
temperature, derates) combination. The :class:`ScenarioSet` runs STA for
every scenario, merges per-endpoint worst slacks, and implements the
dominance-based scenario pruning that a central engineering team uses to
tame the paper's "corner super-explosion" — with the safety property that
pruning never removes a scenario unless another scenario is at least as
pessimistic at *every* endpoint (within a guard margin).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.beol.corners import BeolCorner, conventional_corners
from repro.beol.stack import BeolStack, default_stack
from repro.errors import TimingError
from repro.liberty.library import Library
from repro.netlist.design import Design, PinRef
from repro.sta.analysis import STA
from repro.sta.constraints import Constraints
from repro.sta.propagation import Derates
from repro.sta.reports import TimingReport


@dataclass
class Scenario:
    """One MCMM analysis view."""

    name: str
    library: Library
    constraints: Constraints
    beol_corner_name: str = "typ"
    temp_c: Optional[float] = None
    derates: Derates = field(default_factory=Derates)

    def run(self, design: Design, stack: BeolStack) -> TimingReport:
        corner = conventional_corners(stack)[self.beol_corner_name]
        sta = STA(
            design,
            self.library,
            self.constraints,
            stack=stack,
            beol_corner=corner,
            temp_c=self.temp_c,
            derates=self.derates,
        )
        report = sta.run()
        report.scenario = self.name
        return report


@dataclass
class McmmResult:
    """Per-scenario reports plus merged worst-slack views."""

    reports: Dict[str, TimingReport]

    def merged_wns(self, mode: str = "setup") -> float:
        return min(r.wns(mode) for r in self.reports.values())

    def merged_tns(self, mode: str = "setup") -> float:
        return min(r.tns(mode) for r in self.reports.values())

    def worst_scenario(self, mode: str = "setup") -> str:
        return min(self.reports, key=lambda n: self.reports[n].wns(mode))

    def endpoint_matrix(self, mode: str = "setup") -> Dict[PinRef, Dict[str, float]]:
        """endpoint -> {scenario: slack} (endpoints common to all runs)."""
        matrix: Dict[PinRef, Dict[str, float]] = {}
        for name, report in self.reports.items():
            for e in report.endpoints(mode):
                matrix.setdefault(e.endpoint, {})[name] = e.slack
        return {
            ep: row for ep, row in matrix.items()
            if len(row) == len(self.reports)
        }

    def merged_endpoint_slacks(self, mode: str = "setup") -> Dict[PinRef, float]:
        return {
            ep: min(row.values())
            for ep, row in self.endpoint_matrix(mode).items()
        }


class ScenarioSet:
    """A collection of scenarios with run and prune operations."""

    def __init__(self, scenarios: List[Scenario],
                 stack: Optional[BeolStack] = None):
        if not scenarios:
            raise TimingError("a scenario set needs at least one scenario")
        names = [s.name for s in scenarios]
        if len(set(names)) != len(names):
            raise TimingError("scenario names must be unique")
        self.scenarios = list(scenarios)
        self.stack = stack or default_stack()

    def run(self, design: Design, jobs: int = 1, executor: str = "thread",
            cache=None) -> McmmResult:
        """Run every scenario; ``jobs > 1`` fans out over the signoff
        scheduler's worker pool, ``cache`` (a
        :class:`repro.sta.scheduler.ScenarioResultCache`) reuses reports
        whose (netlist, constraints, corner) content is unchanged."""
        if jobs <= 1 and cache is None:
            return McmmResult(
                reports={
                    s.name: s.run(design, self.stack) for s in self.scenarios
                }
            )
        from repro.sta.scheduler import SignoffScheduler

        scheduler = SignoffScheduler(
            self.scenarios, stack=self.stack, jobs=jobs, executor=executor,
            cache=cache,
        )
        return scheduler.run(design)

    def prune(self, design: Design, guard_margin: float = 5.0,
              mode: str = "setup") -> Tuple["ScenarioSet", List[str]]:
        """Drop scenarios dominated at every endpoint by another scenario.

        Scenario A is dominated by B when, for every common endpoint,
        ``slack_B <= slack_A - guard_margin`` would be too strict — the
        safe direction is: B's slack is always at least ``guard_margin``
        *below* A's, so signing off B covers A. Returns the reduced set
        and the names of dropped scenarios.
        """
        result = self.run(design)
        matrix = result.endpoint_matrix(mode)
        if not matrix:
            return self, []
        names = [s.name for s in self.scenarios]
        dropped: List[str] = []
        for a in names:
            if a in dropped:
                continue
            for b in names:
                if a == b or b in dropped:
                    continue
                if all(
                    row[b] <= row[a] - guard_margin for row in matrix.values()
                ):
                    dropped.append(a)
                    break
        kept = [s for s in self.scenarios if s.name not in dropped]
        return ScenarioSet(kept, stack=self.stack), dropped


def standard_scenario_set(
    design_constraints: Constraints,
    library_factory,
    corners: Optional[List[Tuple[str, float, float, str]]] = None,
) -> ScenarioSet:
    """A typical signoff scenario matrix.

    ``library_factory(process, vdd, temp)`` must return a library;
    ``corners`` rows are (process, vdd, temp_c, beol_corner_name).
    The default nine-view set covers the paper's canonical worst cases:
    slow/cold/Cw (low-V gate-dominated), slow/hot/RCw, fast/cold hold, etc.
    """
    if corners is None:
        corners = [
            ("ss", 0.72, -30.0, "cw"),
            ("ss", 0.72, 125.0, "rcw"),
            ("ss", 0.72, 125.0, "cw"),
            ("tt", 0.80, 25.0, "typ"),
            ("ff", 0.88, -30.0, "cb"),
            ("ff", 0.88, -30.0, "rcb"),
            ("ff", 0.88, 125.0, "cb"),
            ("ssg", 0.72, 125.0, "cw"),
            ("ffg", 0.88, -30.0, "rcb"),
        ]
    scenarios = []
    for process, vdd, temp, beol in corners:
        lib = library_factory(process, vdd, temp)
        scenarios.append(
            Scenario(
                name=f"{process}_{int(vdd * 1000)}mv_{int(temp)}c_{beol}",
                library=lib,
                constraints=design_constraints,
                beol_corner_name=beol,
                temp_c=temp,
            )
        )
    return ScenarioSet(scenarios)
