"""Static timing analysis.

A full STA stack over the netlist + library + parasitics substrates:

- :mod:`repro.sta.graph` — pin-level timing graph with levelization;
- :mod:`repro.sta.constraints` — clocks, I/O delays, uncertainties and
  signoff margins (SDC-lite);
- :mod:`repro.sta.propagation` — early/late arrival and slew propagation
  (graph-based analysis, GBA) with flat-OCV and AOCV derating;
- :mod:`repro.sta.analysis` — the :class:`~repro.sta.analysis.STA`
  orchestrator: setup/hold/max-transition checks and reports;
- :mod:`repro.sta.pba` — path enumeration and path-based analysis (PBA)
  with path-specific slew recomputation and CPPR credit;
- :mod:`repro.sta.si` — coupling-noise delta delays;
- :mod:`repro.sta.kernel` — compiled array kernel timing every corner of
  a mode in one vectorized pass, bit-compatible with the reference;
- :mod:`repro.sta.mcmm` — multi-corner multi-mode scenario management;
- :mod:`repro.sta.scheduler` — parallel multi-corner signoff with
  content-hash result caching;
- :mod:`repro.sta.algebra` — pluggable timing-value algebras: scalar,
  canonical first-order (SSTA) and Monte-Carlo sample vectors;
- :mod:`repro.sta.ssta` — statistical STA: endpoint slack distributions,
  timing yield and post-silicon-tunable clock buffer selection;
- :mod:`repro.sta.reports` — timing reports and histograms.
"""

from repro.sta.algebra import (
    SCALAR,
    CanonicalAlgebra,
    MonteCarloAlgebra,
    ScalarAlgebra,
    TimingAlgebra,
    VariationModel,
)
from repro.sta.analysis import STA
from repro.sta.constraints import ClockSpec, Constraints
from repro.sta.propagation import Derates
from repro.sta.reports import TimingReport
from repro.sta.etm import ExtractedTimingModel, extract_etm
from repro.sta.incremental import IncrementalTimer
from repro.sta.kernel import (
    ENGINES,
    CompiledKernel,
    CornerSpec,
    KernelCompileError,
    compile_kernel,
    kernel_full_run,
)
from repro.sta.required import instance_slacks, required_times
from repro.sta.scheduler import (
    FingerprintMemo,
    ScenarioResultCache,
    SignoffOutcome,
    SignoffScheduler,
    design_fingerprint,
)
from repro.sta.ssta import (
    SstaRun,
    TuneResult,
    monte_carlo_ssta,
    run_ssta,
    tune_to_yield,
    yield_vs_tuning_range,
)

__all__ = [
    "STA",
    "SCALAR",
    "CanonicalAlgebra",
    "MonteCarloAlgebra",
    "ScalarAlgebra",
    "TimingAlgebra",
    "VariationModel",
    "SstaRun",
    "TuneResult",
    "monte_carlo_ssta",
    "run_ssta",
    "tune_to_yield",
    "yield_vs_tuning_range",
    "FingerprintMemo",
    "ClockSpec",
    "Constraints",
    "Derates",
    "TimingReport",
    "ExtractedTimingModel",
    "extract_etm",
    "IncrementalTimer",
    "ENGINES",
    "CompiledKernel",
    "CornerSpec",
    "KernelCompileError",
    "compile_kernel",
    "kernel_full_run",
    "instance_slacks",
    "required_times",
    "ScenarioResultCache",
    "SignoffOutcome",
    "SignoffScheduler",
    "design_fingerprint",
]
