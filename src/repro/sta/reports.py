"""Timing reports: endpoint results, paths, histograms and text tables."""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.netlist.design import PinRef
from repro.sta.algebra import scalar_of, sigma_of
from repro.sta.graph import TimingCheck


@dataclass
class PathPoint:
    """One pin along a reported timing path."""

    ref: PinRef
    direction: str
    arrival: float
    slew: float
    increment: float
    kind: str  # "start", "cell", "net"

    def __str__(self) -> str:
        return (
            f"{str(self.ref):<28} {self.direction:<4} "
            f"+{self.increment:7.2f} {self.arrival:9.2f} ps"
        )


@dataclass
class TimingPath:
    """A reconstructed worst path to an endpoint."""

    points: List[PathPoint]
    mode: str  # "setup" | "hold"

    @property
    def startpoint(self) -> PinRef:
        return self.points[0].ref

    @property
    def endpoint(self) -> PinRef:
        return self.points[-1].ref

    @property
    def arrival(self) -> float:
        return self.points[-1].arrival

    @property
    def stage_count(self) -> int:
        return sum(1 for p in self.points if p.kind == "cell")

    def cell_delay(self) -> float:
        return sum(p.increment for p in self.points if p.kind == "cell")

    def net_delay(self) -> float:
        return sum(p.increment for p in self.points if p.kind == "net")

    def gate_delay_fraction(self) -> float:
        """Fraction of path delay spent in cells — the gate-wire-balance
        statistic of the paper's Section 2.3."""
        total = self.cell_delay() + self.net_delay()
        if total <= 0:
            return 1.0
        return self.cell_delay() / total

    def render(self) -> str:
        lines = [f"Path ({self.mode}) {self.startpoint} -> {self.endpoint}"]
        lines += [f"  {p}" for p in self.points]
        lines.append(f"  arrival: {self.arrival:.2f} ps, "
                     f"{self.stage_count} stages, "
                     f"gate fraction {self.gate_delay_fraction():.2f}")
        return "\n".join(lines)


@dataclass
class EndpointResult:
    """Slack at one timing endpoint."""

    endpoint: PinRef
    kind: str  # "setup" | "hold" | "output"
    slack: float
    arrival: float
    required: float
    data_direction: Optional[str] = None
    check: Optional[TimingCheck] = None
    startpoint: Optional[PinRef] = None  # worst path's origin
    #: True when the worst path launches from a flop (its origin is the
    #: clock network); False when it launches from a data input port;
    #: None when unknown.
    launched_from_clock: Optional[bool] = None

    @property
    def violated(self) -> bool:
        return self.slack < 0.0

    @property
    def slack_mean(self) -> float:
        """The deterministic slack (mean of the distribution when the
        report came from a statistical algebra, the value itself for
        plain floats)."""
        return scalar_of(self.slack)

    @property
    def slack_sigma(self) -> float:
        """Slack standard deviation; 0 for scalar analyses."""
        return sigma_of(self.slack)

    @property
    def category(self) -> str:
        """Path category: reg2reg / in2reg / reg2out / in2out / unknown."""
        if self.launched_from_clock is None:
            return "unknown"
        if self.kind == "output":
            return "reg2out" if self.launched_from_clock else "in2out"
        return "reg2reg" if self.launched_from_clock else "in2reg"


@dataclass
class SlewViolation:
    """A max-transition violation at a pin."""

    ref: PinRef
    slew: float
    limit: float

    @property
    def excess(self) -> float:
        return self.slew - self.limit


@dataclass
class TimingReport:
    """The result of one STA run."""

    setup: List[EndpointResult] = field(default_factory=list)
    hold: List[EndpointResult] = field(default_factory=list)
    slew_violations: List[SlewViolation] = field(default_factory=list)
    scenario: str = ""

    def __post_init__(self):
        # Algebra values order by mean, so one sort serves every domain.
        self.setup.sort(key=lambda e: e.slack)
        self.hold.sort(key=lambda e: e.slack)

    def endpoints(self, mode: str) -> List[EndpointResult]:
        if mode == "setup":
            return self.setup
        if mode == "hold":
            return self.hold
        raise ValueError(f"bad mode {mode!r}")

    def wns(self, mode: str = "setup") -> float:
        eps = self.endpoints(mode)
        return min((e.slack for e in eps), default=math.inf)

    def tns(self, mode: str = "setup") -> float:
        return sum(min(e.slack, 0.0) for e in self.endpoints(mode))

    def violations(self, mode: str = "setup") -> List[EndpointResult]:
        return [e for e in self.endpoints(mode) if e.violated]

    def violation_count(self, mode: str = "setup") -> int:
        return len(self.violations(mode))

    def worst(self, mode: str = "setup") -> Optional[EndpointResult]:
        eps = self.endpoints(mode)
        return eps[0] if eps else None

    def slack_of(self, endpoint: PinRef, mode: str = "setup") -> float:
        for e in self.endpoints(mode):
            if e.endpoint == endpoint:
                return e.slack
        raise KeyError(f"no {mode} endpoint {endpoint}")

    # ------------------------------------------------------------------ #
    # rendering

    def summary(self) -> str:
        parts = [
            f"scenario: {self.scenario or '(default)'}",
            f"setup: WNS {self.wns('setup'):9.2f} ps, "
            f"TNS {self.tns('setup'):10.2f} ps, "
            f"{self.violation_count('setup')} violating / {len(self.setup)}",
            f"hold:  WNS {self.wns('hold'):9.2f} ps, "
            f"TNS {self.tns('hold'):10.2f} ps, "
            f"{self.violation_count('hold')} violating / {len(self.hold)}",
            f"max_transition violations: {len(self.slew_violations)}",
        ]
        return "\n".join(parts)

    def slack_histogram(self, mode: str = "setup", bins: int = 8,
                        width: int = 40) -> str:
        slacks = [e.slack for e in self.endpoints(mode)]
        if not slacks:
            return "(no endpoints)"
        lo, hi = min(slacks), max(slacks)
        if hi <= lo:
            hi = lo + 1.0
        step = (hi - lo) / bins
        counts = [0] * bins
        for s in slacks:
            idx = min(int((s - lo) / step), bins - 1)
            counts[idx] += 1
        peak = max(counts)
        lines = [f"slack histogram ({mode}, ps)"]
        for i, count in enumerate(counts):
            label = f"[{lo + i * step:8.1f}, {lo + (i + 1) * step:8.1f})"
            bar = "#" * (width * count // peak if peak else 0)
            lines.append(f"  {label} {count:5d} {bar}")
        return "\n".join(lines)

    def render_full(self) -> str:
        """A complete, deterministic text dump of the report.

        Every endpoint of every mode with fixed formatting and a stable
        ordering (slack, then endpoint name — endpoint names are unique,
        so ties cannot reorder). Two runs of the same analysis produce
        byte-identical dumps regardless of scheduling, which is what the
        parallel-signoff regression tests compare.
        """
        lines = [f"report {self.scenario or '(default)'}"]
        for mode in ("setup", "hold"):
            for e in sorted(self.endpoints(mode),
                            key=lambda r: (r.slack, str(r.endpoint))):
                lines.append(
                    f"  {mode:<6} {str(e.endpoint):<30} "
                    f"slack {e.slack:12.4f} arrival {e.arrival:12.4f} "
                    f"required {e.required:12.4f} {e.category}"
                )
        for v in sorted(self.slew_violations,
                        key=lambda s: (s.excess, str(s.ref))):
            lines.append(
                f"  slew   {str(v.ref):<30} "
                f"slew {v.slew:12.4f} limit {v.limit:12.4f}"
            )
        return "\n".join(lines)

    def content_digest(self) -> str:
        """SHA-256 of the full rendered report.

        Two reports with identical timing content share a digest; any
        mutation of any endpoint changes it. The scenario result cache
        uses this to detect in-place corruption of cached reports
        (``ScenarioResultCache(verify=True)``): the digest is taken at
        store time and re-checked at lookup time.
        """
        return hashlib.sha256(self.render_full().encode()).hexdigest()

    def violation_breakdown(self, mode: str = "setup") -> Dict[str, int]:
        """Fig 1's 'breakdown of timing failures': violating endpoints
        classified by path category (reg2reg / in2reg / reg2out / in2out),
        plus ``slew`` violations as their own bucket."""
        breakdown: Dict[str, int] = {}
        for e in self.violations(mode):
            key = e.category
            breakdown[key] = breakdown.get(key, 0) + 1
        if mode == "setup" and self.slew_violations:
            breakdown["slew"] = len(self.slew_violations)
        return breakdown

    def table(self, mode: str = "setup", limit: int = 10) -> str:
        lines = [f"{'endpoint':<30} {'slack':>9} {'arrival':>9} {'required':>9}"]
        for e in self.endpoints(mode)[:limit]:
            lines.append(
                f"{str(e.endpoint):<30} {e.slack:9.2f} {e.arrival:9.2f} "
                f"{e.required:9.2f}"
            )
        return "\n".join(lines)
