"""The STA orchestrator.

:class:`STA` wires together graph construction, parasitic extraction,
arrival propagation and the constraint checks, and produces a
:class:`repro.sta.reports.TimingReport`. It also reconstructs worst paths
(for reporting, PBA and the closure loop's fix targeting).

Setup check (rising-edge flop, launch at cycle 0, capture at cycle 1)::

    slack = (T + clk_early(CK)) - setup(dslew, cslew)
            - uncertainty_setup - flat_margin - data_late(D)

Hold check (same-edge)::

    slack = data_early(D) - clk_late(CK) - hold(dslew, cslew)
            - uncertainty_hold - flat_margin
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.beol.corners import BeolCorner, conventional_corners
from repro.beol.stack import BeolStack, default_stack
from repro.errors import TimingError
from repro.liberty.library import Library
from repro.netlist.design import Design, PinRef
from repro.parasitics.synthesis import ParasiticExtractor
from repro.sta.algebra import SCALAR, TimingAlgebra
from repro.sta.constraints import Constraints
from repro.sta.graph import CellEdge, NetEdge, TimingCheck, TimingGraph
from repro.sta.propagation import (
    DIRECTIONS,
    Derates,
    PropagationResult,
    propagate,
)
from repro.sta.reports import (
    EndpointResult,
    PathPoint,
    SlewViolation,
    TimingPath,
    TimingReport,
)


class STA:
    """One static timing analysis run (one scenario)."""

    def __init__(
        self,
        design: Design,
        library: Library,
        constraints: Constraints,
        stack: Optional[BeolStack] = None,
        beol_corner: Optional[BeolCorner] = None,
        temp_c: Optional[float] = None,
        derates: Optional[Derates] = None,
        si_enabled: bool = False,
        parasitics: Optional[ParasiticExtractor] = None,
        algebra: Optional[TimingAlgebra] = None,
    ):
        self.design = design
        self.library = library
        self.constraints = constraints
        #: The timing-value algebra arrivals/required/slacks live in.
        #: Scalar floats by default; a statistical algebra turns the same
        #: engine into SSTA (:mod:`repro.sta.ssta`).
        self.algebra = algebra or SCALAR
        self.stack = stack or default_stack()
        self.temp_c = temp_c if temp_c is not None else library.temp_c
        self.beol_corner = beol_corner or conventional_corners(self.stack)["typ"]
        self.derates = derates or Derates()
        self.si_enabled = si_enabled
        design.bind(library)
        self.parasitics = parasitics or ParasiticExtractor(
            design, library, self.stack, self.beol_corner, temp_c=self.temp_c
        )
        self.graph = TimingGraph(design, library, constraints)
        self.prop: Optional[PropagationResult] = None
        #: The report of the last full :meth:`run` (None before the first
        #: run). Consumers that only need the completed run's endpoints —
        #: the ETM extractor, the scenario timer pool — read this instead
        #: of paying a second full analysis.
        self.report: Optional[TimingReport] = None
        #: Per-net coupling deltas of the last :meth:`run` (None when SI
        #: is off). The incremental timer reuses these for nets outside
        #: an edit's electrical neighbourhood instead of dropping them.
        self.si_delta: Optional[Dict[str, float]] = None

    # ------------------------------------------------------------------ #

    def run(self) -> TimingReport:
        """Propagate arrivals and evaluate every check."""
        si_delta = None
        if self.si_enabled:
            from repro.sta.si import coupling_deltas

            si_delta = coupling_deltas(self.graph, self.parasitics)
        self.si_delta = si_delta
        self.prop = propagate(self.graph, self.parasitics, self.derates,
                              si_delta=si_delta, algebra=self.algebra)
        report = TimingReport(
            setup=self._setup_endpoints() + self._output_endpoints(),
            hold=self._hold_endpoints(),
            slew_violations=self._slew_violations(),
            scenario=self.library.name,
        )
        self.report = report
        return report

    # ------------------------------------------------------------------ #
    # checks

    def _clock_at(self, ref: PinRef) -> Tuple[float, float, float]:
        """(early, late, slew) of the rising clock at a CK pin."""
        arr = self.prop.at(ref, "rise")
        if not arr.valid:
            raise TimingError(f"no clock arrival at {ref}; is the clock tied?")
        return arr.early, arr.late, arr.slew_late

    def _origin(self, ref: PinRef, direction: str, mode: str) -> PinRef:
        """Startpoint of the worst late/early path into (ref, direction)."""
        cur, cur_dir = ref, direction
        guard = 0
        while True:
            guard += 1
            if guard > 100000:
                raise TimingError("origin walk did not terminate")
            arr = self.prop.at(cur, cur_dir)
            pred = arr.pred_late if mode == "late" else arr.pred_early
            if pred is None:
                return cur
            edge, src_dir = pred
            cur = edge.driver if isinstance(edge, NetEdge) else edge.src
            cur_dir = src_dir

    def _annotate_origin(self, result: EndpointResult, mode: str) -> None:
        origin = self._origin(result.endpoint, result.data_direction, mode)
        result.startpoint = origin
        result.launched_from_clock = origin in self.graph.clock_pins

    def _clock_of_check(self, check: TimingCheck):
        """The :class:`ClockSpec` governing a check's capture pin.

        Single-clock constraint sets short-circuit to ``the_clock()``
        (no graph walk). With multiple clocks the capture clock is found
        by walking the CK pin's late backpointers to the clock root and
        matching that root against the defined clock ports. Returns None
        when the root is not a constrained clock port. Deliberately
        stateless: :class:`~repro.sta.kernel.CornerView` reuses the
        endpoint methods without running ``STA.__init__``.
        """
        clocks = self.constraints.clocks
        if len(clocks) == 1:
            return self.constraints.the_clock()
        origin = self._origin(check.clock_pin, "rise", "late")
        if not origin.is_port:
            return None
        return self.constraints.clock_for_port(origin.pin)

    def _setup_endpoints(self) -> List[EndpointResult]:
        out = []
        if not self.constraints.clocks:
            return out
        for check in self.graph.setup_checks():
            clk_early, _, clk_slew = self._clock_at(check.clock_pin)
            clock = self._clock_of_check(check)
            if clock is None:
                raise TimingError(
                    f"cannot resolve the capture clock of {check.data_pin}"
                )
            clk_early += self.constraints.clock_latency.get(check.instance, 0.0)
            best: Optional[EndpointResult] = None
            for direction in DIRECTIONS:
                if not self.prop.has(check.data_pin, direction):
                    continue
                arr = self.prop.at(check.data_pin, direction)
                setup = check.arc.constraint_value(
                    direction, arr.slew_late, clk_slew
                )
                required = (
                    clock.period
                    + clk_early
                    - setup
                    - clock.uncertainty_setup
                    - self.constraints.flat_setup_margin
                )
                slack = required - arr.late
                if best is None or slack < best.slack:
                    best = EndpointResult(
                        endpoint=check.data_pin,
                        kind="setup",
                        slack=slack,
                        arrival=arr.late,
                        required=required,
                        data_direction=direction,
                        check=check,
                    )
            if best is not None:
                self._annotate_origin(best, "late")
                out.append(best)
        return out

    def _hold_endpoints(self) -> List[EndpointResult]:
        out = []
        if not self.constraints.clocks:
            return out
        for check in self.graph.hold_checks():
            _, clk_late, clk_slew = self._clock_at(check.clock_pin)
            clock = self._clock_of_check(check)
            if clock is None:
                raise TimingError(
                    f"cannot resolve the capture clock of {check.data_pin}"
                )
            clk_late += self.constraints.clock_latency.get(check.instance, 0.0)
            best: Optional[EndpointResult] = None
            for direction in DIRECTIONS:
                if not self.prop.has(check.data_pin, direction):
                    continue
                arr = self.prop.at(check.data_pin, direction)
                hold = check.arc.constraint_value(
                    direction, arr.slew_early, clk_slew
                )
                required = (
                    clk_late
                    + hold
                    + clock.uncertainty_hold
                    + self.constraints.flat_hold_margin
                )
                slack = arr.early - required
                if best is None or slack < best.slack:
                    best = EndpointResult(
                        endpoint=check.data_pin,
                        kind="hold",
                        slack=slack,
                        arrival=arr.early,
                        required=required,
                        data_direction=direction,
                        check=check,
                    )
            if best is not None:
                self._annotate_origin(best, "early")
                out.append(best)
        return out

    def _output_endpoints(self) -> List[EndpointResult]:
        out = []
        if not self.constraints.clocks:
            return out
        clock = self.constraints.primary_clock()
        for ref in self.graph.output_port_refs():
            direction, late = self.prop.worst_late(ref)
            if direction is None:
                continue
            required = (
                clock.period
                - self.constraints.output_delays.get(ref.pin, 0.0)
                - clock.uncertainty_setup
            )
            result = EndpointResult(
                endpoint=ref,
                kind="output",
                slack=required - late,
                arrival=late,
                required=required,
                data_direction=direction,
            )
            self._annotate_origin(result, "late")
            out.append(result)
        return out

    def _slew_violations(self) -> List[SlewViolation]:
        default = self.constraints.max_transition or \
            self.library.default_max_transition
        out = []
        for ref in self.graph.topo_order:
            if ref.is_port:
                continue
            pin = self.graph.cell_of(ref).pin(ref.pin)
            limit = pin.max_transition or default
            worst = 0.0
            for direction in DIRECTIONS:
                if self.prop.has(ref, direction):
                    worst = max(worst, self.prop.at(ref, direction).slew_late)
            if worst > limit:
                out.append(SlewViolation(ref=ref, slew=worst, limit=limit))
        return out

    # ------------------------------------------------------------------ #
    # path reconstruction

    def worst_path(self, endpoint: EndpointResult) -> TimingPath:
        """Reconstruct the worst path into an endpoint via backpointers."""
        if self.prop is None:
            raise TimingError("run() must be called before worst_path()")
        mode = "hold" if endpoint.kind == "hold" else "setup"
        return self.path_to(endpoint.endpoint, endpoint.data_direction, mode)

    def path_to(self, ref: PinRef, direction: str, mode: str) -> TimingPath:
        """The worst late (setup) or early (hold) path into (ref, dir)."""
        if self.prop is None:
            raise TimingError("run() must be called before path_to()")
        chain: List[Tuple[PinRef, str]] = []
        edges: List[Optional[object]] = []
        cur, cur_dir = ref, direction
        guard = 0
        while True:
            guard += 1
            if guard > 100000:
                raise TimingError("path reconstruction did not terminate")
            arr = self.prop.at(cur, cur_dir)
            pred = arr.pred_late if mode == "setup" else arr.pred_early
            chain.append((cur, cur_dir))
            edges.append(pred)
            if pred is None:
                break
            edge, src_dir = pred
            cur = edge.driver if isinstance(edge, NetEdge) else edge.src
            cur_dir = src_dir
        chain.reverse()
        edges.reverse()

        points: List[PathPoint] = []
        prev_time: Optional[float] = None
        for (node, node_dir), pred in zip(chain, edges[1:] + [None]):
            arr = self.prop.at(node, node_dir)
            time = arr.late if mode == "setup" else arr.early
            slew = arr.slew_late if mode == "setup" else arr.slew_early
            incr = 0.0 if prev_time is None else time - prev_time
            incoming = None
            if points:
                incoming = edges[len(points)]
            kind = "start"
            if incoming is not None:
                kind = "net" if isinstance(incoming[0], NetEdge) else "cell"
            points.append(
                PathPoint(ref=node, direction=node_dir, arrival=time,
                          slew=slew, increment=incr, kind=kind)
            )
            prev_time = time
        return TimingPath(points=points, mode=mode)
