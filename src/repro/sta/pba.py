"""Path-based analysis (PBA).

Graph-based analysis merges worst slews at every pin, so a path whose own
slews are benign inherits pessimistic delays from its neighbours. PBA
re-propagates each enumerated path with its *own* slews and applies CPPR
credit — the pessimism-reduction the paper's Section 1.3 describes as
having crept, expensively, ever earlier into the flow.

Invariant (tested): PBA slack >= GBA slack for every endpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import TimingError
from repro.netlist.design import PinRef
from repro.sta.algebra import SCALAR
from repro.sta.cppr import endpoint_cppr_credit
from repro.sta.graph import CellEdge, NetEdge
from repro.sta.propagation import driver_load
from repro.sta.reports import EndpointResult

#: An enumerated path: list of (edge, src_direction, dst_direction),
#: ordered from startpoint to endpoint.
PathEdges = List[Tuple[object, str, str]]


@dataclass
class PbaEndpointResult:
    """GBA-vs-PBA comparison at one endpoint."""

    endpoint: PinRef
    gba_slack: float
    pba_slack: float
    cppr_credit: float
    paths_analyzed: int

    @property
    def pessimism_recovered(self) -> float:
        return self.pba_slack - self.gba_slack


def enumerate_paths(
    sta,
    ref: PinRef,
    direction: str,
    mode: str = "setup",
    max_paths: int = 64,
) -> Iterator[PathEdges]:
    """Enumerate distinct paths into (ref, direction), worst-ish first.

    Depth-first backward walk over in-edges whose source arrivals are
    valid; bounded by ``max_paths``.
    """
    if sta.prop is None:
        raise TimingError("run() must be called before path enumeration")
    prop = sta.prop
    yielded = 0

    def walk(node: PinRef, node_dir: str) -> Iterator[PathEdges]:
        in_edges = sta.graph.in_edges.get(node, [])
        if not in_edges:
            yield []
            return
        candidates: List[Tuple[float, object, str]] = []
        for edge in in_edges:
            if isinstance(edge, NetEdge):
                src, src_dirs = edge.driver, (node_dir,)
            else:
                src = edge.src
                if node_dir not in edge.arc.timing:
                    continue
                src_dirs = edge.arc.sense.input_direction_for(node_dir)
            for src_dir in src_dirs:
                if prop.has(src, src_dir):
                    arr = prop.at(src, src_dir)
                    key = arr.late if mode == "setup" else -arr.early
                    candidates.append((key, edge, src_dir))
        if not candidates:
            yield []
            return
        candidates.sort(key=lambda t: -t[0])
        for _, edge, src_dir in candidates:
            src = edge.driver if isinstance(edge, NetEdge) else edge.src
            for prefix in walk(src, src_dir):
                yield prefix + [(edge, src_dir, node_dir)]

    for path in walk(ref, direction):
        yield path
        yielded += 1
        if yielded >= max_paths:
            return


def pba_arrival(sta, path: PathEdges, endpoint_ref: PinRef) -> Tuple[float, float]:
    """Re-propagate one path with path-specific slews.

    Returns (arrival, final slew) at the endpoint, in late mode with the
    same derates as the GBA run.
    """
    constraints = sta.constraints
    if not path:
        _, late = sta.prop.worst_late(endpoint_ref)
        return late, constraints.default_input_slew

    first_edge, first_dir, _ = path[0]
    start = (first_edge.driver if isinstance(first_edge, NetEdge)
             else first_edge.src)
    clock = constraints.clock_for_port(start.pin) if start.is_port else None
    if clock is not None:
        time, slew = clock.source_latency, clock.slew
    elif start.is_port:
        time = constraints.input_delays.get(start.pin, 0.0)
        slew = constraints.default_input_slew
    else:
        time, slew = 0.0, constraints.default_input_slew

    for edge, src_dir, dst_dir in path:
        if isinstance(edge, NetEdge):
            para = sta.parasitics.extract(edge.net_name)
            pin_cap = _pin_cap(sta, edge.sink)
            time += para.wire_delay(edge.sink, pin_cap)
            slew += para.slew_degradation(edge.sink, pin_cap)
        else:
            load = driver_load(sta.graph, sta.parasitics, edge.dst)
            delay, out_slew = edge.arc.delay_and_slew(dst_dir, slew, load)
            alg = getattr(sta, "algebra", SCALAR)
            delay = alg.arc_delay(edge, dst_dir, slew, load, "late", delay)
            is_clock = edge.src in sta.graph.clock_pins
            depth = sta.graph.data_depth.get(edge.dst, 1)
            time = time + delay * sta.derates.factor(is_clock, "late", depth,
                                                     edge.instance)
            slew = out_slew
    return time, slew


def analyze_endpoint(
    sta,
    endpoint: EndpointResult,
    max_paths: int = 64,
) -> PbaEndpointResult:
    """PBA slack at one setup endpoint (worst over enumerated paths).

    The PBA slack applies path-specific slews *and* CPPR credit; it can
    only improve on (or match) GBA.
    """
    if endpoint.kind == "hold":
        raise TimingError("PBA implemented for setup/output endpoints")
    credit = endpoint_cppr_credit(sta, endpoint)
    worst_pba: Optional[float] = None
    count = 0
    for path in enumerate_paths(sta, endpoint.endpoint,
                                endpoint.data_direction, "setup", max_paths):
        arrival, slew = pba_arrival(sta, path, endpoint.endpoint)
        required = endpoint.required
        if endpoint.check is not None:
            clk_slew = sta.prop.at(endpoint.check.clock_pin, "rise").slew_late
            clock = sta.constraints.the_clock()
            setup = endpoint.check.arc.constraint_value(
                endpoint.data_direction, slew, clk_slew
            )
            clk_early = sta.prop.at(endpoint.check.clock_pin, "rise").early
            required = (
                clock.period + clk_early - setup
                - clock.uncertainty_setup
                - sta.constraints.flat_setup_margin
            )
        slack = required - arrival + credit
        count += 1
        if worst_pba is None or slack < worst_pba:
            worst_pba = slack
    if worst_pba is None:
        worst_pba = endpoint.slack + credit
    # Enumeration order is heuristic; with a bounded path budget the true
    # worst path may be missed, so never report better-than-GBA by error:
    # PBA >= GBA always holds per-path, so clamp from below.
    worst_pba = getattr(sta, "algebra", SCALAR).max(worst_pba, endpoint.slack)
    return PbaEndpointResult(
        endpoint=endpoint.endpoint,
        gba_slack=endpoint.slack,
        pba_slack=worst_pba,
        cppr_credit=credit,
        paths_analyzed=count,
    )


def gba_vs_pba(sta, report, n_endpoints: int = 10,
               max_paths: int = 64) -> List[PbaEndpointResult]:
    """PBA the N worst setup endpoints of a report."""
    out = []
    for endpoint in report.endpoints("setup")[:n_endpoints]:
        out.append(analyze_endpoint(sta, endpoint, max_paths=max_paths))
    return out


def _pin_cap(sta, ref: PinRef) -> float:
    if ref.is_port:
        return 2.0
    return sta.graph.cell_of(ref).pin(ref.pin).capacitance
