"""Exception hierarchy for the repro timing-closure framework.

All library errors derive from :class:`ReproError` so callers can catch a
single base class. Subclasses indicate which subsystem raised the error.

Errors are *structured*: every :class:`ReproError` accepts keyword
context (``scenario=...``, ``attempt=...``, ``fingerprint=...``) that is
preserved on the exception object and rendered into its message. The
fault-tolerant runtime (:mod:`repro.runtime`) relies on this to report a
quarantined scenario with enough forensic detail to reproduce the
failure without the original traceback.
"""

from __future__ import annotations

from typing import Any, Dict


class ReproError(Exception):
    """Base class for all errors raised by the repro package.

    Args:
        message: human-readable description.
        **context: structured key/value forensic context (scenario name,
            content fingerprint, attempt number, ...). Rendered into
            ``str(error)`` and preserved in :attr:`context`.
    """

    def __init__(self, message: str = "", **context: Any):
        self.message = message
        self.context: Dict[str, Any] = dict(context)
        super().__init__(message)

    def __str__(self) -> str:
        if not self.context:
            return self.message
        detail = ", ".join(
            f"{key}={self.context[key]!r}" for key in sorted(self.context)
        )
        return f"{self.message} [{detail}]"

    def with_context(self, **context: Any) -> "ReproError":
        """Attach additional forensic context in place; returns self."""
        self.context.update(context)
        return self


class SimulationError(ReproError):
    """Raised when the analytical circuit simulator cannot run or converge."""


class NetlistError(ReproError):
    """Raised on malformed netlist construction or lookup failures."""


class LibraryError(ReproError):
    """Raised on library/table construction or lookup failures."""


class TimingError(ReproError):
    """Raised by the STA engine (graph construction, propagation, reporting)."""


class ConstraintError(ReproError):
    """Raised on invalid or inconsistent timing constraints."""


class CornerError(ReproError):
    """Raised by BEOL/PVT corner definition and algebra."""


class PlacementError(ReproError):
    """Raised by the placement substrate (rows, legalization, MinIA)."""


class ClosureError(ReproError):
    """Raised by the timing-closure loop and fix engines."""


class SignoffError(ReproError):
    """Raised by the signoff-criteria engine."""


class CampaignError(ReproError):
    """Raised by the campaign engine: malformed specs, unrunnable
    configurations, or a results store that cannot be opened."""


# ---------------------------------------------------------------------- #
# validation


class ValidationError(ReproError):
    """Raised by the pre-run lint pass (:mod:`repro.validate`).

    Carries the full list of :class:`repro.validate.ValidationIssue`
    objects on :attr:`issues` so callers can render or triage them.
    """

    def __init__(self, message: str = "", issues=None, **context: Any):
        super().__init__(message, **context)
        self.issues = list(issues or [])


# ---------------------------------------------------------------------- #
# supervised execution runtime


class ExecutionError(ReproError):
    """Base class for supervised-runtime failures (:mod:`repro.runtime`)."""


class WorkerCrashError(ExecutionError):
    """A worker raised (or died) while evaluating one task attempt."""


class WorkerTimeoutError(ExecutionError):
    """A task attempt exceeded its per-attempt wall-clock budget."""


class ExecutorBrokenError(ExecutionError):
    """The worker pool itself died (e.g. a process pool lost a child).

    The supervisor treats this as an infrastructure failure rather than a
    task failure: it falls back to the next executor flavor
    (process -> thread -> serial) without charging any task an attempt.
    """


class TaskDegradedError(ExecutionError):
    """A task exhausted every retry attempt and was quarantined.

    Context carries ``task``, ``attempts`` and the final underlying
    error; raised to the caller only when supervision runs with
    ``keep_going=False``.
    """


class InjectedFaultError(WorkerCrashError):
    """A deterministic fault from :mod:`repro.testing.faults` fired.

    Subclassing :class:`WorkerCrashError` means the supervisor handles an
    injected crash exactly like a real one — the chaos suite exercises
    the production recovery paths, not special-cased test paths.
    """


class CheckpointError(ReproError):
    """Raised by the journal-based checkpoint/resume layer."""


# ---------------------------------------------------------------------- #
# signoff-as-a-service (:mod:`repro.serve`)


class ServeError(ReproError):
    """Base class for timing-daemon failures (:mod:`repro.serve`).

    Every serve error carries a stable wire ``code`` (``E_*``) and a
    ``retryable`` flag so clients can triage without string matching:
    retryable errors (shed under load, missed deadline, daemon gone)
    are safe to resubmit; non-retryable ones (bad request, quarantined
    session) will fail the same way again.
    """

    code = "E_INTERNAL"
    retryable = False

    def to_wire(self) -> Dict[str, Any]:
        """The structured error object sent on the wire."""
        return {
            "code": self.code,
            "message": self.message,
            "retryable": self.retryable,
            "context": {k: repr(v) for k, v in sorted(self.context.items())},
        }


class ProtocolError(ServeError):
    """A request line violated the NDJSON protocol (unparseable JSON,
    missing fields, oversized frame)."""

    code = "E_BAD_REQUEST"
    retryable = False


class AdmissionShedError(ServeError):
    """The bounded admission queue was full and the request was shed.

    This is load-shedding backpressure, not failure: the request was
    never admitted, so resubmitting after a backoff is always safe.
    """

    code = "E_OVERLOADED"
    retryable = True


class DeadlineExceededError(ServeError):
    """A request exhausted its per-request deadline (including retries)."""

    code = "E_DEADLINE"
    retryable = True


class SessionQuarantinedError(ServeError):
    """The target session was quarantined after a worker crash.

    Not retryable on the *same* session — its overlay state is suspect —
    but the daemon stays up and a fresh session works.
    """

    code = "E_QUARANTINED"
    retryable = False


class SessionNotFoundError(ServeError):
    """The request named a session the daemon does not know."""

    code = "E_NO_SESSION"
    retryable = False


class DaemonUnavailableError(ServeError):
    """Client-side transport failure: connection refused, reset, EOF or
    socket timeout. The daemon may have been killed mid-request; the
    request is safe to resubmit once it is back."""

    code = "E_UNAVAILABLE"
    retryable = True
