"""Exception hierarchy for the repro timing-closure framework.

All library errors derive from :class:`ReproError` so callers can catch a
single base class. Subclasses indicate which subsystem raised the error.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SimulationError(ReproError):
    """Raised when the analytical circuit simulator cannot run or converge."""


class NetlistError(ReproError):
    """Raised on malformed netlist construction or lookup failures."""


class LibraryError(ReproError):
    """Raised on library/table construction or lookup failures."""


class TimingError(ReproError):
    """Raised by the STA engine (graph construction, propagation, reporting)."""


class ConstraintError(ReproError):
    """Raised on invalid or inconsistent timing constraints."""


class CornerError(ReproError):
    """Raised by BEOL/PVT corner definition and algebra."""


class PlacementError(ReproError):
    """Raised by the placement substrate (rows, legalization, MinIA)."""


class ClosureError(ReproError):
    """Raised by the timing-closure loop and fix engines."""


class SignoffError(ReproError):
    """Raised by the signoff-criteria engine."""
