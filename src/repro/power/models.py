"""Design-level power estimation.

Leakage comes from per-cell library values (already voltage/temperature/
flavor-dependent); dynamic power is the canonical ``alpha * C * V^2 * f``
over every net's switched capacitance. Units follow the framework
conventions: mW, fF, V, and clock period in ps (so ``f = 1/period`` is in
1/ps and ``C * V^2 / period`` lands in mW directly: fF*V^2/ps = mW).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.beol.corners import BeolCorner, conventional_corners
from repro.beol.stack import BeolStack, default_stack
from repro.errors import ReproError
from repro.liberty.library import Library
from repro.netlist.design import Design
from repro.parasitics.synthesis import ParasiticExtractor

DEFAULT_ACTIVITY = 0.15


@dataclass
class PowerReport:
    """Design power breakdown, mW."""

    leakage: float
    dynamic: float

    @property
    def total(self) -> float:
        return self.leakage + self.dynamic

    def __str__(self) -> str:
        return (
            f"power: total {self.total:.4g} mW "
            f"(leakage {self.leakage:.4g}, dynamic {self.dynamic:.4g})"
        )


def dynamic_power(
    design: Design,
    library: Library,
    parasitics: ParasiticExtractor,
    period: float,
    activity: float = DEFAULT_ACTIVITY,
    vdd: Optional[float] = None,
) -> float:
    """Switching power: activity-weighted C*V^2*f over all nets."""
    if period <= 0:
        raise ReproError("period must be positive")
    v = vdd if vdd is not None else library.vdd
    total_cap = 0.0
    for net in design.nets.values():
        if net.driver is None:
            continue
        para = parasitics.extract(net.name)
        total_cap += para.wire_cap + parasitics.pin_caps_total(net.name)
    return activity * total_cap * v * v / period


def design_power(
    design: Design,
    library: Library,
    parasitics: ParasiticExtractor,
    period: float,
    activity: float = DEFAULT_ACTIVITY,
    vdd: Optional[float] = None,
    voltage_scale_leakage: bool = True,
) -> PowerReport:
    """Full power report at an operating point.

    When ``vdd`` differs from the library's characterized voltage and
    ``voltage_scale_leakage`` is set, leakage is scaled linearly in V
    (the dominant first-order dependence; the exponential DIBL component
    is folded into the library's own voltage conditions).
    """
    leakage = design.total_leakage(library)
    if vdd is not None and voltage_scale_leakage and library.vdd > 0:
        leakage *= vdd / library.vdd
    return PowerReport(
        leakage=leakage,
        dynamic=dynamic_power(design, library, parasitics, period,
                              activity=activity, vdd=vdd),
    )


@dataclass
class PowerAreaSummary:
    """Design-level power/area rollup: the campaign's Pareto axes."""

    design: str
    library: str
    period: float
    power: PowerReport
    area: float  # total cell area, um^2
    cells: int

    @property
    def total_power(self) -> float:
        return self.power.total

    def render(self) -> str:
        return (
            f"{self.design} @ {self.library} ({self.cells} cells): "
            f"power {self.power.total:.4g} mW "
            f"(leakage {self.power.leakage:.4g}, "
            f"dynamic {self.power.dynamic:.4g}), "
            f"area {self.area:.1f} um^2 at {self.period:.0f} ps"
        )


def power_area_summary(
    design: Design,
    library: Library,
    period: float,
    stack: Optional[BeolStack] = None,
    beol_corner: Optional[BeolCorner] = None,
    activity: float = DEFAULT_ACTIVITY,
    vdd: Optional[float] = None,
) -> PowerAreaSummary:
    """One-call rollup of dynamic + leakage power and total cell area.

    Synthesizes its own parasitics (typ BEOL corner unless given), so a
    campaign worker can score a candidate design in one line without
    plumbing extractor objects around. The design does not need to be
    bound: leakage and area come from per-cell library values, dynamic
    power from net fanout-synthesized wire plus pin caps.
    """
    stack = stack or default_stack()
    corner = beol_corner or conventional_corners(stack)["typ"]
    extractor = ParasiticExtractor(design, library, stack, corner)
    return PowerAreaSummary(
        design=design.name,
        library=library.name,
        period=period,
        power=design_power(design, library, extractor, period,
                           activity=activity, vdd=vdd),
        area=design.total_area(library),
        cells=len(design.instances),
    )
