"""Power models: leakage rollups and switching (dynamic) power."""

from repro.power.models import (
    PowerAreaSummary,
    PowerReport,
    design_power,
    dynamic_power,
    power_area_summary,
)

__all__ = [
    "PowerAreaSummary",
    "PowerReport",
    "design_power",
    "dynamic_power",
    "power_area_summary",
]
