"""Power models: leakage rollups and switching (dynamic) power."""

from repro.power.models import PowerReport, design_power, dynamic_power

__all__ = ["PowerReport", "design_power", "dynamic_power"]
