"""Command-line interface.

Usage (after ``pip install -e .``)::

    python -m repro sta      --design rand --period 500
    python -m repro signoff  --design rand --period 500 --jobs 4 \\
                             --retries 2 --timeout 120 \\
                             --checkpoint run.journal --keep-going
    python -m repro signoff  --design rand --period 500 \\
                             --checkpoint run.journal --resume
    python -m repro signoff  --hier --blocks 3 --period 900 \\
                             --jobs 2 --executor process
    python -m repro validate --design rand --period 500
    python -m repro closure  --design c5315 --period 430
    python -m repro library  --process ss --vdd 0.72 --temp 125 -o ss.lib
    python -m repro etm      --design rand --period 500
    python -m repro corners  --modes 6 --domains 4
    python -m repro history
    python -m repro closure  --design aes --period 1240 \\
                             --trace closure.trace.json
    python -m repro trace summarize closure.trace.json

Designs are the synthetic generators (``rand``, ``c5315``, ``c7552``,
``aes``, ``mpeg2``, ``tiny``); libraries come from the analytic factory
at the requested PVT condition.

Exit codes distinguish outcomes so schedulers and CI can triage without
parsing output: 0 = clean; 1 = timing (or validation) violations found;
3 = signoff completed but with quarantined DEGRADED scenarios;
4 = run failed (structured :class:`~repro.errors.ReproError` — printed
as a one-line ``error:`` message, never a traceback). argparse keeps its
conventional 2 for usage errors.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys
from typing import Callable, Dict, List, Optional

from repro.errors import ReproError, ValidationError
from repro.liberty import LibraryCondition, make_library
from repro.liberty.io import write_library
from repro.netlist.design import Design
from repro.netlist.generators import (
    aes_like,
    c5315_like,
    c7552_like,
    mpeg2_like,
    random_logic,
    tiny_design,
)

EXIT_CLEAN = 0
EXIT_VIOLATIONS = 1
EXIT_DEGRADED = 3
EXIT_FATAL = 4

_DESIGNS: Dict[str, Callable[..., Design]] = {
    "tiny": lambda seed, gates: tiny_design(),
    "rand": lambda seed, gates: random_logic(
        n_gates=gates, n_levels=max(4, gates // 30), seed=seed
    ),
    "c5315": lambda seed, gates: c5315_like(seed=seed, scale=gates / 2307.0),
    "c7552": lambda seed, gates: c7552_like(seed=seed, scale=gates / 3512.0),
    "aes": lambda seed, gates: aes_like(
        seed=seed, n_sboxes=max(2, gates // 60)
    ),
    "mpeg2": lambda seed, gates: mpeg2_like(
        seed=seed, lanes=max(1, gates // 120)
    ),
}


def _add_library_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--process", default="tt",
                        help="process corner (tt/ss/ff/ssg/ffg/fsg/sfg)")
    parser.add_argument("--vdd", type=float, default=0.8, help="supply, V")
    parser.add_argument("--temp", type=float, default=25.0,
                        help="temperature, C")
    parser.add_argument("--aging-mv", type=float, default=0.0,
                        help="BTI aging shift, mV")


def _add_design_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--design", default="rand",
                        choices=sorted(_DESIGNS), help="synthetic design")
    parser.add_argument("--gates", type=int, default=200,
                        help="approximate gate count")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--period", type=float, default=500.0,
                        help="clock period, ps")
    parser.add_argument("--input-delay", type=float, default=60.0,
                        help="input arrival after clock, ps")


def _make_library(args):
    return make_library(
        LibraryCondition(
            process=args.process,
            vdd=args.vdd,
            temp_c=args.temp,
            vt_shift_aging=args.aging_mv / 1000.0,
        )
    )


def _make_setup(args):
    from repro.sta import Constraints

    design = _DESIGNS[args.design](args.seed, args.gates)
    constraints = Constraints.single_clock(args.period)
    constraints.input_delays = {
        p: args.input_delay for p in design.input_ports() if p != "clk"
    }
    return design, _make_library(args), constraints


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", metavar="FILE", default=None,
                        help="record hierarchical spans and write a "
                             "Chrome-trace JSON (chrome://tracing, "
                             "Perfetto, or `repro trace summarize`)")
    parser.add_argument("--metrics", metavar="FILE", default=None,
                        help="record counters/gauges/histograms and "
                             "write a metrics snapshot JSON")


@contextlib.contextmanager
def _obs_session(args):
    """Arm tracing/metrics for ``--trace`` / ``--metrics``.

    Exports are written on the way out even when the run aborts, so a
    failed closure still leaves its partial trace behind.
    """
    from repro.obs import export, metrics, tracing

    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics", None)
    if not trace_path and not metrics_path:
        yield
        return
    tracer = tracing.Tracer() if trace_path else None
    registry = metrics.MetricsRegistry() if metrics_path else None
    try:
        with contextlib.ExitStack() as stack:
            if tracer is not None:
                stack.enter_context(tracing.use(tracer))
            if registry is not None:
                stack.enter_context(metrics.use(registry))
            yield
    finally:
        if tracer is not None:
            export.write_chrome_trace(trace_path, tracer.spans())
            print(f"trace: wrote {len(tracer)} span(s) to {trace_path}",
                  file=sys.stderr)
        if registry is not None:
            registry.write_json(metrics_path)
            print(f"metrics: wrote snapshot to {metrics_path}",
                  file=sys.stderr)


# ---------------------------------------------------------------------- #
# subcommands


def _cmd_sta(args) -> int:
    from repro.sta import STA

    design, library, constraints = _make_setup(args)
    sta = STA(design, library, constraints, si_enabled=args.si)
    report = sta.run()
    print(report.summary())
    print()
    print(report.slack_histogram("setup", bins=6))
    worst = report.worst("setup")
    if worst is not None and args.paths > 0:
        print()
        for endpoint in report.endpoints("setup")[: args.paths]:
            print(sta.worst_path(endpoint).render())
            print()
    return 0 if report.wns("setup") >= 0 and report.wns("hold") >= 0 else 1


def _cmd_signoff(args) -> int:
    from repro.runtime import RetryPolicy, RunJournal
    from repro.sta.mcmm import standard_scenario_set
    from repro.sta.scheduler import ScenarioResultCache, SignoffScheduler
    from repro.validate import ensure_valid

    if args.jobs < 1:
        # Deliberately exit 1 (not argparse's 2): the flag parsed fine,
        # the *value* is unusable, and schedulers keying on exit codes
        # treat 1 as "ran and found a problem".
        print(f"error: --jobs must be a positive integer (got {args.jobs})",
              file=sys.stderr)
        return EXIT_VIOLATIONS

    from repro.sta.kernel import ENGINES

    if args.engine not in ENGINES:
        # Same contract as the --jobs guard: exit 1 with the valid
        # choices listed, not argparse's usage-error 2.
        print(f"error: unknown engine {args.engine!r}; "
              f"pick from {', '.join(ENGINES)}",
              file=sys.stderr)
        return EXIT_VIOLATIONS

    if args.hier:
        return _cmd_signoff_hier(args)
    if args.ssta:
        return _cmd_signoff_ssta(args)

    design, _, constraints = _make_setup(args)

    def factory(process: str, vdd: float, temp: float):
        return make_library(
            LibraryCondition(process=process, vdd=vdd, temp_c=temp)
        )

    scenario_set = standard_scenario_set(constraints, factory)

    if not args.no_validate:
        # Lint before spending compute: netlist/constraints once, plus
        # every per-scenario library (each is a distinct PVT handoff).
        for scenario in scenario_set.scenarios:
            ensure_valid(design, scenario.library, scenario.constraints)

    journal = None
    if args.checkpoint:
        if not args.resume and os.path.exists(args.checkpoint):
            os.remove(args.checkpoint)  # fresh run: drop stale journal
        journal = RunJournal(args.checkpoint)
    elif args.resume:
        raise ReproError("--resume requires --checkpoint PATH")

    fault_injector = None
    if args.inject_faults is not None:
        from repro.testing import FaultPlan, FaultInjector

        fault_injector = FaultInjector(FaultPlan.seeded(
            args.inject_faults,
            [s.name for s in scenario_set.scenarios],
            crash_rate=0.2, hang_rate=0.1, persistent_rate=0.1,
            hang_seconds=(args.timeout or 0.2) * 2,
        ))

    scheduler = SignoffScheduler(
        scenario_set.scenarios,
        stack=scenario_set.stack,
        jobs=args.jobs,
        executor=args.executor,
        cache=ScenarioResultCache(verify=True),
        policy=RetryPolicy(retries=args.retries, timeout_s=args.timeout),
        journal=journal,
        keep_going=args.keep_going,
        fault_injector=fault_injector,
        engine=args.engine,
    )
    with _obs_session(args):
        outcome = scheduler.signoff(design)
    print(outcome.render("setup"))
    print()
    for event in outcome.events:
        print(f"supervisor: {event}")
    print(
        f"jobs: {args.jobs} ({outcome.executor_used}); recomputed "
        f"{len(outcome.recomputed)}/{len(scenario_set.scenarios)} scenarios "
        f"({len(outcome.journal_hits)} from checkpoint) "
        f"in {outcome.wall_time_s:.2f} s"
    )
    if outcome.degraded:
        return EXIT_DEGRADED
    result = outcome.result
    ok = result.merged_wns("setup") >= 0 and result.merged_wns("hold") >= 0
    return EXIT_CLEAN if ok else EXIT_VIOLATIONS


def _cmd_signoff_ssta(args) -> int:
    """``signoff --ssta``: the statistical scenario family.

    Runs the canonical-form SSTA engine per scenario, reports
    per-endpoint slack distributions, timing yield at the target period
    and endpoint criticalities, then the PST tuning pass. Exit 0 when
    every scenario reaches the yield target after tuning, else 1.
    """
    from repro.sta.algebra import VariationModel
    from repro.sta.mcmm import standard_scenario_set
    from repro.sta.ssta import (
        monte_carlo_ssta,
        pst_benchmark_setup,
        run_ssta,
        tune_to_yield,
    )

    if args.ssta_bench:
        design, library, constraints = pst_benchmark_setup(seed=args.seed)
    else:
        design, library, constraints = _make_setup(args)
    model = VariationModel(rho=args.ssta_rho)

    scenarios = [(library.name, library, constraints)]
    if args.ssta_corners > 1:
        def factory(process: str, vdd: float, temp: float):
            return make_library(
                LibraryCondition(process=process, vdd=vdd, temp_c=temp)
            )

        sset = standard_scenario_set(constraints, factory)
        scenarios = [
            (s.name, s.library, s.constraints)
            for s in sset.scenarios[: args.ssta_corners]
        ]

    exit_code = EXIT_CLEAN
    with _obs_session(args):
        for name, lib, cons in scenarios:
            run = run_ssta(design, lib, cons, model=model,
                           n_samples=args.ssta_samples)
            print(f"scenario {name}:")
            print(run.render())
            if args.ssta_mc:
                mc = monte_carlo_ssta(design, lib, cons, model=model,
                                      n_samples=args.ssta_mc)
                print(f"  mc yield ({mc.n_samples} samples): "
                      f"{mc.timing_yield:.4f}")
            tuned = tune_to_yield(run, target_yield=args.yield_target,
                                  tune_range=args.tune_range)
            print(tuned.render())
            print()
            if not tuned.achieved:
                exit_code = EXIT_VIOLATIONS
    return exit_code


def _cmd_signoff_hier(args) -> int:
    """``signoff --hier``: ETM extraction sharded across workers, then
    top-level signoff over the stub models."""
    from repro.netlist.generators import hierarchical_soc
    from repro.runtime import RetryPolicy
    from repro.sta.hier import HierScheduler
    from repro.sta.mcmm import standard_scenario_set
    from repro.sta.scheduler import ScenarioResultCache

    hier = hierarchical_soc(
        seed=args.seed,
        n_blocks=args.blocks,
        block_gates=max(20, args.gates // max(1, args.blocks)),
    )
    constraints = hier.top_constraints(period=args.period)

    def factory(process: str, vdd: float, temp: float):
        return make_library(
            LibraryCondition(process=process, vdd=vdd, temp_c=temp)
        )

    scenario_set = standard_scenario_set(constraints, factory)
    scheduler = HierScheduler(
        hier,
        scenario_set.scenarios,
        stack=scenario_set.stack,
        jobs=args.jobs,
        executor=args.executor,
        etm_cache=ScenarioResultCache(),
        signoff_cache=ScenarioResultCache(verify=True),
        policy=RetryPolicy(retries=args.retries, timeout_s=args.timeout),
        engine=args.engine,
    )
    with _obs_session(args):
        outcome = scheduler.signoff()
    print(outcome.render("setup"))
    print()
    for event in outcome.events:
        print(f"supervisor: {event}")
    print(
        f"jobs: {args.jobs} ({args.executor}); extracted "
        f"{outcome.etm_computed} block model(s) "
        f"({outcome.etm_cache_hits} cached) in {outcome.wall_time_s:.2f} s"
    )
    if outcome.top is None:
        return EXIT_FATAL
    if outcome.degraded:
        return EXIT_DEGRADED
    return EXIT_CLEAN if not outcome.has_violations else EXIT_VIOLATIONS


def _cmd_closure(args) -> int:
    from repro.core.closure import ClosureConfig, ClosureEngine
    from repro.runtime import RetryPolicy, RunJournal
    from repro.validate import ensure_valid

    design, library, constraints = _make_setup(args)
    if not args.no_validate:
        ensure_valid(design, library, constraints)
    journal = None
    if args.checkpoint:
        if not args.resume and os.path.exists(args.checkpoint):
            os.remove(args.checkpoint)
        journal = RunJournal(args.checkpoint)
    elif args.resume:
        raise ReproError("--resume requires --checkpoint PATH")
    engine = ClosureEngine(
        design, library, constraints,
        policy=RetryPolicy(retries=args.retries),
        journal=journal,
    )
    with _obs_session(args):
        result = engine.run(
            ClosureConfig(max_iterations=args.iterations,
                          budget_per_fix=args.budget,
                          timing=args.timing),
            resume=args.resume,
        )
    print(result.render())
    if result.aborted:
        return EXIT_DEGRADED
    return EXIT_CLEAN if result.converged else EXIT_VIOLATIONS


def _cmd_validate(args) -> int:
    from repro.liberty.io import parse_library
    from repro.validate import validate_setup

    design, library, constraints = _make_setup(args)
    if args.library_file:
        try:
            with open(args.library_file, "r", encoding="utf-8") as handle:
                library = parse_library(handle.read())
        except OSError as exc:
            raise ValidationError(
                f"cannot read library file: {exc}",
                path=args.library_file,
            ) from exc
    report = validate_setup(design, library, constraints)
    print(f"validating design {design.name!r} against library "
          f"{library.name!r}")
    print(report.render())
    return EXIT_CLEAN if report.ok else EXIT_VIOLATIONS


def _cmd_library(args) -> int:
    library = _make_library(args)
    text = write_library(library)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {len(library)} cells to {args.output}")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_etm(args) -> int:
    from repro.sta import STA
    from repro.sta.etm import extract_etm, render_etm

    design, library, constraints = _make_setup(args)
    constraints.input_delays = {}
    sta = STA(design, library, constraints)
    sta.run()  # extract_etm reads the retained report; no second run
    print(render_etm(extract_etm(sta)))
    return 0


def _cmd_corners(args) -> int:
    from repro.beol.corners import corner_explosion_count
    from repro.beol.stack import default_stack

    counts = corner_explosion_count(
        n_modes=args.modes, n_voltage_domains=args.domains,
        stack=default_stack(),
    )
    for key, value in counts.items():
        print(f"{key:<28} {value:>14,}")
    return 0


def _cmd_serve(args) -> int:
    """Run the timing daemon in the foreground until SIGTERM/SIGINT."""
    import json
    import signal

    from repro.obs import export, metrics, tracing
    from repro.runtime import RunJournal
    from repro.serve import DaemonConfig, TimingDaemon
    from repro.sta.mcmm import standard_scenario_set

    design, _, constraints = _make_setup(args)

    def factory(process: str, vdd: float, temp: float):
        return make_library(
            LibraryCondition(process=process, vdd=vdd, temp_c=temp)
        )

    scenario_set = standard_scenario_set(constraints, factory)
    scenarios = scenario_set.scenarios
    if args.corners:
        scenarios = scenarios[: args.corners]

    # Unlike batch signoff, an existing journal is *kept*: the journal
    # is the daemon's durable state, and restarting on it is exactly the
    # warm-restart path (cache prewarm + session ledger replay).
    journal = RunJournal(args.checkpoint) if args.checkpoint else None

    fault_injector = None
    if args.inject_faults is not None:
        from repro.testing import FaultInjector, FaultPlan

        fault_injector = FaultInjector(FaultPlan.seeded(
            args.inject_faults,
            [s.name for s in scenarios],
            crash_rate=0.15, hang_rate=0.05, persistent_rate=0.1,
            hang_seconds=(args.timeout or 0.2) * 2,
            kernel_rate=0.15,
        ))

    daemon = TimingDaemon(
        design, scenarios, stack=scenario_set.stack,
        config=DaemonConfig(
            host=args.host, port=args.port, workers=args.workers,
            queue_limit=args.queue_limit, retries=args.retries,
            timeout_s=args.timeout, engine=args.engine,
            session_limit=args.session_limit,
        ),
        journal=journal,
        fault_injector=fault_injector,
    )

    # Tracing/metrics are installed as *process defaults* (not the
    # thread-local _obs_session) so daemon worker threads record too.
    tracer = tracing.Tracer() if args.trace else None
    registry = metrics.MetricsRegistry() if args.metrics else None
    if tracer is not None:
        tracing.set_default_tracer(tracer)
    if registry is not None:
        metrics.set_default_registry(registry)

    port = daemon.start()
    if args.port_file:
        # Written atomically so pollers never observe a partial file.
        tmp = f"{args.port_file}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(f"{port}\n")
        os.replace(tmp, args.port_file)
    print(json.dumps({
        "serving": design.name, "host": args.host, "port": port,
        "scenarios": [s.name for s in scenarios],
        "engine": args.engine, "workers": args.workers,
        "queue_limit": args.queue_limit,
    }), flush=True)

    def _terminate(signum, frame):
        daemon.stop()

    signal.signal(signal.SIGTERM, _terminate)
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        daemon.stop()
    finally:
        if tracer is not None:
            tracing.set_default_tracer(None)
            export.write_chrome_trace(args.trace, tracer.spans())
            print(f"trace: wrote {len(tracer)} span(s) to {args.trace}",
                  file=sys.stderr)
        if registry is not None:
            metrics.set_default_registry(None)
            registry.write_json(args.metrics)
            print(f"metrics: wrote snapshot to {args.metrics}",
                  file=sys.stderr)
    return EXIT_CLEAN


def _cmd_query(args) -> int:
    """One client request against a running daemon; JSON on stdout."""
    import json

    from repro.errors import ServeError
    from repro.runtime import RetryPolicy
    from repro.serve import TimingClient

    try:
        params = json.loads(args.params) if args.params else {}
    except ValueError as exc:
        print(f"error: --params is not valid JSON: {exc}", file=sys.stderr)
        return EXIT_VIOLATIONS
    policy = (RetryPolicy(retries=args.retries, backoff_s=0.2)
              if args.retries > 0 else None)
    client = TimingClient(args.host, args.port, timeout_s=args.timeout)
    try:
        with client:
            result = client.call(
                args.op, params, session=args.session,
                deadline_s=args.deadline, policy=policy,
            )
    except ServeError as exc:
        # Retryable failures (shed, deadline, daemon restart) exit 3 so
        # a wrapping script can back off and resubmit; permanent ones
        # (bad request, quarantined session) exit 4.
        print(f"error: {exc.code}: {exc}", file=sys.stderr)
        return EXIT_DEGRADED if exc.retryable else EXIT_FATAL
    print(json.dumps(result, indent=2, sort_keys=True))
    return EXIT_CLEAN


def _load_campaign_spec(args):
    from repro.campaign import CampaignSpec, demo_spec

    if args.spec_file:
        from repro.errors import CampaignError

        try:
            with open(args.spec_file, "r", encoding="utf-8") as fh:
                spec = CampaignSpec.from_json(fh.read())
        except OSError as exc:
            raise CampaignError(
                f"cannot read campaign spec {args.spec_file!r}: {exc}"
            ) from exc
    else:
        spec = demo_spec()
    if getattr(args, "fraction", None) is not None:
        spec.fraction = args.fraction
    return spec


def _campaign_runner(args, spec, store, daemon=None):
    from repro.campaign import CampaignRunner
    from repro.runtime import RetryPolicy

    return CampaignRunner(
        spec, store,
        jobs=args.jobs,
        executor=args.executor,
        policy=RetryPolicy(retries=args.retries,
                           timeout_s=args.timeout),
        chunk=args.chunk,
        daemon=daemon,
        on_event=lambda msg: print(f"  [supervisor] {msg}",
                                   file=sys.stderr),
    )


def _cmd_campaign_run(args) -> int:
    from repro.campaign import CampaignStore, DaemonTarget

    daemon = None
    if args.via_daemon:
        host, _, port = args.via_daemon.rpartition(":")
        if not host or not port.isdigit():
            print(f"error: --via-daemon wants HOST:PORT, got "
                  f"{args.via_daemon!r}", file=sys.stderr)
            return EXIT_VIOLATIONS
        # The client-side mirror of the daemon's base design: recipes
        # and the power/area rollup are computed locally, so the
        # --design/--period/... flags must match the serving daemon's.
        design, library, constraints = _make_setup(args)
        daemon = DaemonTarget(host, int(port), design, library,
                              constraints)
    spec = _load_campaign_spec(args)
    with _obs_session(args):
        with CampaignStore(args.db) as store:
            runner = _campaign_runner(args, spec, store, daemon=daemon)
            configs = spec.expand()
            if args.configs:
                configs = configs[:args.configs]
            outcome = runner.run(configs=configs,
                                 resume=not args.no_resume)
            print(outcome.render())
    return EXIT_DEGRADED if outcome.degraded else EXIT_CLEAN


def _cmd_campaign_pareto(args) -> int:
    from repro.campaign import (
        CampaignStore, DEFAULT_AXES, parse_axes, render_front,
    )
    from repro.obs import write_artifact

    with CampaignStore(args.db) as store:
        campaign = args.campaign
        if campaign is None:
            names = store.campaigns()
            if len(names) != 1:
                print(f"error: --campaign needed; DB holds "
                      f"{names or 'no campaigns'}", file=sys.stderr)
                return EXIT_VIOLATIONS
            campaign = names[0]
        rows = store.rows(campaign, status="ok")
        if not rows:
            print(f"error: campaign {campaign!r} has no completed "
                  f"configs in {args.db}", file=sys.stderr)
            return EXIT_VIOLATIONS
        axes = parse_axes(args.axes) if args.axes else DEFAULT_AXES
        factors = tuple(f for f in (args.factors or "").split(",") if f)
        text = render_front(
            rows, axes, factors=factors,
            title=f"pareto front: campaign {campaign}",
            limit=args.limit,
        )
    print(text)
    if args.out:
        path = write_artifact(args.out, text)
        print(f"pareto: wrote {path}", file=sys.stderr)
    return EXIT_CLEAN


def _cmd_campaign_triage(args) -> int:
    from repro.campaign import (
        CampaignStore, DEFAULT_AXES, front_recall, parse_axes,
        pareto_front,
    )

    spec = _load_campaign_spec(args)
    axes = parse_axes(args.axes) if args.axes else DEFAULT_AXES
    with _obs_session(args):
        with CampaignStore(args.db) as store:
            runner = _campaign_runner(args, spec, store)
            outcome = runner.run_triaged(
                budget=args.budget, train=args.train,
                axes=axes, model=args.surrogate,
            )
            print(outcome.render())
            recovered = {
                row["fingerprint"]
                for row in store.rows(spec.name, status="ok")
            }
    if args.truth_db:
        with CampaignStore(args.truth_db) as truth:
            truth_rows = truth.rows(spec.name, status="ok")
        if not truth_rows:
            print(f"error: truth DB has no campaign {spec.name!r}",
                  file=sys.stderr)
            return EXIT_VIOLATIONS
        front = pareto_front(truth_rows, axes)
        recall = front_recall(front, recovered)
        print(f"triage recall vs full sweep: {recall:.3f} "
              f"({len(front)} true front configs, "
              f"{len(recovered)} signed off)")
    return EXIT_CLEAN


def _cmd_trace_summarize(args) -> int:
    from repro.obs.export import summarize_file

    try:
        summary = summarize_file(args.file)
    except ReproError as exc:
        # A missing or empty trace file is an operator mistake, not an
        # internal failure: exit 1 with a one-line message instead of
        # the generic fatal-error path.
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_VIOLATIONS
    print(summary.render())
    return 0


def _cmd_history(args) -> int:
    from repro.core.history import render_old_vs_new, render_timeline

    print(render_old_vs_new())
    print()
    print(render_timeline())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Timing-closure playground (Kahng, DAC 2015 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sta = sub.add_parser("sta", help="run static timing analysis")
    _add_design_args(p_sta)
    _add_library_args(p_sta)
    p_sta.add_argument("--si", action="store_true",
                       help="enable coupling-noise delta delays")
    p_sta.add_argument("--paths", type=int, default=1,
                       help="worst paths to print")
    p_sta.set_defaults(func=_cmd_sta)

    p_sig = sub.add_parser(
        "signoff", help="parallel MCMM signoff over the standard corner set"
    )
    _add_design_args(p_sig)
    _add_library_args(p_sig)
    p_sig.add_argument("--jobs", type=int, default=1,
                       help="signoff worker count (1 = serial)")
    p_sig.add_argument("--executor", default="thread",
                       choices=["serial", "thread", "process"],
                       help="worker pool flavor")
    p_sig.add_argument("--engine", default="reference",
                       help="timing engine: 'reference' (per-scenario "
                            "oracle walk) or 'vector' (batched "
                            "multi-corner array kernel)")
    p_sig.add_argument("--retries", type=int, default=2,
                       help="retry attempts per scenario after a failure")
    p_sig.add_argument("--timeout", type=float, default=None,
                       help="per-attempt wall-clock budget, seconds")
    p_sig.add_argument("--checkpoint", metavar="PATH",
                       help="journal completed scenarios to PATH")
    p_sig.add_argument("--resume", action="store_true",
                       help="reuse scenarios already in the checkpoint "
                            "journal instead of recomputing them")
    p_sig.add_argument("--keep-going", action="store_true",
                       help="quarantine DEGRADED scenarios and finish the "
                            "batch (exit 3) instead of failing (exit 4)")
    p_sig.add_argument("--no-validate", action="store_true",
                       help="skip the pre-run netlist/library/constraint "
                            "lint")
    p_sig.add_argument("--hier", action="store_true",
                       help="hierarchical signoff: extract per-block "
                            "timing models in parallel workers, then "
                            "time the top level against the stubs")
    p_sig.add_argument("--blocks", type=int, default=3,
                       help="block instance count for --hier (default 3)")
    p_sig.add_argument("--ssta", action="store_true",
                       help="statistical signoff: canonical-form SSTA "
                            "with yield, criticalities and PST tuning")
    p_sig.add_argument("--ssta-samples", type=int, default=4000,
                       help="samples for yield/criticality estimation")
    p_sig.add_argument("--ssta-rho", type=float, default=0.45,
                       help="correlated fraction of per-arc LVF sigma")
    p_sig.add_argument("--ssta-corners", type=int, default=1,
                       help="scenarios from the standard set to run "
                            "statistically (default: the CLI PVT only)")
    p_sig.add_argument("--ssta-mc", type=int, default=0, metavar="N",
                       help="also run an N-sample Monte-Carlo validation "
                            "pass and print its yield")
    p_sig.add_argument("--ssta-bench", action="store_true",
                       help="use the PST benchmark block (period tuned "
                            "for an interesting failing-die fraction)")
    p_sig.add_argument("--yield-target", type=float, default=0.99,
                       help="timing-yield target for PST tuning")
    p_sig.add_argument("--tune-range", type=float, default=40.0,
                       help="PST buffer tuning range, ps (+/- around "
                            "the nominal tap)")
    p_sig.add_argument("--inject-faults", type=int, metavar="SEED",
                       default=None,
                       help="chaos testing: inject a seeded, deterministic "
                            "fault plan (crashes/hangs) into the workers")
    _add_obs_args(p_sig)
    p_sig.set_defaults(func=_cmd_signoff)

    p_clo = sub.add_parser("closure", help="run the Fig 1 closure loop")
    _add_design_args(p_clo)
    _add_library_args(p_clo)
    p_clo.add_argument("--iterations", type=int, default=5)
    p_clo.add_argument("--budget", type=int, default=20,
                       help="edits per fix engine per iteration")
    p_clo.add_argument("--timing", default="incremental",
                       choices=["incremental", "full"],
                       help="re-time edits cone-limited through a warm "
                            "incremental timer (default) or rebuild a "
                            "fresh STA every iteration")
    p_clo.add_argument("--retries", type=int, default=2,
                       help="retry attempts per STA pass after a crash")
    p_clo.add_argument("--checkpoint", metavar="PATH",
                       help="journal completed iterations to PATH")
    p_clo.add_argument("--resume", action="store_true",
                       help="continue from the last journaled iteration")
    p_clo.add_argument("--no-validate", action="store_true",
                       help="skip the pre-run lint")
    _add_obs_args(p_clo)
    p_clo.set_defaults(func=_cmd_closure)

    p_val = sub.add_parser(
        "validate",
        help="pre-run lint of netlist, library and constraints",
    )
    _add_design_args(p_val)
    _add_library_args(p_val)
    p_val.add_argument("--library-file", metavar="PATH",
                       help="lint a Liberty-lite file instead of the "
                            "analytic factory library")
    p_val.set_defaults(func=_cmd_validate)

    p_lib = sub.add_parser("library", help="emit a Liberty-lite library")
    _add_library_args(p_lib)
    p_lib.add_argument("-o", "--output", help="output file (default stdout)")
    p_lib.set_defaults(func=_cmd_library)

    p_etm = sub.add_parser("etm", help="extract a block timing model")
    _add_design_args(p_etm)
    _add_library_args(p_etm)
    p_etm.set_defaults(func=_cmd_etm)

    p_cor = sub.add_parser("corners", help="corner-explosion arithmetic")
    p_cor.add_argument("--modes", type=int, default=6)
    p_cor.add_argument("--domains", type=int, default=4)
    p_cor.set_defaults(func=_cmd_corners)

    p_srv = sub.add_parser(
        "serve",
        help="run the timing daemon (signoff-as-a-service)",
    )
    _add_design_args(p_srv)
    _add_library_args(p_srv)
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument("--port", type=int, default=0,
                       help="TCP port (0 = ephemeral; see --port-file)")
    p_srv.add_argument("--port-file", metavar="PATH",
                       help="write the bound port here (atomically) "
                            "once listening")
    p_srv.add_argument("--workers", type=int, default=4,
                       help="query worker threads")
    p_srv.add_argument("--queue-limit", type=int, default=64,
                       help="admission queue depth; beyond it requests "
                            "are shed with E_OVERLOADED")
    p_srv.add_argument("--retries", type=int, default=1,
                       help="retry attempts per query after a worker "
                            "crash")
    p_srv.add_argument("--timeout", type=float, default=None,
                       help="per-attempt wall-clock budget, seconds")
    p_srv.add_argument("--engine", default="reference",
                       help="timing engine: 'reference' or 'vector' "
                            "(vector degrades per scenario on kernel "
                            "compile failure)")
    p_srv.add_argument("--corners", type=int, default=0,
                       help="serve only the first N standard corners "
                            "(0 = all)")
    p_srv.add_argument("--session-limit", type=int, default=256,
                       help="max concurrently active sessions")
    p_srv.add_argument("--checkpoint", metavar="PATH",
                       help="journal scenario results and the session "
                            "ledger to PATH; restarting on the same "
                            "file resumes warm")
    p_srv.add_argument("--inject-faults", type=int, metavar="SEED",
                       default=None,
                       help="chaos testing: seeded worker crashes/hangs "
                            "and kernel compile failures inside query "
                            "handlers")
    _add_obs_args(p_srv)
    p_srv.set_defaults(func=_cmd_serve)

    p_qry = sub.add_parser(
        "query", help="send one request to a running timing daemon"
    )
    p_qry.add_argument("--host", default="127.0.0.1")
    p_qry.add_argument("--port", type=int, required=True)
    p_qry.add_argument("--op", required=True,
                       help="protocol op (ping, stats, open_session, "
                            "timing, signoff, paths, histogram, "
                            "apply_eco, ssta, discard, close_session, "
                            "shutdown)")
    p_qry.add_argument("--params", metavar="JSON", default=None,
                       help="op parameters as a JSON object")
    p_qry.add_argument("--session", default=None,
                       help="session id (from open_session)")
    p_qry.add_argument("--deadline", type=float, default=None,
                       help="server-side deadline, seconds from "
                            "admission")
    p_qry.add_argument("--retries", type=int, default=0,
                       help="client-side retries of retryable errors "
                            "(shed, deadline, daemon restart)")
    p_qry.add_argument("--timeout", type=float, default=30.0,
                       help="socket timeout, seconds")
    p_qry.set_defaults(func=_cmd_query)

    p_cmp = sub.add_parser(
        "campaign",
        help="factorial signoff sweeps: results DB, Pareto fronts, "
             "learned triage",
    )
    cmp_sub = p_cmp.add_subparsers(dest="campaign_command", required=True)

    def _add_campaign_run_args(parser):
        parser.add_argument("--db", default="campaign.db",
                            help="SQLite results database (appended to; "
                                 "reruns resume by content fingerprint)")
        parser.add_argument("--spec-file", metavar="JSON", default=None,
                            help="campaign spec JSON (default: the "
                                 "built-in Fig-9-style fig9_sweep)")
        parser.add_argument("--fraction", type=float, default=None,
                            help="fractional factorial: keep this "
                                 "fraction of the full design")
        parser.add_argument("--jobs", type=int, default=2,
                            help="configs signed off concurrently")
        parser.add_argument("--executor", default="thread",
                            choices=["serial", "thread", "process"])
        parser.add_argument("--chunk", type=int, default=8,
                            help="configs per wave (the durability "
                                 "granularity: results commit between "
                                 "waves)")
        parser.add_argument("--retries", type=int, default=1,
                            help="retry attempts per config")
        parser.add_argument("--timeout", type=float, default=None,
                            help="per-attempt wall-clock budget, seconds")
        _add_obs_args(parser)

    p_crun = cmp_sub.add_parser(
        "run", help="run (or resume) every configuration"
    )
    _add_campaign_run_args(p_crun)
    p_crun.add_argument("--configs", type=int, default=None,
                        help="run only the first N configs (smoke runs)")
    p_crun.add_argument("--no-resume", action="store_true",
                        help="recompute configs already in the DB "
                             "(results are still first-write-wins)")
    p_crun.add_argument("--via-daemon", metavar="HOST:PORT", default=None,
                        help="dispatch each config as an overlay session "
                             "against a running timing daemon; the "
                             "--design/--period flags must mirror the "
                             "daemon's base design")
    _add_design_args(p_crun)
    _add_library_args(p_crun)
    p_crun.set_defaults(func=_cmd_campaign_run)

    p_cpar = cmp_sub.add_parser(
        "pareto", help="extract and render the non-dominated front"
    )
    p_cpar.add_argument("--db", default="campaign.db")
    p_cpar.add_argument("--campaign", default=None,
                        help="campaign name (default: the DB's only one)")
    p_cpar.add_argument("--axes", default=None,
                        help="objectives as metric[:min|max],... "
                             "(default power_mw:min,area_um2:min,tns:max)")
    p_cpar.add_argument("--factors", default=None,
                        help="comma-separated level columns to show")
    p_cpar.add_argument("--limit", type=int, default=None,
                        help="print at most N front rows")
    p_cpar.add_argument("--out", metavar="FILE", default=None,
                        help="also write the table to FILE")
    p_cpar.set_defaults(func=_cmd_campaign_pareto)

    p_ctri = cmp_sub.add_parser(
        "triage",
        help="learned triage: train on a spread wave, sign off only "
             "the configs predicted Pareto-relevant",
    )
    _add_campaign_run_args(p_ctri)
    p_ctri.add_argument("--budget", type=float, default=0.5,
                        help="fraction of the full sweep to sign off")
    p_ctri.add_argument("--train", type=float, default=0.25,
                        help="fraction used for the training wave")
    p_ctri.add_argument("--surrogate", default="ridge",
                        choices=["ridge", "knn"])
    p_ctri.add_argument("--axes", default=None,
                        help="objectives as metric[:min|max],...")
    p_ctri.add_argument("--truth-db", metavar="DB", default=None,
                        help="full-sweep DB to score front recall "
                             "against")
    p_ctri.set_defaults(func=_cmd_campaign_triage)

    p_tr = sub.add_parser("trace", help="inspect exported trace files")
    tr_sub = p_tr.add_subparsers(dest="trace_command", required=True)
    p_sum = tr_sub.add_parser(
        "summarize",
        help="per-phase wall-clock breakdown of a --trace export",
    )
    p_sum.add_argument("file", help="Chrome-trace JSON or events JSONL")
    p_sum.set_defaults(func=_cmd_trace_summarize)

    p_hist = sub.add_parser("history", help="Fig 2/3 knowledge tables")
    p_hist.set_defaults(func=_cmd_history)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ValidationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        for issue in exc.issues:
            print(f"  {issue.render()}", file=sys.stderr)
        return EXIT_FATAL
    except ReproError as exc:
        # Structured failure: one line with context, never a traceback.
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return EXIT_FATAL


if __name__ == "__main__":
    sys.exit(main())
