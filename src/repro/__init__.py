"""repro — a timing-closure playground.

A from-scratch Python reproduction of the systems surveyed in Kahng,
"New Game, New Goal Posts: A Recent History of Timing Closure" (DAC 2015):

- an analytical circuit simulator (:mod:`repro.spice`) used as the golden
  reference for delay, slew, multi-input switching, temperature inversion
  and Monte Carlo variation studies;
- library modeling (:mod:`repro.liberty`) with NLDM tables and the
  AOCV / POCV / LVF variation-model ladder;
- BEOL stack and multi-patterning variation models (:mod:`repro.beol`)
  with corner enumeration and the SADP sigma formulas of the paper's Fig 5;
- parasitic RC synthesis and wire delay (:mod:`repro.parasitics`);
- a full static timing analyzer (:mod:`repro.sta`) with graph-based and
  path-based analysis, CPPR, derating and MCMM scenarios;
- interdependent flip-flop timing models (:mod:`repro.flops`);
- multi-input switching analysis (:mod:`repro.mis`);
- placement and minimum-implant-area interference (:mod:`repro.place`);
- clock tree synthesis and useful skew (:mod:`repro.cts`);
- BTI aging and adaptive voltage scaling (:mod:`repro.aging`);
- and, on top of it all, the executable timing-closure methodology
  (:mod:`repro.core`): the iterative closure loop, signoff-criteria engine,
  and tightened-BEOL-corner methodology.
"""

from repro.errors import (
    ClosureError,
    ConstraintError,
    CornerError,
    LibraryError,
    NetlistError,
    PlacementError,
    ReproError,
    SignoffError,
    SimulationError,
    TimingError,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "SimulationError",
    "NetlistError",
    "LibraryError",
    "TimingError",
    "ConstraintError",
    "CornerError",
    "PlacementError",
    "ClosureError",
    "SignoffError",
    "__version__",
]
