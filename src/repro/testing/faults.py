"""Deterministic fault injection for the supervised signoff runtime.

Chaos testing only earns its keep when failures are *reproducible*: a
flaky chaos suite is worse than none. Every fault here is therefore
declared up front in a :class:`FaultPlan` — either explicitly or drawn
from a seeded RNG — and fires at exact (task, attempt) coordinates:

- ``crash``     — the worker raises :class:`~repro.errors.InjectedFaultError`
  (a :class:`~repro.errors.WorkerCrashError`), exercising retry and
  quarantine paths.
- ``hang``      — the worker sleeps past the supervision timeout,
  exercising the timeout/abandonment path.
- ``pool_break`` — the worker raises
  :class:`~repro.errors.ExecutorBrokenError`, which the supervisor
  treats exactly like a dead pool: executor fallback
  (process -> thread -> serial).

Beyond worker faults, :func:`corrupt_cache_entry` flips bits in a live
:class:`~repro.sta.scheduler.ScenarioResultCache` (defended by the
cache's integrity verification) and :func:`malform_library` breaks a
library in characteristic ways (defended by the :mod:`repro.validate`
pre-run lint).

Everything is plain data and module-level functions so plans survive
pickling into process-pool workers.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ExecutorBrokenError, InjectedFaultError, TimingError

FAULT_KINDS = ("crash", "hang", "pool_break", "kernel_compile")

#: Fault kinds that fire inside a *worker* attempt (the supervisor's
#: retry/quarantine machinery owns recovery). "kernel_compile" is the
#: odd one out: it fires at vector-kernel compile time and exercises the
#: reference-engine fallback ladder instead.
WORKER_FAULT_KINDS = ("crash", "hang", "pool_break")


@dataclass(frozen=True)
class Fault:
    """One planned fault at (task, attempt) coordinates.

    Attributes:
        kind: "crash", "hang" or "pool_break".
        task: target task/scenario name, or "*" for any task.
        attempts: 1-based attempt numbers at which to fire. The default
            ``(1,)`` makes retries succeed — the common transient-fault
            shape; ``(1, 2, 3, ...)`` makes a fault persistent enough to
            force quarantine.
        seconds: sleep duration for "hang" faults.
    """

    kind: str
    task: str = "*"
    attempts: Tuple[int, ...] = (1,)
    seconds: float = 0.25

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise TimingError(
                f"unknown fault kind {self.kind!r}; pick from {FAULT_KINDS}"
            )

    @property
    def scope(self) -> str:
        """"worker" for in-attempt faults, "kernel" for compile faults."""
        return "kernel" if self.kind == "kernel_compile" else "worker"

    def matches(self, task: str, attempt: int) -> bool:
        return (self.task in ("*", task)) and attempt in self.attempts


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of faults."""

    faults: Tuple[Fault, ...] = ()

    @classmethod
    def of(cls, *faults: Fault) -> "FaultPlan":
        return cls(faults=tuple(faults))

    @classmethod
    def seeded(
        cls,
        seed: int,
        task_names: Sequence[str],
        crash_rate: float = 0.25,
        hang_rate: float = 0.0,
        persistent_rate: float = 0.0,
        hang_seconds: float = 0.25,
        kernel_rate: float = 0.0,
    ) -> "FaultPlan":
        """Draw a reproducible plan over a task list.

        Each task independently gets at most one fault: a transient
        crash (fires on attempt 1 only), a hang (attempt 1 only), with
        ``persistent_rate`` a crash on every attempt, which no retry
        budget survives, forcing quarantine — or, with ``kernel_rate``,
        an injected :class:`~repro.sta.kernel.KernelCompileError` at
        vector-kernel compile time, forcing the reference-engine
        fallback. Same seed + same task list => identical plan, on any
        host.
        """
        rng = np.random.RandomState(seed)
        faults: List[Fault] = []
        for name in task_names:
            u = float(rng.uniform())
            if u < persistent_rate:
                faults.append(Fault("crash", task=name,
                                    attempts=tuple(range(1, 33))))
            elif u < persistent_rate + crash_rate:
                faults.append(Fault("crash", task=name))
            elif u < persistent_rate + crash_rate + hang_rate:
                faults.append(Fault("hang", task=name,
                                    seconds=hang_seconds))
            elif u < (persistent_rate + crash_rate + hang_rate
                      + kernel_rate):
                faults.append(Fault("kernel_compile", task=name))
        return cls(faults=tuple(faults))

    def for_task(self, task: str, attempt: int,
                 scope: str = "worker") -> Optional[Fault]:
        for fault in self.faults:
            if fault.scope == scope and fault.matches(task, attempt):
                return fault
        return None

    def worker_faults(self) -> Tuple[Fault, ...]:
        """Faults that fire inside worker attempts (crash/hang/pool)."""
        return tuple(f for f in self.faults if f.scope == "worker")

    def kernel_faults(self) -> Tuple[Fault, ...]:
        """Faults that fire at vector-kernel compile time."""
        return tuple(f for f in self.faults if f.scope == "kernel")


@dataclass
class FaultInjector:
    """Fires planned faults from inside workers.

    Workers call :meth:`fire` at the top of each attempt; the injector
    raises (crash / pool_break) or sleeps (hang) per the plan. The
    object is plain data, so it pickles into process-pool workers.
    """

    plan: FaultPlan = field(default_factory=FaultPlan)

    def fire(self, task: str, attempt: int) -> None:
        fault = self.plan.for_task(task, attempt, scope="worker")
        if fault is None:
            return
        if fault.kind == "hang":
            time.sleep(fault.seconds)
        elif fault.kind == "crash":
            raise InjectedFaultError(
                "injected worker crash", task=task, attempt=attempt
            )
        elif fault.kind == "pool_break":
            raise ExecutorBrokenError(
                "injected worker-pool death", task=task, attempt=attempt
            )

    def fire_kernel(self, task: str, attempt: int = 1) -> None:
        """Fire a planned kernel-compile fault for ``task``, if any.

        Called by vector-engine compile sites (the signoff scheduler's
        mode batching, the warm timer pool's full runs) so chaos plans
        exercise the reference-engine fallback ladder — previously
        injected runs always forced the reference engine, leaving the
        fallback path untested under chaos. Raises
        :class:`~repro.sta.kernel.KernelCompileError` exactly like a
        real incongruent-library refusal, so production handling (not a
        test-only path) absorbs it.
        """
        fault = self.plan.for_task(task, attempt, scope="kernel")
        if fault is None:
            return
        from repro.sta.kernel import KernelCompileError

        raise KernelCompileError(
            "injected kernel compile failure", task=task, attempt=attempt
        )


# ---------------------------------------------------------------------- #
# data-corruption faults


def corrupt_cache_entry(cache, seed: int = 0) -> Optional[str]:
    """Silently corrupt one stored report in a ScenarioResultCache.

    Mutates the report's worst endpoint slack to an absurd value —
    exactly the shape of damage a bad memory page or a buggy serializer
    would cause. With ``verify=True`` the cache detects the mutation on
    the next lookup (content digest mismatch) and treats it as a miss.
    Returns the corrupted scenario fingerprint, or None on an empty
    cache.
    """
    keys = sorted(cache._store)
    if not keys:
        return None
    rng = np.random.RandomState(seed)
    key = keys[int(rng.randint(len(keys)))]
    report = cache._store[key].report
    for endpoints in (report.setup, report.hold):
        if endpoints:
            endpoints[0].slack = 1.0e9
            break
    return key[2]


def malform_library(library, seed: int = 0, kind: str = "nan_delay") -> dict:
    """Break a library the way real library handoffs break.

    Kinds:
        ``nan_delay``      — a NaN lands in one cell's delay table
            (half-written filesystem copy, bad characterization run).
        ``negative_delay`` — a delay table goes negative (corrupt
            interpolation / unit mix-up).
        ``drop_pin``       — a pin disappears while arcs still reference
            it (mismatched library/netlist revisions).

    Deterministic under ``seed``. Returns ``{"cell", "kind", "detail"}``
    describing the damage so tests can assert the validator names it.
    """
    cells = sorted(name for name, c in library.cells.items() if c.arcs)
    if not cells:
        raise TimingError("library has no cells with arcs to malform")
    rng = np.random.RandomState(seed)
    cell = library.cells[cells[int(rng.randint(len(cells)))]]

    if kind in ("nan_delay", "negative_delay"):
        arc = next(a for a in cell.arcs if a.timing)
        timing = arc.timing[sorted(arc.timing)[0]]
        value = math.nan if kind == "nan_delay" else -50.0
        timing.delay.values[0, 0] = value
        detail = f"{arc.related_pin}->{arc.pin} delay[0,0] = {value}"
    elif kind == "drop_pin":
        pin = next(p.name for p in cell.input_pins())
        del cell.pins[pin]
        detail = f"removed pin {pin}"
    else:
        raise TimingError(f"unknown malformation kind {kind!r}")
    return {"cell": cell.name, "kind": kind, "detail": detail}
