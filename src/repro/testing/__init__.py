"""Deterministic chaos-testing utilities for the fault-tolerant runtime."""

from repro.testing.faults import (
    FAULT_KINDS,
    WORKER_FAULT_KINDS,
    Fault,
    FaultInjector,
    FaultPlan,
    corrupt_cache_entry,
    malform_library,
)

__all__ = [
    "FAULT_KINDS",
    "WORKER_FAULT_KINDS",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "corrupt_cache_entry",
    "malform_library",
]
