"""Deterministic chaos-testing utilities for the fault-tolerant runtime."""

from repro.testing.faults import (
    Fault,
    FaultInjector,
    FaultPlan,
    corrupt_cache_entry,
    malform_library,
)

__all__ = [
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "corrupt_cache_entry",
    "malform_library",
]
