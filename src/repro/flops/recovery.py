"""Margin recovery with flexible flip-flop timing ([Kahng-Lee ISQED'14]).

The conventional flow characterizes every flop at a fixed pushout point
(setup = s_pushout, c2q = c2q(s_pushout)) and checks

    c2q(launch) + data_delay + setup(capture) <= T.

But the (setup, c2q) pairs are *points on a curve*: a flop allowed to run
with less setup margin captures later but still correctly, at the cost of
a larger c2q into the next stage — and vice versa. Choosing each flop's
operating point globally is a small convex-ish program; we solve it with
a sequential LP (linearize c2q(s) at the current point, trust region,
repeat), maximizing the worst stage slack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.errors import ReproError
from repro.flops.model import InterdependentFlopModel


@dataclass(frozen=True)
class Stage:
    """One launch->capture stage: combinational delay between two flops."""

    launch: str
    capture: str
    data_delay: float


@dataclass
class RecoveryResult:
    """Outcome of the margin-recovery optimization."""

    baseline_wns: float
    recovered_wns: float
    setup_points: Dict[str, float]  # chosen setup margin per flop
    iterations: int

    @property
    def improvement(self) -> float:
        return self.recovered_wns - self.baseline_wns


def baseline_wns(
    stages: Sequence[Stage],
    model: InterdependentFlopModel,
    period: float,
    pushout_fraction: float = 0.10,
) -> float:
    """Worst slack with the conventional fixed pushout characterization."""
    s_fix = model.pushout_setup(pushout_fraction)
    c2q_fix = model.c2q(s_fix)
    return min(
        period - c2q_fix - st.data_delay - s_fix for st in stages
    )


def recover_margin(
    stages: Sequence[Stage],
    model: InterdependentFlopModel,
    period: float,
    pushout_fraction: float = 0.10,
    iterations: int = 12,
    s_max: float = 120.0,
    trust_radius: float = 15.0,
) -> RecoveryResult:
    """Maximize worst stage slack by re-choosing per-flop setup points.

    Variables: one setup margin s_f per flop, plus the worst slack t.
    Constraints per stage (i -> j)::

        t <= T - c2q_i(s_i) - d_ij - s_j

    with c2q_i linearized at the current iterate. The fixed-pushout
    solution is the starting point, so the result can never be worse.
    """
    if not stages:
        raise ReproError("need at least one stage to optimize")
    flops = sorted({st.launch for st in stages} | {st.capture for st in stages})
    index = {f: i for i, f in enumerate(flops)}
    n = len(flops)

    s_fix = model.pushout_setup(pushout_fraction)
    s_lo = model.s_wall + 0.5
    current = np.full(n, s_fix)
    base = baseline_wns(stages, model, period, pushout_fraction)

    best_wns = base
    best_points = current.copy()

    for it in range(iterations):
        # Maximize t: variables x = [s_0..s_{n-1}, t]; minimize -t.
        c = np.zeros(n + 1)
        c[-1] = -1.0
        a_ub: List[np.ndarray] = []
        b_ub: List[float] = []
        for st in stages:
            i, j = index[st.launch], index[st.capture]
            c2q_i = model.c2q(current[i])
            grad_i = model.dc2q_dsetup(current[i])
            # t + grad_i * s_i + s_j <= T - d - (c2q_i - grad_i * s_i^k)
            row = np.zeros(n + 1)
            row[-1] = 1.0
            row[i] += grad_i
            row[j] += 1.0
            a_ub.append(row)
            b_ub.append(
                period - st.data_delay - (c2q_i - grad_i * current[i])
            )
        bounds = [
            (max(s_lo, current[k] - trust_radius),
             min(s_max, current[k] + trust_radius))
            for k in range(n)
        ] + [(None, None)]
        res = linprog(c, A_ub=np.array(a_ub), b_ub=np.array(b_ub),
                      bounds=bounds, method="highs")
        if not res.success:
            break
        new = res.x[:n]
        current = new
        wns = _true_wns(stages, index, current, model, period)
        if wns > best_wns:
            best_wns = wns
            best_points = current.copy()
        if abs(res.x[-1] - wns) < 1e-3:
            break

    return RecoveryResult(
        baseline_wns=base,
        recovered_wns=best_wns,
        setup_points={f: float(best_points[index[f]]) for f in flops},
        iterations=it + 1,
    )


def _true_wns(stages, index, setups, model, period) -> float:
    return min(
        period
        - model.c2q(float(setups[index[st.launch]]))
        - st.data_delay
        - float(setups[index[st.capture]])
        for st in stages
    )


def stages_from_sta(sta, report, limit: int = 50) -> List[Stage]:
    """Extract launch->capture stages from an STA report's worst setup
    endpoints: data_delay is the D-arrival minus the launch c2q and clock
    arrival, i.e. the pure combinational portion."""
    stages = []
    for endpoint in report.endpoints("setup")[:limit]:
        if endpoint.kind != "setup" or endpoint.check is None:
            continue
        path = sta.worst_path(endpoint)
        launch = None
        for point in path.points:
            if not point.ref.is_port and point.ref.pin == "Q":
                launch = point.ref.instance
                break
        if launch is None:
            continue
        comb_delay = sum(
            p.increment for p in path.points
            if not (p.ref.pin in ("CK", "Q") and p.kind == "cell")
            and p.kind in ("cell", "net")
        )
        stages.append(
            Stage(
                launch=launch,
                capture=endpoint.check.instance,
                data_delay=comb_delay,
            )
        )
    return stages
