"""Analytic interdependent flip-flop timing model.

The clock-to-q delay of a real flop is not a constant: it blows up as the
data-to-clock setup (or hold) margin shrinks, until capture fails
entirely (Fig 10). We model the surface as

    c2q(s, h) = c2q_inf + a_s * exp(-(s - s_wall) / tau_s)
                        + a_h * exp(-(h - h_wall) / tau_h)

which captures the three Fig 10 panels: c2q vs setup, c2q vs hold, and
the setup-hold interdependency contour (pairs (s, h) with equal c2q).

``default_flop_model`` carries constants calibrated against the
transistor-level six-NAND flop of :mod:`repro.spice.gates`; the
correspondence is pinned by tests. ``fit`` re-derives constants from any
measured (setup, c2q) curve via least squares.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ReproError


@dataclass(frozen=True)
class InterdependentFlopModel:
    """The c2q(setup, hold) surface.

    All times in ps. ``s_wall``/``h_wall`` are the metastability walls:
    the model is defined for setup > s_wall and hold > h_wall.
    """

    c2q_inf: float = 52.0
    a_s: float = 8.0
    tau_s: float = 9.0
    s_wall: float = 3.0
    a_h: float = 0.35
    tau_h: float = 25.0
    h_wall: float = -5.0

    def c2q(self, setup: float, hold: float = 150.0) -> float:
        """Clock-to-q delay at a (setup, hold) operating point."""
        if setup <= self.s_wall or hold <= self.h_wall:
            raise ReproError(
                f"operating point (setup={setup}, hold={hold}) is beyond "
                "the metastability wall"
            )
        return (
            self.c2q_inf
            + self.a_s * math.exp(-(setup - self.s_wall) / self.tau_s)
            + self.a_h * math.exp(-(hold - self.h_wall) / self.tau_h)
        )

    def dc2q_dsetup(self, setup: float, hold: float = 150.0) -> float:
        """Slope of c2q w.r.t. setup (negative: more margin, faster c2q)."""
        if setup <= self.s_wall:
            raise ReproError("beyond the setup wall")
        return -(self.a_s / self.tau_s) * math.exp(
            -(setup - self.s_wall) / self.tau_s
        )

    def pushout_setup(self, fraction: float = 0.10,
                      hold: float = 150.0) -> float:
        """The conventional fixed characterization: the setup time at
        which c2q degrades by ``fraction`` over c2q at generous margins.

        Solves c2q(s) = (1 + fraction) * c2q(inf) analytically.
        """
        base = self.c2q(1e6, hold)
        target_excess = fraction * base
        if target_excess >= self.a_s:
            return self.s_wall + 0.5  # pushout hugs the wall
        return self.s_wall - self.tau_s * math.log(target_excess / self.a_s)

    def pushout_hold(self, fraction: float = 0.10,
                     setup: float = 150.0) -> float:
        """Hold-side pushout characterization."""
        base = self.c2q(setup, 1e6)
        target_excess = fraction * base
        if target_excess >= self.a_h:
            return self.h_wall + 0.5
        return self.h_wall - self.tau_h * math.log(target_excess / self.a_h)

    def equal_c2q_contour(
        self, c2q_target: float, setups: Sequence[float]
    ) -> List[Tuple[float, float]]:
        """(setup, hold) pairs with c2q == target — Fig 10(iii)."""
        out = []
        for s in setups:
            if s <= self.s_wall:
                continue
            residual = (
                c2q_target
                - self.c2q_inf
                - self.a_s * math.exp(-(s - self.s_wall) / self.tau_s)
            )
            if residual <= 0 or residual >= self.a_h:
                continue
            h = self.h_wall - self.tau_h * math.log(residual / self.a_h)
            out.append((s, h))
        return out

    @classmethod
    def fit(
        cls,
        setup_curve: Sequence[Tuple[float, float]],
        hold_curve: Optional[Sequence[Tuple[float, float]]] = None,
    ) -> "InterdependentFlopModel":
        """Least-squares fit of the setup branch (and optionally the hold
        branch) from measured (margin, c2q) samples.

        Samples with c2q None (capture failures) locate the wall.
        """
        from scipy.optimize import curve_fit

        captured = [(s, c) for s, c in setup_curve if c is not None]
        failed = [s for s, c in setup_curve if c is None]
        if len(captured) < 4:
            raise ReproError("need at least 4 captured samples to fit")
        s_wall = max(failed) if failed else min(s for s, _ in captured) - 10.0

        s_arr = np.array([s for s, _ in captured])
        c_arr = np.array([c for _, c in captured])

        def surface(s, c2q_inf, a_s, tau_s):
            return c2q_inf + a_s * np.exp(-(s - s_wall) / tau_s)

        p0 = (float(c_arr.min()), float(c_arr.max() - c_arr.min()), 10.0)
        (c2q_inf, a_s, tau_s), _ = curve_fit(
            surface, s_arr, c_arr, p0=p0, maxfev=20000
        )

        a_h, tau_h, h_wall = 0.35, 25.0, -5.0
        if hold_curve:
            h_captured = [(h, c) for h, c in hold_curve if c is not None]
            h_failed = [h for h, c in hold_curve if c is None]
            if len(h_captured) >= 4:
                h_wall = max(h_failed) if h_failed else \
                    min(h for h, _ in h_captured) - 10.0

                def h_surface(h, a_h_, tau_h_):
                    return c2q_inf + a_h_ * np.exp(-(h - h_wall) / tau_h_)

                try:
                    (a_h, tau_h), _ = curve_fit(
                        h_surface,
                        np.array([h for h, _ in h_captured]),
                        np.array([c for _, c in h_captured]),
                        p0=(1.0, 20.0),
                        maxfev=20000,
                    )
                except RuntimeError:
                    pass  # keep defaults when the hold branch is too flat
        return cls(
            c2q_inf=float(c2q_inf),
            a_s=float(abs(a_s)),
            tau_s=float(abs(tau_s)),
            s_wall=float(s_wall),
            a_h=float(abs(a_h)),
            tau_h=float(abs(tau_h)),
            h_wall=float(h_wall),
        )


def default_flop_model() -> InterdependentFlopModel:
    """Constants calibrated against the six-NAND flop at 0.8 V / 25 C."""
    return InterdependentFlopModel(
        c2q_inf=52.3,
        a_s=115.0,
        tau_s=10.5,
        s_wall=4.0,
        a_h=0.45,
        tau_h=28.0,
        h_wall=-4.0,
    )
