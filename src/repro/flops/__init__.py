"""Interdependent flip-flop timing (the paper's Section 3.4 / Fig 10).

- :mod:`repro.flops.model` — an analytic c2q(setup, hold) surface fitted
  to the transistor-level six-NAND flop, plus the conventional fixed
  pushout-criterion characterization it generalizes;
- :mod:`repro.flops.recovery` — the [Kahng-Lee ISQED'14]-style margin
  recovery: a sequential linear program that picks per-flop operating
  points on the c2q-setup tradeoff to improve worst slack.
"""

from repro.flops.model import InterdependentFlopModel, default_flop_model
from repro.flops.recovery import RecoveryResult, recover_margin

__all__ = [
    "InterdependentFlopModel",
    "default_flop_model",
    "RecoveryResult",
    "recover_margin",
]
