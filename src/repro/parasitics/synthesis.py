"""Per-net parasitic synthesis from placement geometry.

We have no router, so this module plays the role of a global-route-based
extractor: each net's length comes from its placement HPWL (with a
fanout-based floor for unplaced nets), a routing layer is assigned by
length, and a star RC topology is synthesized on that layer at a chosen
BEOL corner and temperature. NDR nets are promoted one layer and widened
(lower R, less coupling).

The resulting :class:`NetParasitics` answers the three questions STA asks:
the load the driver sees, the extra wire delay to each sink, and the slew
degradation along the wire — plus the coupling capacitance SI analysis
needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.beol.corners import BeolCorner, LayerScales
from repro.beol.stack import BeolStack
from repro.errors import CornerError
from repro.liberty.library import Library
from repro.netlist.design import Design, Net, PinRef
from repro.parasitics.rctree import RCTree

#: Wirelength floor for unplaced nets: base plus per-fanout term, um.
_UNPLACED_BASE = 4.0
_UNPLACED_PER_FANOUT = 3.0

#: NDR effect on the assigned layer's per-um parasitics.
_NDR_R_SCALE = 0.62
_NDR_CG_SCALE = 1.10
_NDR_CC_SCALE = 0.80


@dataclass
class NetParasitics:
    """Extracted parasitics for one net (star topology).

    Attributes:
        net_name: the net.
        layer_name: assigned routing layer.
        length: routed length estimate, um.
        wire_cap: total wire capacitance (ground + coupling*miller@1), fF.
        coupling_cap: total neighbour-coupling capacitance, fF.
        sink_resistance: per-sink path resistance from the driver, kohm.
        sink_wire_cap: per-sink local wire capacitance for delay calc, fF.
    """

    net_name: str
    layer_name: str
    length: float
    wire_cap: float
    coupling_cap: float
    sink_resistance: Dict[PinRef, float] = field(default_factory=dict)
    sink_wire_cap: Dict[PinRef, float] = field(default_factory=dict)

    def driver_load(self, pin_caps_total: float) -> float:
        """Total load presented to the driving pin, fF."""
        return self.wire_cap + pin_caps_total

    def wire_delay(self, sink: PinRef, sink_pin_cap: float) -> float:
        """Elmore-style extra delay from driver output to ``sink``, ps."""
        r = self.sink_resistance.get(sink, 0.0)
        c_local = self.sink_wire_cap.get(sink, 0.0)
        return r * (0.5 * c_local + sink_pin_cap)

    def slew_degradation(self, sink: PinRef, sink_pin_cap: float) -> float:
        """Extra slew accumulated along the wire, ps (PERI-like: about
        twice the wire delay)."""
        return 2.0 * self.wire_delay(sink, sink_pin_cap)


class ParasiticExtractor:
    """Synthesizes :class:`NetParasitics` for every net of a design."""

    def __init__(
        self,
        design: Design,
        library: Library,
        stack: BeolStack,
        corner: BeolCorner,
        temp_c: float = 25.0,
    ):
        self.design = design
        self.library = library
        self.stack = stack
        self.corner = corner
        self.temp_c = temp_c
        self._cache: Dict[str, NetParasitics] = {}

    def extract(self, net_name: str) -> NetParasitics:
        """Extract (and cache) one net."""
        if net_name not in self._cache:
            self._cache[net_name] = self._extract(self.design.get_net(net_name))
        return self._cache[net_name]

    def extract_all(self) -> Dict[str, NetParasitics]:
        for net_name in self.design.nets:
            self.extract(net_name)
        return dict(self._cache)

    def invalidate(self, net_name: Optional[str] = None) -> None:
        """Drop cached parasitics after a netlist edit."""
        if net_name is None:
            self._cache.clear()
        else:
            self._cache.pop(net_name, None)

    # ------------------------------------------------------------------ #

    def net_length(self, net: Net) -> float:
        """Routed-length estimate: placement HPWL with a fanout floor."""
        hpwl = self.design.net_hpwl(net.name)
        floor = _UNPLACED_BASE + _UNPLACED_PER_FANOUT * max(net.fanout - 1, 0)
        return max(hpwl, floor if net.fanout else 0.0)

    def _extract(self, net: Net) -> NetParasitics:
        length = self.net_length(net)
        layer = self.stack.layer_for_route(length, ndr=net.ndr)
        scales = self.corner.layer_scales(layer.name)

        r_per_um = layer.r_at(self.temp_c) * scales.r
        cg_per_um = layer.c_ground_per_um * scales.c_ground
        cc_per_um = layer.c_coupling_per_um * scales.c_coupling
        if net.ndr:
            r_per_um *= _NDR_R_SCALE
            cg_per_um *= _NDR_CG_SCALE
            cc_per_um *= _NDR_CC_SCALE

        coupling_cap = cc_per_um * length * 0.5  # half the run has neighbours
        wire_cap = cg_per_um * length + coupling_cap + net.extra_cap

        sinks = list(net.loads)
        result = NetParasitics(
            net_name=net.name,
            layer_name=layer.name,
            length=length,
            wire_cap=wire_cap,
            coupling_cap=coupling_cap,
        )
        if not sinks:
            return result
        # Star topology: a shared trunk of half the length, then branches
        # of increasing length to each sink (deterministic by sink order).
        trunk = 0.5 * length
        branch_total = length - trunk
        n = len(sinks)
        for k, sink in enumerate(sorted(sinks, key=str)):
            branch = branch_total * (k + 1) / n
            path = trunk + branch
            result.sink_resistance[sink] = r_per_um * path
            result.sink_wire_cap[sink] = (cg_per_um + 0.5 * cc_per_um) * path
        return result

    def rc_tree(self, net_name: str) -> RCTree:
        """A full RC tree for one net (trunk + branches), for moment-based
        delay studies; driver pin is the root."""
        net = self.design.get_net(net_name)
        para = self.extract(net_name)
        layer = self.stack.layer(para.layer_name)
        scales = self.corner.layer_scales(layer.name)
        r_per_um = layer.r_at(self.temp_c) * scales.r
        c_per_um = (
            layer.c_ground_per_um * scales.c_ground
            + 0.5 * layer.c_coupling_per_um * scales.c_coupling
        )
        if net.ndr:
            r_per_um *= _NDR_R_SCALE

        tree = RCTree(root="driver")
        trunk_len = 0.5 * para.length
        segments = 4
        prev = "driver"
        for i in range(segments):
            seg = trunk_len / segments
            node = tree.add_node(
                f"trunk{i}", prev, r_per_um * seg, c_per_um * seg
            )
            prev = node
        branch_total = para.length - trunk_len
        n = max(len(net.loads), 1)
        for k, sink in enumerate(sorted(net.loads, key=str)):
            seg = branch_total * (k + 1) / n
            node = tree.add_node(
                f"sink:{sink}", prev, r_per_um * seg, c_per_um * seg
            )
            pin_cap = self._pin_cap(sink)
            tree.add_cap(node, pin_cap)
        return tree

    def _pin_cap(self, ref: PinRef) -> float:
        if ref.is_port:
            return 2.0  # nominal external load
        inst = self.design.instance(ref.instance)
        cell = self.library.cell(inst.cell_name)
        return cell.pin(ref.pin).capacitance

    def pin_caps_total(self, net_name: str) -> float:
        net = self.design.get_net(net_name)
        return sum(self._pin_cap(ref) for ref in net.loads)
