"""Statistical interconnect (the revival of "Sensitivity SPEF").

Section 3.1 notes that SSPEF "seems to have recently dropped by the
wayside, leaving BEOL variations as a major hole in signoff enablement",
and Section 4 predicts that "statistical SPEF or similar will be revived"
once BEOL becomes a first-class citizen. This module is that revival for
our stack: each net's extracted parasitics are annotated with relative
R and C sigmas derived from its routing layer's patterning class (through
the SADP CD-sigma model), and wire-delay sigmas are computed for
consumption by SSTA (:mod:`repro.variation.ssta`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.beol.sadp import (
    PatterningCase,
    SadpSigmas,
    cd_sigma_to_rc_sensitivity,
    line_cd_sigma,
)
from repro.beol.stack import BeolStack, MetalLayer
from repro.errors import CornerError
from repro.netlist.design import PinRef
from repro.parasitics.synthesis import NetParasitics, ParasiticExtractor

#: Representative nominal line widths per patterning class, nm.
_NOMINAL_WIDTH_NM = {"single": 50.0, "sadp": 28.0, "saqp": 18.0}
#: Representative patterning case per class (the middle of the Fig 5(c)
#: menu: spacer-defined for SADP; block-edge for SAQP).
_REPRESENTATIVE_CASE = {
    "single": None,
    "sadp": PatterningCase.SPACER_SPACER,
    "saqp": PatterningCase.SPACER_BLOCK,
}
#: Single-patterned layers still vary (CMP, litho), just less.
_SINGLE_PATTERN_REL_SIGMA = 0.03


@dataclass(frozen=True)
class RcSigmas:
    """Relative (1-sigma) R and C variations of one net's wiring."""

    r_rel: float
    c_rel: float

    @property
    def wire_delay_rel(self) -> float:
        """Relative sigma of an R*C product with independent R and C
        variations: sqrt(sr^2 + sc^2) to first order."""
        return math.hypot(self.r_rel, self.c_rel)


def layer_rc_sigmas(layer: MetalLayer,
                    process: SadpSigmas = SadpSigmas()) -> RcSigmas:
    """Relative R/C sigmas for a routing layer from its patterning."""
    case = _REPRESENTATIVE_CASE[layer.patterning]
    if case is None:
        return RcSigmas(r_rel=_SINGLE_PATTERN_REL_SIGMA,
                        c_rel=0.5 * _SINGLE_PATTERN_REL_SIGMA)
    width = _NOMINAL_WIDTH_NM[layer.patterning]
    sens = cd_sigma_to_rc_sensitivity(line_cd_sigma(case, process), width)
    # Combine ground and coupling C sensitivity with a 50/50 split.
    c_rel = 0.5 * (sens["c_ground_rel_sigma"] + sens["c_coupling_rel_sigma"])
    return RcSigmas(r_rel=sens["r_rel_sigma"], c_rel=c_rel)


class StatisticalAnnotator:
    """Annotates an extractor's nets with statistical wire-delay sigmas."""

    def __init__(self, extractor: ParasiticExtractor, stack: BeolStack,
                 process: SadpSigmas = SadpSigmas()):
        self.extractor = extractor
        self.stack = stack
        self.process = process
        self._cache: Dict[str, RcSigmas] = {}

    def net_sigmas(self, net_name: str) -> RcSigmas:
        if net_name not in self._cache:
            para = self.extractor.extract(net_name)
            layer = self.stack.layer(para.layer_name)
            self._cache[net_name] = layer_rc_sigmas(layer, self.process)
        return self._cache[net_name]

    def wire_delay_sigma(self, net_name: str, sink: PinRef,
                         sink_pin_cap: float) -> float:
        """Absolute 1-sigma of the wire delay to a sink, ps."""
        para = self.extractor.extract(net_name)
        nominal = para.wire_delay(sink, sink_pin_cap)
        return nominal * self.net_sigmas(net_name).wire_delay_rel

    def all_wire_sigmas(self) -> Dict[str, float]:
        """Per-net representative wire-delay sigma (worst sink), ps —
        the payload a statistical SPEF file would carry."""
        out: Dict[str, float] = {}
        for net_name, net in self.extractor.design.nets.items():
            if not net.loads or net.driver is None:
                continue
            para = self.extractor.extract(net_name)
            worst = 0.0
            for sink in net.loads:
                pin_cap = 2.0 if sink.is_port else \
                    self.extractor._pin_cap(sink)
                worst = max(worst, self.wire_delay_sigma(net_name, sink,
                                                         pin_cap))
            out[net_name] = worst
        return out


def write_statistical_spef(design_name: str,
                           annotator: StatisticalAnnotator) -> str:
    """Serialize per-net statistical annotations (SSPEF-lite)."""
    lines = [f"*SSPEF repro-lite", f"*DESIGN {design_name}"]
    for net_name in sorted(annotator.extractor.design.nets):
        net = annotator.extractor.design.nets[net_name]
        if net.driver is None or not net.loads:
            continue
        s = annotator.net_sigmas(net_name)
        lines.append(
            f"*S_NET {net_name} {s.r_rel!r} {s.c_rel!r}"
        )
    return "\n".join(lines) + "\n"


def parse_statistical_spef(text: str) -> Dict[str, RcSigmas]:
    """Parse SSPEF-lite text back to per-net relative sigmas."""
    out: Dict[str, RcSigmas] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("*SSPEF") or line.startswith("*DESIGN"):
            continue
        fields = line.split()
        if fields[0] != "*S_NET":
            raise CornerError(f"unknown SSPEF-lite tag {fields[0]!r}")
        try:
            out[fields[1]] = RcSigmas(r_rel=float(fields[2]),
                                      c_rel=float(fields[3]))
        except (IndexError, ValueError) as exc:
            raise CornerError(f"malformed SSPEF-lite line {line!r}") from exc
    return out
