"""SPEF-lite: a compact parasitic exchange format.

Serializes the star-model :class:`~repro.parasitics.synthesis.NetParasitics`
of a design so extracted corners can be stored and reloaded without
re-running synthesis. The format mirrors real SPEF's D_NET structure::

    *SPEF repro-lite
    *DESIGN tiny
    *CORNER cw
    *D_NET n1 4.231
    *LAYER M2 12.5
    *COUP 0.62
    *SINK u2/A 0.125 1.871
    *END

Values: total wire cap (fF); layer and length (um); coupling cap (fF);
per-sink path resistance (kohm) and local wire cap (fF).
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ReproError
from repro.netlist.design import PinRef
from repro.parasitics.synthesis import NetParasitics


def write_spef(design_name: str, corner_name: str,
               parasitics: Dict[str, NetParasitics]) -> str:
    """Serialize extracted parasitics to SPEF-lite text."""
    lines: List[str] = [
        "*SPEF repro-lite",
        f"*DESIGN {design_name}",
        f"*CORNER {corner_name}",
    ]
    for net_name in sorted(parasitics):
        para = parasitics[net_name]
        lines.append(f"*D_NET {para.net_name} {para.wire_cap!r}")
        lines.append(f"*LAYER {para.layer_name} {para.length!r}")
        lines.append(f"*COUP {para.coupling_cap!r}")
        for sink in sorted(para.sink_resistance, key=str):
            lines.append(
                f"*SINK {sink} {para.sink_resistance[sink]!r} "
                f"{para.sink_wire_cap[sink]!r}"
            )
        lines.append("*END")
    return "\n".join(lines) + "\n"


def parse_spef(text: str) -> Dict[str, NetParasitics]:
    """Parse SPEF-lite text back to per-net parasitics."""
    nets: Dict[str, NetParasitics] = {}
    current: NetParasitics = None
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("*SPEF") or line.startswith("*DESIGN") \
                or line.startswith("*CORNER"):
            continue
        fields = line.split()
        tag = fields[0]
        try:
            if tag == "*D_NET":
                current = NetParasitics(
                    net_name=fields[1],
                    layer_name="",
                    length=0.0,
                    wire_cap=float(fields[2]),
                    coupling_cap=0.0,
                )
                nets[fields[1]] = current
            elif tag == "*LAYER":
                current.layer_name = fields[1]
                current.length = float(fields[2])
            elif tag == "*COUP":
                current.coupling_cap = float(fields[1])
            elif tag == "*SINK":
                ref = _parse_pin_ref(fields[1])
                current.sink_resistance[ref] = float(fields[2])
                current.sink_wire_cap[ref] = float(fields[3])
            elif tag == "*END":
                current = None
            else:
                raise ReproError(f"unknown SPEF-lite tag {tag!r}")
        except (IndexError, ValueError, AttributeError) as exc:
            raise ReproError(f"malformed SPEF-lite line {line!r}: {exc}") from exc
    return nets


def _parse_pin_ref(text: str) -> PinRef:
    if "/" in text:
        instance, pin = text.rsplit("/", 1)
        return PinRef(instance, pin)
    return PinRef("", text)
