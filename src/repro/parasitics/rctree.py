"""RC trees and moment-based wire-delay metrics.

Implements the classic ladder of interconnect delay models the paper's
Section 3.1 recounts ("lumped-C ... Elmore's bound ... O'Brien-Savarino"):
Elmore delay (first moment) and D2M (two-moment) on arbitrary RC trees,
plus the O'Brien-Savarino pi-model reduction used to present a realistic
load to the driver.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError


class RCTree:
    """An RC tree rooted at the driver node.

    Each non-root node has one parent, a resistance on the edge to its
    parent (kohm) and a grounded capacitance (fF). Delay metrics are in ps.
    """

    def __init__(self, root: str = "root"):
        self.root = root
        self._parent: Dict[str, Optional[str]] = {root: None}
        self._r_to_parent: Dict[str, float] = {root: 0.0}
        self._cap: Dict[str, float] = {root: 0.0}
        self._children: Dict[str, List[str]] = {root: []}

    def add_node(self, name: str, parent: str, resistance: float,
                 capacitance: float) -> str:
        """Add a node hanging from ``parent`` through ``resistance``."""
        if name in self._parent:
            raise ReproError(f"duplicate RC-tree node {name!r}")
        if parent not in self._parent:
            raise ReproError(f"unknown parent node {parent!r}")
        if resistance < 0 or capacitance < 0:
            raise ReproError("resistance and capacitance must be non-negative")
        self._parent[name] = parent
        self._r_to_parent[name] = resistance
        self._cap[name] = capacitance
        self._children[name] = []
        self._children[parent].append(name)
        return name

    def add_cap(self, node: str, capacitance: float) -> None:
        """Add extra grounded capacitance at an existing node (pin caps)."""
        if node not in self._cap:
            raise ReproError(f"unknown node {node!r}")
        self._cap[node] += capacitance

    @property
    def nodes(self) -> List[str]:
        return list(self._parent)

    def total_cap(self) -> float:
        """Total capacitance of the tree, fF."""
        return sum(self._cap.values())

    # ------------------------------------------------------------------ #
    # moments

    def downstream_caps(self) -> Dict[str, float]:
        """Capacitance at-or-below each node (one bottom-up pass)."""
        order = self._topological()
        down = dict(self._cap)
        for node in reversed(order):
            for child in self._children[node]:
                down[node] += down[child]
        return down

    def elmore(self, sink: str) -> float:
        """Elmore delay (first moment) from the root to ``sink``, ps."""
        if sink not in self._parent:
            raise ReproError(f"unknown sink {sink!r}")
        down = self.downstream_caps()
        delay = 0.0
        node = sink
        while self._parent[node] is not None:
            delay += self._r_to_parent[node] * down[node]
            node = self._parent[node]
        return delay

    def second_moment(self, sink: str) -> float:
        """Second moment m2 at ``sink`` (for D2M), ps^2.

        m1 at every node is computed first; m2(sink) = sum over the
        root-to-sink edges of R_edge * (downstream sum of C_k * m1_k).
        """
        if sink not in self._parent:
            raise ReproError(f"unknown sink {sink!r}")
        order = self._topological()
        down = self.downstream_caps()
        # m1 at every node, top-down.
        m1: Dict[str, float] = {self.root: 0.0}
        for node in order[1:]:
            parent = self._parent[node]
            m1[node] = m1[parent] + self._r_to_parent[node] * down[node]
        # Downstream sum of C * m1, bottom-up.
        cm1 = {n: self._cap[n] * m1[n] for n in order}
        for node in reversed(order):
            for child in self._children[node]:
                cm1[node] += cm1[child]
        m2 = 0.0
        node = sink
        while self._parent[node] is not None:
            m2 += self._r_to_parent[node] * cm1[node]
            node = self._parent[node]
        return m2

    def d2m(self, sink: str) -> float:
        """The D2M two-moment delay metric, ps: ln2 * m1^2 / sqrt(m2).

        Tighter than Elmore for far sinks on resistive nets; falls back to
        Elmore when m2 is degenerate.
        """
        m1 = self.elmore(sink)
        m2 = self.second_moment(sink)
        if m2 <= 0.0:
            return m1
        return math.log(2.0) * m1 * m1 / math.sqrt(m2)

    def pi_model(self) -> Tuple[float, float, float]:
        """O'Brien-Savarino reduction to (C_near, R, C_far) seen from root.

        Matches the first three moments of the admittance:
        C_near + C_far = total cap, with the resistive shielding split
        determined by y2, y3.
        """
        order = self._topological()
        # Admittance moments looking down from the root: y1 = total C,
        # y2 = -sum R_k * (downstream C)^2 like terms, via bottom-up merge.
        y1: Dict[str, float] = {}
        y2: Dict[str, float] = {}
        y3: Dict[str, float] = {}
        for node in reversed(order):
            c = self._cap[node]
            a1, a2, a3 = c, 0.0, 0.0
            for child in self._children[node]:
                r = self._r_to_parent[child]
                b1, b2, b3 = y1[child], y2[child], y3[child]
                # Propagate child admittance through its edge resistance.
                a1 += b1
                a2 += b2 - r * b1 * b1
                a3 += b3 - 2.0 * r * b1 * b2 + r * r * b1 * b1 * b1
            y1[node], y2[node], y3[node] = a1, a2, a3
        c_total = y1[self.root]
        if y2[self.root] == 0.0:
            return (c_total, 0.0, 0.0)
        c_far = y2[self.root] ** 2 / y3[self.root] if y3[self.root] != 0 else 0.0
        c_far = min(max(c_far, 0.0), c_total)
        r_pi = -(y3[self.root] ** 2) / (y2[self.root] ** 3) if y2[self.root] else 0.0
        r_pi = max(r_pi, 0.0)
        c_near = c_total - c_far
        return (c_near, r_pi, c_far)

    def _topological(self) -> List[str]:
        order: List[str] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            order.append(node)
            stack.extend(self._children[node])
        return order
