"""Parasitic RC synthesis and wire-delay metrics.

- :mod:`repro.parasitics.rctree` — RC trees with Elmore and D2M delays;
- :mod:`repro.parasitics.synthesis` — per-net RC models from placement
  geometry, BEOL stack and extraction corner;
- :mod:`repro.parasitics.spef` — SPEF-lite writer/parser.
"""

from repro.parasitics.rctree import RCTree
from repro.parasitics.synthesis import NetParasitics, ParasiticExtractor
from repro.parasitics.statistical import RcSigmas, StatisticalAnnotator

__all__ = [
    "RCTree",
    "NetParasitics",
    "ParasiticExtractor",
    "RcSigmas",
    "StatisticalAnnotator",
]
